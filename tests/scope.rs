//! bamboo-scope integration tests: live per-request tracing, tail-based
//! sampling, and SLO burn-rate on resident deployments (DESIGN.md §17).
//!
//! The acceptance criterion under test throughout: for every
//! tail-sampled request the reconstructed span tree *partitions* the
//! admit→complete latency exactly — compute + lock-wait + queue-wait +
//! routing + idle sums to the total with no residue — and under stepped
//! pacing the whole scope plane (window snapshots, samples, exports) is
//! byte-identical across worker thread counts.

use bamboo::telemetry::analyze;
use bamboo::{
    DeploymentHandle, MachineDescription, Pacing, Poisson, ScopeConfig, ScopeSnapshot,
    ServingOptions, ServingReport, SynthesisOptions, Telemetry, TelemetryReport,
};
use bamboo_apps::{by_name, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const SEED: u64 = 42;

/// Serves `total` stepped Poisson arrivals on a fresh deployment of
/// `bench_name` synthesized for `cores`, with telemetry recording and
/// the given scope config; returns the serving report and the recorded
/// telemetry.
fn scoped_run(
    bench_name: &str,
    cores: usize,
    scope: ScopeConfig,
    rate: f64,
    total: usize,
) -> (ServingReport, TelemetryReport) {
    let bench = by_name(bench_name).expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "scope", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    // Workers plus the serving driver's own ring.
    let telemetry = Telemetry::enabled(cores + 1);
    let mut session = DeploymentHandle::deploy(&compiler, &plan)
        .with_telemetry(telemetry.clone())
        .with_scope(scope)
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .expect("server starts");
    let mut arrivals = Poisson::new(rate, SEED);
    session
        .serve(&mut arrivals, total, |_| Box::new(()))
        .expect("serving run");
    let report = session.stop().expect("serving finish");
    (report, telemetry.report())
}

fn snapshot_of(report: &ServingReport) -> ScopeSnapshot {
    report.scope.clone().expect("scope was configured")
}

/// Acceptance: every tail-sampled request's span tree partitions its
/// latency exactly — the five components sum to admit→complete with no
/// residue — and the snapshot's own accounting is exact.
#[test]
fn tail_sampled_span_trees_partition_latency_exactly() {
    for bench in ["kmeans", "filterbank"] {
        let total = 24;
        let (report, observed) = scoped_run(
            bench,
            8,
            ScopeConfig::default()
                .with_window(Duration::from_millis(5))
                .with_slo(50_000, 0.99)
                .with_sampling(4, 4),
            2_000.0,
            total,
        );
        let snapshot = snapshot_of(&report);

        // Exact accounting, cross-checked against the serving ledger.
        assert_eq!(snapshot.totals.arrivals, report.arrivals, "{bench}");
        assert_eq!(
            snapshot.totals.arrivals,
            snapshot.totals.admitted + snapshot.totals.shed,
            "{bench}: arrivals partition into admitted + shed"
        );
        assert_eq!(snapshot.totals.completed, report.completed, "{bench}");
        assert_eq!(
            snapshot.in_flight, 0,
            "{bench}: nothing in flight after stop"
        );

        let sampled = snapshot.sampled_requests();
        assert!(!sampled.is_empty(), "{bench}: tail sampler kept nothing");
        let trees = analyze::span_trees(&observed, &sampled);
        assert_eq!(
            trees.len(),
            sampled.len(),
            "{bench}: every sampled completion reconstructs"
        );
        for tree in &trees {
            assert!(!tree.invocations.is_empty(), "{bench}: empty span tree");
            assert_eq!(
                tree.breakdown.component_sum(),
                tree.breakdown.total,
                "{bench}: request {} leaves {} ns unattributed",
                tree.request,
                tree.breakdown.total as i64 - tree.breakdown.component_sum() as i64
            );
            assert!(tree.breakdown.compute > 0, "{bench}: no compute attributed");
            let rendered = tree.render("ns");
            assert!(
                rendered.contains(&format!("request {}", tree.request)),
                "{bench}: render misses the request id"
            );
        }
    }
}

/// Satellite: under stepped pacing the scope plane runs on the virtual
/// arrival clock, so the JSON and Prometheus exports are byte-identical
/// at 1 worker thread and at 8 — and across repeated 8-thread runs.
#[test]
fn stepped_snapshots_are_byte_identical_across_thread_counts() {
    let run = |cores: usize| -> (String, String) {
        let (report, _) = scoped_run(
            "kmeans",
            cores,
            ScopeConfig::default()
                .with_window(Duration::from_millis(2))
                .with_slo(20_000, 0.999)
                .with_sampling(2, 2),
            2_000.0,
            16,
        );
        let snapshot = snapshot_of(&report);
        (snapshot.to_json(), snapshot.to_prometheus())
    };
    let one = run(1);
    let eight_a = run(8);
    let eight_b = run(8);
    assert_eq!(
        one, eight_a,
        "scope snapshot diverged between 1 and 8 threads"
    );
    assert_eq!(eight_a, eight_b, "same-seed 8-thread snapshots diverged");
}

/// Tail sampling keeps the slowest-K plus a bounded seeded reservoir
/// per window — never the full stream — and every kept id is a real
/// request from this run, deduplicated and ascending.
#[test]
fn tail_sampling_is_bounded_and_well_formed() {
    let slow_k = 2;
    let reservoir = 1;
    let total = 30;
    let (report, _) = scoped_run(
        "filterbank",
        8,
        ScopeConfig::default()
            .with_window(Duration::from_millis(5))
            .with_sampling(slow_k, reservoir),
        2_000.0,
        total,
    );
    let snapshot = snapshot_of(&report);

    // Per-window budget: slowest-K + reservoir (no sheds on a clean run).
    assert_eq!(snapshot.totals.shed, 0, "clean run shed");
    let windows = snapshot.windows.len() as u64;
    assert!(windows > 0);
    for w in &snapshot.windows {
        let kept = snapshot
            .sampled
            .iter()
            .filter(|s| s.window == w.index)
            .count();
        assert!(
            kept <= slow_k + reservoir,
            "window {} kept {kept} > budget {}",
            w.index,
            slow_k + reservoir
        );
    }
    assert!(
        (snapshot.sampled.len() as u64) < total as u64,
        "sampler kept the full stream"
    );

    let ids = snapshot.sampled_requests();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ids, sorted, "sampled ids not deduplicated ascending");
    for id in &ids {
        assert!(
            *id >= 1 && *id <= total as u64,
            "sampled id {id} outside the request range"
        );
    }
    // No sample claims a latency beyond the recorded maximum.
    for s in &snapshot.sampled {
        assert!(
            s.latency_us <= snapshot.totals.max_us,
            "sample {} claims {}µs beyond the max {}µs",
            s.request,
            s.latency_us,
            snapshot.totals.max_us
        );
    }
}

/// The live handle on a serving session yields concurrent snapshots
/// whose exports carry the metric families doctor and CI scrape, with
/// burn-rate consistent with the recorded SLO violations.
#[test]
fn live_handle_exports_are_consistent() {
    let bench = by_name("kmeans").expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "scope", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(8);
    let mut rng = StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let mut session = DeploymentHandle::deploy(&compiler, &plan)
        .with_scope(
            ScopeConfig::default()
                .with_window(Duration::from_millis(5))
                // A 1µs SLO the tail must violate: burn-rate lights up.
                .with_slo(1, 0.999),
        )
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .expect("server starts");
    let handle = session.scope().expect("scope handle is live");

    let mut arrivals = Poisson::new(2_000.0, SEED);
    session
        .serve(&mut arrivals, 12, |_| Box::new(()))
        .expect("serving run");
    // Mid-session snapshot: drained after stepped serve, so all 12 done.
    let live = handle.snapshot();
    assert_eq!(live.totals.completed, 12);
    let report = session.stop().expect("serving finish");
    let snapshot = snapshot_of(&report);
    assert_eq!(snapshot.totals.completed, live.totals.completed);

    // The tail violated the 1µs SLO (same-tick completions land at
    // 0µs under stepped pacing, so not necessarily all of them), and
    // the burn-rate is exactly the violation fraction over the 0.1%
    // error budget.
    let violations = snapshot.totals.slo_violations;
    assert!(violations > 0, "1µs SLO never violated");
    assert!(violations <= snapshot.totals.completed);
    let expected_burn =
        (violations as f64 / snapshot.totals.completed as f64) / (1.0 - snapshot.slo_target);
    assert!(
        (snapshot.totals.burn_rate - expected_burn).abs() < 1e-9,
        "burn rate {} != violations/budget {}",
        snapshot.totals.burn_rate,
        expected_burn
    );
    assert!(
        snapshot.totals.burn_rate > 1.0,
        "burn rate {} under a hot SLO",
        snapshot.totals.burn_rate
    );

    let json = snapshot.to_json();
    for key in [
        "\"scope\"",
        "\"totals\"",
        "\"windows\"",
        "\"sampled\"",
        "\"burn_rate\"",
        "\"p99_us\"",
    ] {
        assert!(json.contains(key), "JSON export misses {key}");
    }
    let prom = snapshot.to_prometheus();
    for family in [
        "bamboo_scope_requests_total",
        "bamboo_scope_latency_us",
        "bamboo_scope_window_throughput_rps",
        "bamboo_scope_slo_burn_rate",
        "bamboo_scope_sampled_spans",
        "bamboo_scope_in_flight",
    ] {
        assert!(prom.contains(family), "Prometheus export misses {family}");
    }
}

/// A scope config set on the `ServingOptions` wins over the handle's;
/// with neither, the report carries no snapshot and serving is
/// unchanged (scope-off is the default).
#[test]
fn scope_is_opt_in_and_options_take_precedence() {
    let bench = by_name("filterbank").expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "scope", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(8);
    let mut rng = StdRng::seed_from_u64(SEED);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);

    // Off by default.
    let mut session = DeploymentHandle::deploy(&compiler, &plan)
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .expect("server starts");
    assert!(session.scope().is_none(), "scope on without opt-in");
    let mut arrivals = Poisson::new(1_000.0, 3);
    session
        .serve(&mut arrivals, 4, |_| Box::new(()))
        .expect("serve");
    let report = session.stop().expect("finish");
    assert!(report.scope.is_none(), "snapshot on a scope-off run");
    assert_eq!(report.completed, 4);

    // Options-level config wins over the handle's.
    let session = DeploymentHandle::deploy(&compiler, &plan)
        .with_scope(ScopeConfig::default().with_slo(77, 0.5))
        .serve(
            ServingOptions::new()
                .with_pacing(Pacing::Stepped)
                .with_scope(ScopeConfig::default().with_slo(123_456, 0.9)),
        )
        .expect("server starts");
    let handle = session.scope().expect("scope handle is live");
    let snap = handle.snapshot();
    assert_eq!(snap.slo_us, 123_456, "options-level scope config lost");
    assert!((snap.slo_target - 0.9).abs() < 1e-9);
    session.stop().expect("finish");
}
