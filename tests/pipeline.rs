//! Integration tests: the full pipeline across crates — DSL frontend,
//! analyses, synthesis, and all three executors must agree.

use bamboo::{
    body, Compiler, Deployment, ExecConfig, MachineDescription, NativeBody, ProgramBuilder,
    RunOptions, SynthesisOptions, ThreadedExecutor, VirtualExecutor,
};
use bamboo::{FlagExpr, Layout};
use rand::SeedableRng;

const PIPELINE_SRC: &str = r#"
    class StartupObject { flag initialstate; }
    class Job {
        flag raw; flag cooked; flag plated;
        int value;
        Job(int v) { this.value = v; }
    }
    class Counter {
        flag open; flag closed;
        int sum; int seen; int expected;
        Counter(int expected) { this.expected = expected; }
        boolean take(Job j) {
            this.sum = this.sum + j.value;
            this.seen = this.seen + 1;
            return this.seen == this.expected;
        }
    }
    task startup(StartupObject s in initialstate) {
        for (int i = 0; i < 12; i = i + 1) {
            Job j = new Job(i + 1){ raw := true };
        }
        Counter c = new Counter(12){ open := true };
        taskexit(s: initialstate := false);
    }
    task cook(Job j in raw) {
        j.value = j.value * j.value;
        taskexit(j: raw := false, cooked := true);
    }
    task plate(Job j in cooked) {
        j.value = j.value + 1000;
        taskexit(j: cooked := false, plated := true);
    }
    task tally(Counter c in open, Job j in plated) {
        boolean full = c.take(j);
        if (full) { taskexit(c: open := false, closed := true; j: plated := false); }
        taskexit(j: plated := false);
    }
"#;

/// Sum of (i+1)^2 + 1000 for i in 0..12.
const EXPECTED_SUM: i64 = 650 + 12 * 1000;

fn counter_sum(compiler: &Compiler, exec: &bamboo::VirtualExecutor<'_>) -> String {
    let class = compiler
        .program
        .spec
        .class_by_name("Counter")
        .expect("class exists");
    let obj = exec.store.live_of_class(class)[0];
    let r = match exec.store.get(obj).payload {
        bamboo::runtime::PayloadSlot::Interp(r) => r,
        _ => unreachable!(),
    };
    format!("{}", exec.interp_heap().expect("interpreted").field(r, 0))
}

#[test]
fn dsl_pipeline_agrees_across_core_counts() {
    let compiler = Compiler::from_source("pipeline", PIPELINE_SRC).expect("compiles");
    let (profile, single, sum1) = compiler
        .profile_run(None, "t", |e| counter_sum(&compiler, e))
        .expect("runs");
    assert_eq!(sum1, EXPECTED_SUM.to_string());

    for cores in [2usize, 5, 13] {
        let machine = MachineDescription::n_cores(cores);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cores as u64);
        let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let mut exec =
            compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
        let report = exec.run(None).expect("runs");
        assert!(report.quiesced);
        assert_eq!(counter_sum(&compiler, &exec), EXPECTED_SUM.to_string());
        if cores > 1 {
            assert!(
                report.makespan < single.makespan,
                "no speedup on {cores} cores"
            );
        }
    }
}

fn native_squares(n: i64) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("squares");
    let s = b.class("StartupObject", &["initialstate"]);
    let w = b.class("Work", &["ready", "done"]);
    let acc = b.class("Acc", &["open", "closed"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(w, "ready");
    let done = b.flag(w, "done");
    let open = b.flag(acc, "open");
    let closed = b.flag(acc, "closed");
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(w, &[(ready, true)], &[])
        .alloc(acc, &[(open, true)], &[])
        .exit("", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for i in 0..n {
                ctx.create(0, i);
            }
            ctx.create(1, (0i64, 0i64, n));
            ctx.charge(10);
            0
        }))
        .finish();
    b.task("square")
        .param("w", w, FlagExpr::flag(ready))
        .exit("", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(|ctx| {
            let v = ctx.param_mut::<i64>(0);
            *v *= *v;
            ctx.charge(500);
            0
        }))
        .finish();
    b.task("fold")
        .param("a", acc, FlagExpr::flag(open))
        .param("w", w, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("done", |e| {
            e.set(0, open, false)
                .set(0, closed, true)
                .set(1, done, false)
        })
        .body(body(|ctx| {
            let w = *ctx.param::<i64>(1);
            let a = ctx.param_mut::<(i64, i64, i64)>(0);
            a.0 += w;
            a.1 += 1;
            let fin = a.1 == a.2;
            ctx.charge(50);
            if fin {
                1
            } else {
                0
            }
        }))
        .finish();
    Compiler::from_native(b.build().expect("valid program"))
}

#[test]
fn virtual_and_threaded_executors_agree() {
    let n = 20i64;
    let expected: i64 = (0..n).map(|i| i * i).sum();
    let compiler = native_squares(n);
    let (profile, _, virt_sum) = compiler
        .profile_run(None, "t", |exec| {
            let acc = compiler.program.spec.class_by_name("Acc").expect("exists");
            let obj = exec.store.live_of_class(acc)[0];
            exec.payload::<(i64, i64, i64)>(obj).0
        })
        .expect("virtual run");
    assert_eq!(virt_sum, expected);

    // Synthesize a 6-core layout and run it with real threads.
    let machine = MachineDescription::n_cores(6);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    let report = ThreadedExecutor::default()
        .run(&deployment, RunOptions::default())
        .expect("threaded run");
    assert_eq!(report.invocations, 1 + 2 * n as u64);
    let acc = compiler.program.spec.class_by_name("Acc").expect("exists");
    let sums = report.payloads_of::<(i64, i64, i64)>(acc);
    assert_eq!(sums.len(), 1);
    assert_eq!(sums[0].0, expected);
}

/// A `Deployment` built from a `SynthesisResult` carries exactly the
/// synthesized plan, and both executors consume the same artifact with
/// matching results.
#[test]
fn deployment_round_trips_the_synthesis_result() {
    let n = 12i64;
    let expected: i64 = (0..n).map(|i| i * i).sum();
    let compiler = native_squares(n);
    let (profile, _, ()) = compiler.profile_run(None, "t", |_| ()).expect("profiles");
    let machine = MachineDescription::n_cores(4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);

    // Round trip: the deployment embeds the synthesized graph + layout.
    let deployment = Deployment::from_synthesis(&compiler.program, &compiler.locks, &plan);
    assert_eq!(deployment.core_count(), plan.layout.core_count);
    assert_eq!(
        deployment.layout.instances.len(),
        plan.layout.instances.len()
    );
    assert_eq!(deployment.graph.groups.len(), plan.graph.groups.len());
    // Compiler::deploy is the same construction.
    assert_eq!(
        compiler.deploy(&plan).layout.instances.len(),
        plan.layout.instances.len()
    );

    // The same artifact feeds both executors.
    let mut virt = VirtualExecutor::over(&deployment, &machine, ExecConfig::default());
    let vreport = virt.run(None).expect("virtual run");
    assert!(vreport.quiesced);
    let acc = compiler.program.spec.class_by_name("Acc").expect("exists");
    let vsum = virt
        .payload::<(i64, i64, i64)>(virt.store.live_of_class(acc)[0])
        .0;
    assert_eq!(vsum, expected);

    let treport = ThreadedExecutor::default()
        .run(&deployment, RunOptions::default())
        .expect("threaded run");
    assert_eq!(treport.invocations, vreport.invocations);
    assert_eq!(treport.payloads_of::<(i64, i64, i64)>(acc)[0].0, expected);
}

#[test]
fn single_core_layout_runs_any_program() {
    let compiler = native_squares(5);
    let graph = compiler.bootstrap_graph();
    let layout = Layout::single_core(&graph);
    let machine = MachineDescription::n_cores(1);
    let mut exec = compiler.executor(&graph, &layout, &machine, ExecConfig::default());
    let report = exec.run(None).expect("runs");
    assert!(report.quiesced);
    assert_eq!(report.invocations, 11);
}

#[test]
fn reference_driver_and_runtime_agree_on_dsl_program() {
    let compiled = bamboo::lang::compile_source("pipeline", PIPELINE_SRC).expect("compiles");
    // Reference semantics.
    let mut driver = bamboo::lang::interp::ReferenceDriver::new(&compiled);
    let ref_report = driver.run(10_000).expect("reference run");
    assert!(ref_report.quiesced);
    // Runtime semantics.
    let compiler = Compiler::from_source("pipeline", PIPELINE_SRC).expect("compiles");
    let (_, report, ()) = compiler.profile_run(None, "t", |_| ()).expect("runs");
    assert_eq!(report.invocations as usize, ref_report.invocations.len());
}

/// Tag-hash routing (§4.3.4): a two-parameter task whose parameters share
/// a tag may be replicated; same-tagged objects must then be routed to the
/// same replica so pairs always meet. A generator task mints one fresh tag
/// per pair (`new tag` per invocation, as the paper's library idiom does),
/// and the join asserts it always received a matching pair — across
/// synthesized multi-core layouts.
#[test]
fn tagged_pairs_meet_across_replicated_instances() {
    let pairs = 24;
    let src = format!(
        r#"
        class StartupObject {{ flag initialstate; }}
        class Gen {{ flag go; int next; int total; Gen(int total) {{ this.total = total; }} }}
        class Left {{ flag ready; flag joined; int id; Left(int id) {{ this.id = id; }} }}
        class Right {{ flag ready; int id; int partner; Right(int id) {{ this.id = id; this.partner = 0 - 1; }} }}
        tagtype link;
        task startup(StartupObject s in initialstate) {{
            Gen g = new Gen({pairs}){{ go := true }};
            taskexit(s: initialstate := false);
        }}
        task generate(Gen g in go) {{
            tag t = new tag(link);
            Left l = new Left(g.next){{ ready := true, add t }};
            Right r = new Right(g.next){{ ready := true, add t }};
            g.next = g.next + 1;
            if (g.next == g.total) {{ taskexit(g: go := false); }}
            taskexit(g: go := true);
        }}
        task join(Left l in ready with link t, Right r in ready with link t) {{
            r.partner = l.id;
            taskexit(l: ready := false, joined := true, clear t; r: ready := false, clear t);
        }}
        "#
    );
    let compiler = Compiler::from_source("tagged", &src).expect("compiles");
    let join = compiler
        .program
        .spec
        .task_by_name("join")
        .expect("declared");
    assert!(compiler.program.spec.task(join).all_params_share_tag());

    let check = |exec: &bamboo::VirtualExecutor<'_>| {
        let right = compiler
            .program
            .spec
            .class_by_name("Right")
            .expect("declared");
        let heap = exec.interp_heap().expect("interpreted");
        let mut joined = 0;
        for obj in exec.store.live_of_class(right) {
            let r = match exec.store.get(obj).payload {
                bamboo::runtime::PayloadSlot::Interp(r) => r,
                _ => unreachable!(),
            };
            let id = format!("{}", heap.field(r, 0));
            let partner = format!("{}", heap.field(r, 1));
            assert_eq!(id, partner, "right {id} joined with left {partner}");
            joined += 1;
        }
        joined
    };

    // Single core.
    let (profile, _, joined) = compiler.profile_run(None, "t", check).expect("runs");
    assert_eq!(joined, pairs);

    // Synthesized multi-core layouts (the join group may be replicated;
    // tag-hash routing must keep pairs together).
    for cores in [3usize, 8] {
        let machine = MachineDescription::n_cores(cores);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cores as u64);
        let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let mut exec =
            compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
        let report = exec.run(None).expect("runs");
        assert!(report.quiesced);
        assert_eq!(check(&exec), pairs, "pairs lost on {cores} cores");
    }
}

/// The interpreter's float arithmetic is ordinary f64: a Fourier
/// coefficient computed by the DSL must be bit-identical to the native
/// Rust kernel computing the same sum.
#[test]
fn dsl_float_math_matches_native_bit_for_bit() {
    let points = 64;
    let src = format!(
        r#"
        class StartupObject {{ flag initialstate; }}
        class Out {{
            flag done;
            float a1;
            Out() {{}}
            void compute() {{
                int points = {points};
                float pi = 3.141592653589793;
                float dx = 2.0 / itof(points);
                float ak = 0.0;
                for (int i = 0; i <= points; i = i + 1) {{
                    float x = itof(i) * dx;
                    float w = 1.0;
                    if (i == 0) {{ w = 0.5; }}
                    if (i == points) {{ w = 0.5; }}
                    float f = pow(x + 1.0, x);
                    float phase = pi * 1.0 * x;
                    ak = ak + w * f * cos(phase) * dx;
                }}
                this.a1 = ak / 2.0;
            }}
        }}
        task startup(StartupObject s in initialstate) {{
            Out o = new Out(){{ done := true }};
            o.compute();
            taskexit(s: initialstate := false);
        }}
        task sink(Out o in done) {{ taskexit(o: done := false); }}
        "#
    );
    let compiler = Compiler::from_source("parity", &src).expect("compiles");
    let (_, _, dsl_a1) = compiler
        .profile_run(None, "t", |exec| {
            let out = compiler
                .program
                .spec
                .class_by_name("Out")
                .expect("declared");
            let obj = exec.store.live_of_class(out)[0];
            let r = match exec.store.get(obj).payload {
                bamboo::runtime::PayloadSlot::Interp(r) => r,
                _ => unreachable!(),
            };
            match exec.interp_heap().expect("interp").field(r, 0) {
                bamboo::lang::interp::Value::Float(v) => *v,
                other => panic!("unexpected {other:?}"),
            }
        })
        .expect("runs");
    let native = bamboo_apps::series::fourier_coefficients(1, 1, points)[0].0;
    assert_eq!(
        dsl_a1.to_bits(),
        native.to_bits(),
        "dsl {dsl_a1} vs native {native}"
    );
}

/// SCC tree preprocessing end-to-end: two producer tasks feed the same
/// consumer class, so the preprocessing duplicates the consumer group
/// (one copy per work source, §4.3.2). Execution must route each
/// producer's objects to its own copy and still total correctly.
#[test]
fn diamond_producers_duplicate_the_consumer_group() {
    let src = r#"
        class StartupObject { flag initialstate; }
        class AWork { flag ready; int v; AWork(int v) { this.v = v; } }
        class BWork { flag ready; int v; BWork(int v) { this.v = v; } }
        class CItem { flag ready; flag done; int v; CItem(int v) { this.v = v; } }
        class Total {
            flag open; flag closed;
            int sum; int seen; int expected;
            Total(int expected) { this.expected = expected; }
        }
        task startup(StartupObject s in initialstate) {
            for (int i = 0; i < 5; i = i + 1) {
                AWork a = new AWork(i){ ready := true };
                BWork b = new BWork(i * 10){ ready := true };
            }
            Total t = new Total(10){ open := true };
            taskexit(s: initialstate := false);
        }
        task produceFromA(AWork a in ready) {
            CItem c = new CItem(a.v + 1){ ready := true };
            taskexit(a: ready := false);
        }
        task produceFromB(BWork b in ready) {
            CItem c = new CItem(b.v + 2){ ready := true };
            taskexit(b: ready := false);
        }
        task consume(CItem c in ready) {
            c.v = c.v * 3;
            taskexit(c: ready := false, done := true);
        }
        task total(Total t in open, CItem c in done) {
            t.sum = t.sum + c.v;
            t.seen = t.seen + 1;
            if (t.seen == t.expected) { taskexit(t: open := false, closed := true; c: done := false); }
            taskexit(c: done := false);
        }
    "#;
    // Expected: A side contributes 3*(i+1) for i in 0..5 = 3*15 = 45;
    // B side contributes 3*(10i+2) = 3*(0+10+20+30+40 + 5*2) = 330.
    let expected = 45 + 330;
    let compiler = Compiler::from_source("diamond", src).expect("compiles");
    let (profile, _, sum1) = compiler
        .profile_run(None, "t", |e| {
            let class = compiler
                .program
                .spec
                .class_by_name("Total")
                .expect("declared");
            let obj = e.store.live_of_class(class)[0];
            let r = match e.store.get(obj).payload {
                bamboo::runtime::PayloadSlot::Interp(r) => r,
                _ => unreachable!(),
            };
            format!("{}", e.interp_heap().expect("interp").field(r, 0))
        })
        .expect("runs");
    assert_eq!(sum1, expected.to_string());

    // The preprocessed graph duplicated the CItem group per source.
    let graph = bamboo::schedule::scc_tree_transform(&compiler.graph_with_profile(&profile));
    let citem = compiler
        .program
        .spec
        .class_by_name("CItem")
        .expect("declared");
    let consume = compiler
        .program
        .spec
        .task_by_name("consume")
        .expect("declared");
    let copies = graph
        .groups
        .iter()
        .filter(|g| g.classes.contains(&citem) && g.has_task(consume))
        .count();
    assert_eq!(copies, 2, "consumer group duplicated once per producer");

    // And a synthesized multi-core run still totals correctly.
    let machine = MachineDescription::n_cores(6);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
    let report = exec.run(None).expect("runs");
    assert!(report.quiesced);
    let class = compiler
        .program
        .spec
        .class_by_name("Total")
        .expect("declared");
    let obj = exec.store.live_of_class(class)[0];
    let r = match exec.store.get(obj).payload {
        bamboo::runtime::PayloadSlot::Interp(r) => r,
        _ => unreachable!(),
    };
    let sum = format!("{}", exec.interp_heap().expect("interp").field(r, 0));
    assert_eq!(sum, expected.to_string());
}

/// Transactional capture: an object whose state satisfies several task
/// guards sits in several parameter sets; it must still be consumed by
/// exactly one invocation (reservation = the virtual-time analog of
/// holding its lock).
#[test]
fn overlapping_guards_consume_each_object_once() {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("overlap");
    let s = b.class("StartupObject", &["initialstate"]);
    let w = b.class("W", &["hot"]);
    let init = b.flag(s, "initialstate");
    let hot = b.flag(w, "hot");
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(w, &[(hot, true)], &[])
        .exit("", |e| e.set(0, init, false))
        .body(body(|ctx| {
            for i in 0..10i64 {
                ctx.create(0, i);
            }
            ctx.charge(5);
            0
        }))
        .finish();
    for name in ["eatA", "eatB"] {
        b.task(name)
            .param("w", w, FlagExpr::flag(hot))
            .exit("", |e| e.set(0, hot, false))
            .body(body(|ctx| {
                ctx.charge(100);
                0
            }))
            .finish();
    }
    let compiler = Compiler::from_native(b.build().expect("valid"));
    let (_, report, ()) = compiler.profile_run(None, "t", |_| ()).expect("runs");
    assert_eq!(report.invocations, 11, "each object consumed exactly once");
}

/// A Mandelbrot row computed in the DSL must reproduce the native
/// kernel's escape-iteration counts exactly (integer loop + f64
/// comparisons under the interpreter).
#[test]
fn dsl_mandelbrot_matches_native_kernel() {
    let (width, height, max_iter) = (24usize, 8usize, 50u32);
    let y = 3usize; // the row both sides compute
    let src = format!(
        r#"
        class StartupObject {{ flag initialstate; }}
        class Row {{
            flag done;
            int[] counts;
            Row() {{ this.counts = new int[{width}]; }}
            void render() {{
                int width = {width};
                int height = {height};
                int maxIter = {max_iter};
                float ci = 0.0 - 1.0 + 2.0 * itof({y}) / itof(height);
                for (int x = 0; x < width; x = x + 1) {{
                    float cr = 0.0 - 2.5 + 3.5 * itof(x) / itof(width);
                    float zr = 0.0;
                    float zi = 0.0;
                    int iter = 0;
                    boolean go = true;
                    while (go) {{
                        if (iter >= maxIter) {{ go = false; }}
                        else {{
                            if (zr * zr + zi * zi > 4.0) {{ go = false; }}
                            else {{
                                float nzr = zr * zr - zi * zi + cr;
                                zi = 2.0 * zr * zi + ci;
                                zr = nzr;
                                iter = iter + 1;
                            }}
                        }}
                    }}
                    this.counts[x] = iter;
                }}
            }}
        }}
        task startup(StartupObject s in initialstate) {{
            Row r = new Row(){{ done := true }};
            r.render();
            taskexit(s: initialstate := false);
        }}
        task sink(Row r in done) {{ taskexit(r: done := false); }}
        "#
    );
    let compiler = Compiler::from_source("mandel", &src).expect("compiles");
    let (_, _, dsl_counts) = compiler
        .profile_run(None, "t", |exec| {
            let row = compiler
                .program
                .spec
                .class_by_name("Row")
                .expect("declared");
            let obj = exec.store.live_of_class(row)[0];
            let r = match exec.store.get(obj).payload {
                bamboo::runtime::PayloadSlot::Interp(r) => r,
                _ => unreachable!(),
            };
            let heap = exec.interp_heap().expect("interp");
            let arr = match heap.field(r, 0) {
                bamboo::lang::interp::Value::Ref(a) => *a,
                other => panic!("unexpected {other:?}"),
            };
            heap.array(arr)
                .iter()
                .map(|v| match v {
                    bamboo::lang::interp::Value::Int(i) => *i as u32,
                    other => panic!("unexpected {other:?}"),
                })
                .collect::<Vec<u32>>()
        })
        .expect("runs");
    let params = bamboo_apps::fractal::Params {
        width,
        height,
        bands: height, // one row per band
        max_iter,
    };
    let (native_counts, _) = bamboo_apps::fractal::render_band(&params, y, 1);
    assert_eq!(dsl_counts, native_counts);
}

/// Virtual-time execution is deterministic: two runs of the same layout
/// produce identical traces, invocation for invocation.
#[test]
fn virtual_execution_is_deterministic() {
    use bamboo_apps::Benchmark as _;
    let bench = bamboo_apps::montecarlo::MonteCarlo;
    let compiler = bench.compiler(bamboo_apps::Scale::Small);
    let (profile, _, ()) = compiler.profile_run(None, "t", |_| ()).expect("profiles");
    let machine = MachineDescription::n_cores(5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let run = || {
        let config = ExecConfig {
            collect_trace: true,
            ..ExecConfig::default()
        };
        let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
        exec.run(None).expect("runs").trace.expect("trace")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.tasks.len(), b.tasks.len());
    for (x, y) in a.tasks.iter().zip(&b.tasks) {
        assert_eq!(
            (x.task, x.core, x.start, x.end),
            (y.task, y.core, y.start, y.end)
        );
    }
}
