//! Determinism of parallel, memoized synthesis (paper §4.5 machinery).
//!
//! Candidate evaluation inside the DSA annealer and the per-variant
//! replication search both fan out over worker threads, and simulations
//! are memoized by layout fingerprint — none of which may change what
//! gets synthesized. These tests pin the contract on real benchmarks:
//! the same seed yields the identical best layout, makespan, and
//! [`DsaStats`] trajectory at any worker-thread count, with and without
//! the simulation cache.

use bamboo::{DsaOptions, MachineDescription, SynthesisOptions, SynthesisResult};
use bamboo_apps::{by_name, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizes `bench` at `Scale::Small` for the paper's 62-core
/// machine with the given options, from a fixed seed.
fn synthesize(bench: &str, opts: &SynthesisOptions) -> SynthesisResult {
    let bench = by_name(bench).expect("benchmark registered");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "t", |_| ())
        .expect("profile run");
    let machine = MachineDescription::tilepro64();
    let mut rng = StdRng::seed_from_u64(4242);
    compiler.synthesize(&profile, &machine, opts, &mut rng)
}

#[test]
fn same_seed_is_identical_at_any_thread_count() {
    for bench in ["KMeans", "FilterBank"] {
        let serial = synthesize(bench, &SynthesisOptions::default().with_threads(1));
        for threads in [4, 8] {
            let parallel = synthesize(bench, &SynthesisOptions::default().with_threads(threads));
            assert_eq!(
                parallel.layout, serial.layout,
                "{bench}: layout diverged at {threads} threads"
            );
            assert_eq!(
                parallel.estimate.makespan, serial.estimate.makespan,
                "{bench}: makespan diverged at {threads} threads"
            );
            assert_eq!(
                parallel.stats.trajectory, serial.stats.trajectory,
                "{bench}: search trajectory diverged at {threads} threads"
            );
            assert_eq!(
                parallel.stats, serial.stats,
                "{bench}: DSA statistics diverged at {threads} threads"
            );
            assert_eq!(
                parallel.replication, serial.replication,
                "{bench}: replication choice diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn memoization_does_not_change_what_is_synthesized() {
    for bench in ["KMeans", "FilterBank"] {
        let memoized = synthesize(bench, &SynthesisOptions::default());
        let cold = synthesize(
            bench,
            &SynthesisOptions {
                dsa: DsaOptions {
                    memoize: false,
                    ..DsaOptions::default()
                },
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(memoized.layout, cold.layout, "{bench}: layout diverged");
        assert_eq!(
            memoized.estimate.makespan, cold.estimate.makespan,
            "{bench}: makespan diverged"
        );
        assert_eq!(
            memoized.stats.trajectory, cold.stats.trajectory,
            "{bench}: trajectory diverged"
        );
        // The cache trades simulations for replayed hits, one for one.
        assert!(memoized.stats.cache_hits > 0, "{bench}: cache never hit");
        assert_eq!(
            memoized.stats.simulations + memoized.stats.cache_hits,
            memoized.stats.candidates_evaluated,
            "{bench}: evaluation accounting broken"
        );
        assert_eq!(
            cold.stats.simulations, cold.stats.candidates_evaluated,
            "{bench}: cold run should simulate every candidate"
        );
    }
}
