//! Property-based tests (proptest) over the system's core invariants:
//! flag algebra, guard evaluation, the union-find, the Markov model,
//! lexer/parser totality, and — most importantly — the end-to-end
//! invariant that randomly generated fan-out/reduce programs compute the
//! same result on one virtual core, on many virtual cores, and serially.

use bamboo::analysis::UnionFind;
use bamboo::lang::ids::{FlagId, TaskId};
use bamboo::lang::spec::{FlagExpr, FlagSet};
use bamboo::profile::{MarkovModel, ProfileCollector};
use bamboo::{
    body, Compiler, ExecConfig, MachineDescription, NativeBody, ProgramBuilder, SynthesisOptions,
};
use proptest::prelude::*;
use rand::SeedableRng;

// ---- flag algebra -------------------------------------------------------

proptest! {
    #[test]
    fn flagset_union_is_commutative_and_idempotent(a in any::<u64>(), b in any::<u64>()) {
        let (fa, fb) = (FlagSet::from_bits(a), FlagSet::from_bits(b));
        prop_assert_eq!(fa.union(fb), fb.union(fa));
        prop_assert_eq!(fa.union(fa), fa);
        // Masking by the union leaves both operands unchanged.
        prop_assert_eq!(fa.masked(fa.union(fb)), fa);
    }

    #[test]
    fn flagset_iter_round_trips(bits in any::<u64>()) {
        let set = FlagSet::from_bits(bits);
        let rebuilt: FlagSet = set.iter().collect();
        prop_assert_eq!(rebuilt, set);
        prop_assert_eq!(set.len(), bits.count_ones() as usize);
    }

    #[test]
    fn guard_de_morgan(bits in any::<u64>(), i in 0usize..64, j in 0usize..64) {
        let flags = FlagSet::from_bits(bits);
        let a = FlagExpr::flag(FlagId::new(i));
        let b = FlagExpr::flag(FlagId::new(j));
        let lhs = a.clone().and(b.clone()).not();
        let rhs = a.clone().not().or(b.clone().not());
        prop_assert_eq!(lhs.eval(flags), rhs.eval(flags));
        // Double negation.
        prop_assert_eq!(a.clone().not().not().eval(flags), a.eval(flags));
    }
}

// ---- union-find ---------------------------------------------------------

proptest! {
    #[test]
    fn union_find_matches_naive_partition(
        unions in proptest::collection::vec((0usize..24, 0usize..24), 0..40)
    ) {
        let mut uf = UnionFind::new(24);
        // Naive: label vector, relabel on union.
        let mut labels: Vec<usize> = (0..24).collect();
        for (a, b) in unions {
            uf.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for x in 0..24 {
            for y in 0..24 {
                prop_assert_eq!(uf.same(x, y), labels[x] == labels[y]);
            }
        }
    }
}

// ---- lexer / parser totality ---------------------------------------------

proptest! {
    #[test]
    fn lexer_and_parser_never_panic(src in "[ -~\\n]{0,200}") {
        // Any outcome is fine; panics are not.
        if let Ok(tokens) = bamboo::lang::lexer::lex(&src) {
            let _ = bamboo::lang::parser::parse(tokens);
        }
    }

    #[test]
    fn generated_task_declarations_parse(
        n_flags in 1usize..4,
        n_tasks in 1usize..4,
    ) {
        let mut src = String::from("class StartupObject { flag initialstate; }\n");
        src.push_str("class W {\n");
        for f in 0..n_flags {
            src.push_str(&format!("    flag f{f};\n"));
        }
        src.push_str("}\n");
        src.push_str(
            "task startup(StartupObject s in initialstate) { taskexit(s: initialstate := false); }\n",
        );
        for t in 0..n_tasks {
            let guard = format!("f{}", t % n_flags);
            let clear = format!("f{}", t % n_flags);
            src.push_str(&format!(
                "task t{t}(W w in {guard}) {{ taskexit(w: {clear} := false); }}\n"
            ));
        }
        let compiled = bamboo::lang::compile_source("gen", &src);
        prop_assert!(compiled.is_ok(), "generated source failed: {:?}", compiled.err());
    }
}

// ---- Markov model ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn markov_exit_frequencies_match_profile(counts in proptest::collection::vec(1u64..20, 2..4)) {
        // Build a synthetic one-task profile with the given exit counts.
        let mut b: ProgramBuilder<()> = ProgramBuilder::new("m");
        let s = b.class("StartupObject", &["initialstate"]);
        let init = b.flag(s, "initialstate");
        let mut tb = b.task("t").param("s", s, FlagExpr::flag(init));
        for _ in 0..counts.len() {
            tb = tb.exit("", |e| e);
        }
        tb.body(()).finish();
        let spec = b.build().expect("valid").spec;
        let mut collector = ProfileCollector::new(&spec, "x");
        for (e, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                collector.record(TaskId::new(0), bamboo::ExitId::new(e), 10, &[]);
            }
        }
        let profile = collector.finish();
        // Without replay, over exactly one profile-length horizon the
        // count-matching rule reproduces the counts exactly.
        let total: u64 = counts.iter().sum();
        let mut model = MarkovModel::without_replay(&profile);
        let mut predicted = vec![0u64; counts.len()];
        for _ in 0..total {
            predicted[model.predict(TaskId::new(0)).exit.index()] += 1;
        }
        prop_assert_eq!(&predicted, &counts);
        // With replay, the exact recorded order comes back.
        let mut replay = MarkovModel::new(&profile);
        for rec in &profile.tasks[0].sequence {
            prop_assert_eq!(replay.predict(TaskId::new(0)).exit.index(), rec.exit as usize);
        }
    }
}

// ---- end-to-end: random programs, serial == parallel ----------------------

/// Builds a fan-out/reduce program over arbitrary work values.
fn fanout_program(values: Vec<i64>) -> Compiler {
    let n = values.len() as i64;
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("prop-fanout");
    let s = b.class("StartupObject", &["initialstate"]);
    let w = b.class("Work", &["ready", "done"]);
    let acc = b.class("Acc", &["open", "closed"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(w, "ready");
    let done = b.flag(w, "done");
    let open = b.flag(acc, "open");
    let closed = b.flag(acc, "closed");
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(w, &[(ready, true)], &[])
        .alloc(acc, &[(open, true)], &[])
        .exit("", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for &v in &values {
                ctx.create(0, v);
            }
            ctx.create(1, (0i64, 0i64, n));
            ctx.charge(5);
            0
        }))
        .finish();
    b.task("work")
        .param("w", w, FlagExpr::flag(ready))
        .exit("", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(|ctx| {
            let v = ctx.param_mut::<i64>(0);
            *v = v.wrapping_mul(3).wrapping_add(1);
            ctx.charge(100);
            0
        }))
        .finish();
    b.task("fold")
        .param("a", acc, FlagExpr::flag(open))
        .param("w", w, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("done", |e| {
            e.set(0, open, false)
                .set(0, closed, true)
                .set(1, done, false)
        })
        .body(body(|ctx| {
            let w = *ctx.param::<i64>(1);
            let a = ctx.param_mut::<(i64, i64, i64)>(0);
            a.0 = a.0.wrapping_add(w);
            a.1 += 1;
            let fin = a.1 == a.2;
            ctx.charge(20);
            if fin {
                1
            } else {
                0
            }
        }))
        .finish();
    Compiler::from_native(b.build().expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn random_fanout_program_is_core_count_invariant(
        values in proptest::collection::vec(-1000i64..1000, 1..24),
        cores in 2usize..9,
        seed in 0u64..1000,
    ) {
        let expected: i64 = values.iter().map(|v| v.wrapping_mul(3).wrapping_add(1)).sum();
        let compiler = fanout_program(values);
        let acc_class = compiler.program.spec.class_by_name("Acc").expect("exists");

        // One core.
        let (profile, _, one) = compiler
            .profile_run(None, "p", |exec| {
                exec.payload::<(i64, i64, i64)>(exec.store.live_of_class(acc_class)[0]).0
            })
            .expect("runs");
        prop_assert_eq!(one, expected);

        // Synthesized multi-core.
        let machine = MachineDescription::n_cores(cores);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
        let report = exec.run(None).expect("runs");
        prop_assert!(report.quiesced);
        let many = exec.payload::<(i64, i64, i64)>(exec.store.live_of_class(acc_class)[0]).0;
        prop_assert_eq!(many, expected);
    }

    #[test]
    fn trace_invariants_hold_for_random_layout_seeds(seed in 0u64..500) {
        let compiler = fanout_program((0..10).collect());
        let (profile, _, ()) = compiler.profile_run(None, "p", |_| ()).expect("runs");
        let machine = MachineDescription::n_cores(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let config = ExecConfig { collect_trace: true, ..ExecConfig::default() };
        let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
        let report = exec.run(None).expect("runs");
        let trace = report.trace.expect("requested");
        // Work conservation: every invocation appears exactly once.
        prop_assert_eq!(trace.tasks.len() as u64, report.invocations);
        // No core runs two invocations at once, and starts respect data.
        for t in &trace.tasks {
            prop_assert!(t.start >= t.data_ready());
            if let Some(prev) = t.prev_on_core {
                prop_assert!(trace.tasks[prev].end <= t.start);
            }
        }
        // The makespan is at least the critical path's work.
        let cp = bamboo::schedule::critical_path(&trace);
        let cp_work: u64 = cp.iter().map(|&i| trace.tasks[i].duration()).sum();
        prop_assert!(report.makespan >= cp_work);
    }
}

// ---- chaos: router re-striping ---------------------------------------------

proptest! {
    /// Dead-core re-striping (DESIGN.md §14): for any subset of dead
    /// cores, `restripe` is a total function onto the live cores, and
    /// over a dense key range each live core's load is within 1 of
    /// uniform. With every candidate dead it returns `None` (the caller
    /// fails the run with a typed error instead of routing blind).
    #[test]
    fn restripe_is_total_and_balanced_over_live_cores(
        cores in 1usize..12,
        dead_mask in any::<u16>(),
        shards in 1usize..5,
    ) {
        use bamboo::runtime::ShardedRouter;
        use bamboo::telemetry::Counter;
        let router = ShardedRouter::new(shards, cores, Counter::noop());
        let candidates: Vec<usize> = (0..cores).collect();
        for c in 0..cores {
            if dead_mask & (1 << c) != 0 {
                router.mark_dead(c);
            }
        }
        let live: Vec<usize> =
            candidates.iter().copied().filter(|&c| !router.is_dead(c)).collect();
        prop_assert_eq!(router.live_count(), live.len());

        let keys: u64 = 10_000;
        let mut load = vec![0u64; cores];
        for key in 0..keys {
            match router.restripe(&candidates, key) {
                Some(c) => {
                    prop_assert!(!router.is_dead(c), "routed key {key} to dead core {c}");
                    load[c] += 1;
                }
                None => prop_assert!(live.is_empty(), "None with {} live cores", live.len()),
            }
        }
        if !live.is_empty() {
            prop_assert_eq!(load.iter().sum::<u64>(), keys, "restripe must be total");
            let floor = keys / live.len() as u64;
            for &c in &live {
                prop_assert!(
                    load[c] == floor || load[c] == floor + 1,
                    "core {} took {} of {} keys over {} live cores",
                    c, load[c], keys, live.len()
                );
            }
        }
    }
}

// ---- ASTG soundness --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Dependence-analysis soundness: every concrete abstract state an
    /// execution reaches (masked to guard-relevant flags) must have a node
    /// in the class's ASTG.
    #[test]
    fn astg_covers_every_reachable_state(
        stages in 2usize..5,
        objects in 1usize..5,
        with_skip in any::<bool>(),
    ) {
        // Build a staged DSL program: objects move f0 -> f1 -> ... -> f_k,
        // optionally skipping a stage via a second exit.
        let mut src = String::from("class StartupObject { flag initialstate; }\nclass W {\n");
        for i in 0..=stages {
            src.push_str(&format!("    flag f{i};\n"));
        }
        src.push_str("    int hops;\n}\n");
        src.push_str("task startup(StartupObject s in initialstate) {\n");
        src.push_str(&format!(
            "    for (int i = 0; i < {objects}; i = i + 1) {{ W w = new W(){{ f0 := true }}; }}\n"
        ));
        src.push_str("    taskexit(s: initialstate := false);\n}\n");
        for i in 0..stages {
            let next = i + 1;
            let skip = (i + 2).min(stages);
            if with_skip && skip != next {
                src.push_str(&format!(
                    "task t{i}(W w in f{i}) {{\n\
                         w.hops = w.hops + 1;\n\
                         if (w.hops % 2 == 0) {{ taskexit(w: f{i} := false, f{skip} := true); }}\n\
                         taskexit(w: f{i} := false, f{next} := true);\n\
                     }}\n"
                ));
            } else {
                src.push_str(&format!(
                    "task t{i}(W w in f{i}) {{ w.hops = w.hops + 1; taskexit(w: f{i} := false, f{next} := true); }}\n"
                ));
            }
        }
        let compiled = bamboo::lang::compile_source("staged", &src).expect("staged program compiles");
        let dependence = bamboo::DependenceAnalysis::run(&compiled.spec);
        let relevant = compiled.spec.guard_relevant_flags();

        let mut driver = bamboo::lang::interp::ReferenceDriver::new(&compiled);
        let mut steps = 0;
        loop {
            // Check every live object's (masked) state has an ASTG node.
            for (obj, meta) in driver.meta.clone() {
                let class = driver.interp.heap.class_of(obj);
                let masked = meta.flags.masked(relevant[class.index()]);
                let state = bamboo::analysis::AbstractState::from_flags(masked);
                let astg = dependence.astg(class);
                prop_assert!(
                    astg.find(&state).is_some(),
                    "class {} reached state {:?} missing from its ASTG",
                    compiled.spec.class(class).name,
                    masked
                );
            }
            match driver.step().expect("no traps") {
                Some(_) => {
                    steps += 1;
                    prop_assert!(steps < 10_000, "did not quiesce");
                }
                None => break,
            }
        }
    }
}

// ---- pretty-printer round trip ---------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Printing a parsed program and re-parsing the output yields the same
    /// AST (modulo spans), for generated programs over randomized shapes.
    #[test]
    fn pretty_print_round_trips_generated_programs(
        n_flags in 1usize..4,
        n_fields in 0usize..3,
        n_tasks in 1usize..4,
        use_tags in any::<bool>(),
    ) {
        let mut src = String::new();
        if use_tags {
            src.push_str("tagtype link;\n");
        }
        src.push_str("class StartupObject { flag initialstate; }\nclass W {\n");
        for f in 0..n_flags {
            src.push_str(&format!("    flag f{f};\n"));
        }
        for f in 0..n_fields {
            src.push_str(&format!("    int v{f};\n"));
        }
        src.push_str("}\n");
        src.push_str("task startup(StartupObject s in initialstate) {\n");
        if use_tags {
            src.push_str("    tag t = new tag(link);\n    W w = new W(){ f0 := true, add t };\n");
        } else {
            src.push_str("    W w = new W(){ f0 := true };\n");
        }
        src.push_str("    taskexit(s: initialstate := false);\n}\n");
        for t in 0..n_tasks {
            let g = t % n_flags;
            src.push_str(&format!(
                "task t{t}(W w in f{g} or (f0 and !f{g})) {{\n    taskexit(w: f{g} := false);\n}}\n"
            ));
        }
        let unit = bamboo::lang::parser::parse(bamboo::lang::lexer::lex(&src).expect("lex"))
            .expect("parse");
        let printed = bamboo::lang::pretty::unit_to_source(&unit);
        let reparsed =
            bamboo::lang::parser::parse(bamboo::lang::lexer::lex(&printed).expect("relex"))
                .expect("reparse");
        prop_assert!(
            bamboo::lang::pretty::units_equal_modulo_spans(&unit, &reparsed),
            "round trip diverged for:\n{printed}"
        );
    }
}

// ---- disjointness analysis ground truth ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Generated two-parameter tasks either store a cross-parameter
    /// reference (directly, through a method, or through a shared fresh
    /// object) or only read; the analysis verdict must match the ground
    /// truth exactly on these shapes.
    #[test]
    fn disjointness_verdict_matches_construction(
        kind in 0usize..5,
    ) {
        let (body_src, shares) = match kind {
            // Read-only accumulation: disjoint.
            0 => ("a.total = a.total + b.v;", false),
            // Direct cross-parameter store: shares.
            1 => ("a.kept = b;", true),
            // Store through a method: shares.
            2 => ("a.keep(b);", true),
            // Each param gets its own fresh node: disjoint.
            3 => ("a.n = new Node(); b.n = new Node();", false),
            // Both params reference one fresh node: shares.
            _ => ("Node shared = new Node(); a.n = shared; b.n = shared;", true),
        };
        let src = format!(
            r#"
            class StartupObject {{ flag initialstate; }}
            class Node {{ int v; }}
            class A {{
                flag on;
                int total;
                B kept;
                Node n;
                void keep(B b) {{ this.kept = b; }}
            }}
            class B {{ flag on; int v; Node n; }}
            task startup(StartupObject s in initialstate) {{
                A a = new A(){{ on := true }};
                B b = new B(){{ on := true }};
                taskexit(s: initialstate := false);
            }}
            task pair(A a in on, B b in on) {{
                {body_src}
                taskexit(a: on := false; b: on := false);
            }}
            "#
        );
        let compiler = Compiler::from_source("disjoint-prop", &src).expect("compiles");
        let pair = compiler.program.spec.task_by_name("pair").expect("declared");
        prop_assert_eq!(
            compiler.locks.lock_plan(pair).has_sharing(),
            shares,
            "kind {} misjudged",
            kind
        );
    }
}
