//! Integration tests for `bamboo::telemetry::analyze` (the
//! `bamboo-doctor` analysis layer) over real executor runs.
//!
//! Covers the PR's acceptance criteria end to end: the causal graph
//! reconstructed from a threaded run matches the virtual executor's
//! edge list on real benchmarks, stolen invocations stay linked to
//! their original producers, and a full diagnosis yields an exact
//! per-core time breakdown plus ranked findings.

use bamboo::telemetry::analyze::{diagnose, ObservedGraph};
use bamboo::{
    Compiler, Deployment, ExecConfig, ExecutionTrace, MachineDescription, RunOptions,
    SynthesisOptions, Telemetry, TelemetryReport, ThreadedExecutor, ThreadedReport,
};
use bamboo_apps::{by_name, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Profiles `bench_name` at small scale, synthesizes for `cores` cores
/// with a fixed seed, and deploys.
fn deploy_for(
    bench_name: &str,
    cores: usize,
    seed: u64,
) -> (Compiler, Deployment, MachineDescription) {
    let bench = by_name(bench_name).expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "doctor", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment, machine)
}

/// One telemetry-enabled threaded run.
fn observed_run(deployment: &Deployment, cores: usize) -> (TelemetryReport, ThreadedReport) {
    let telemetry = Telemetry::enabled(cores);
    let options = RunOptions {
        telemetry: telemetry.clone(),
        ..RunOptions::default()
    };
    let run = ThreadedExecutor::default()
        .run(deployment, options)
        .expect("threaded run");
    (telemetry.report(), run)
}

/// The virtual executor's trace over the same deployment.
fn predicted_trace(
    compiler: &Compiler,
    deployment: &Deployment,
    machine: &MachineDescription,
) -> ExecutionTrace {
    let config = ExecConfig {
        collect_trace: true,
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&deployment.graph, &deployment.layout, machine, config);
    exec.run(None)
        .expect("virtual run")
        .trace
        .expect("trace requested")
}

/// A trace's causal edge list as a `(producer task, consumer task)`
/// multiset (external/startup edges excluded) — the same fingerprint
/// [`ObservedGraph::edge_task_pairs`] computes for observed runs.
fn trace_edge_pairs(trace: &ExecutionTrace) -> HashMap<(u64, u64), u64> {
    let mut pairs = HashMap::new();
    for t in &trace.tasks {
        for dep in &t.deps {
            if let Some(p) = dep.producer {
                let key = (trace.tasks[p].task.index() as u64, t.task.index() as u64);
                *pairs.entry(key).or_insert(0) += 1;
            }
        }
    }
    pairs
}

/// Satellite: the causal graph reconstructed from observed telemetry
/// carries exactly the data edges the deterministic virtual executor
/// predicts — per-task invocation counts and the (producer task,
/// consumer task) edge multiset both match, on real benchmarks.
#[test]
fn observed_causal_edges_match_virtual_executor() {
    for bench in ["kmeans", "filterbank"] {
        let (compiler, deployment, machine) = deploy_for(bench, 8, 42);
        let (report, run) = observed_run(&deployment, 8);
        let graph = ObservedGraph::from_report(&report);
        assert_eq!(graph.incomplete, 0, "{bench}: ring held the whole run");
        assert_eq!(graph.invocations.len() as u64, run.invocations, "{bench}");

        let predicted = predicted_trace(&compiler, &deployment, &machine);
        let predicted_counts: HashMap<u64, u64> =
            predicted.tasks.iter().fold(HashMap::new(), |mut acc, t| {
                *acc.entry(t.task.index() as u64).or_insert(0) += 1;
                acc
            });
        assert_eq!(
            graph.task_counts(),
            predicted_counts,
            "{bench}: per-task counts"
        );
        assert_eq!(
            graph.edge_task_pairs(),
            trace_edge_pairs(&predicted),
            "{bench}: causal edge multiset"
        );
    }
}

/// Satellite: a work-stolen invocation's received objects still link to
/// the invocation that actually produced them — theft changes where the
/// body runs, never who enabled it. Steals are opportunistic, so the
/// run repeats until one records a theft (kmeans at 8 cores steals in
/// ~90% of runs; 25 attempts make a miss astronomically unlikely).
#[test]
fn stolen_invocations_link_to_original_producers() {
    let (compiler, deployment, machine) = deploy_for("kmeans", 8, 42);
    let predicted_pairs = trace_edge_pairs(&predicted_trace(&compiler, &deployment, &machine));
    for attempt in 0..25 {
        let (report, run) = observed_run(&deployment, 8);
        if run.steals == 0 {
            continue;
        }
        let graph = ObservedGraph::from_report(&report);
        let stolen: Vec<_> = graph.stolen().collect();
        // `run.steals` counts steal *events*; the graph records distinct
        // stolen *invocations*. A stolen invocation that fails its locks
        // re-queues on the thief (same id) and can be stolen again, so
        // events can exceed invocations — never the other way around.
        assert!(
            !stolen.is_empty() && (stolen.len() as u64) <= run.steals,
            "attempt {attempt}: {} stolen invocations vs {} steal events",
            stolen.len(),
            run.steals,
        );
        let task_of: HashMap<u64, u64> = graph
            .invocations
            .iter()
            .map(|inv| (inv.id, inv.task))
            .collect();
        for inv in stolen {
            let victim = inv.stolen_from.expect("stolen() filters on this");
            assert_ne!(victim, inv.core, "thieves only scan other cores' queues");
            for dep in &inv.deps {
                let Some(producer) = dep.producer else {
                    continue;
                };
                // The ObjRecv at the thief matches the ObjSend the
                // original producer emitted: same message id, send
                // before receive, producer a real invocation.
                let ptask = task_of.get(&producer).copied().unwrap_or_else(|| {
                    panic!(
                        "dep of stolen invocation {} names unknown producer {producer}",
                        inv.id
                    )
                });
                let sent = dep.sent.expect("producer's ObjSend recorded");
                let received = dep.received.expect("thief's ObjRecv recorded");
                assert!(sent <= received, "send {sent} after receive {received}");
                assert!(
                    predicted_pairs.contains_key(&(ptask, inv.task)),
                    "edge task{ptask}->task{} not predicted by the virtual executor",
                    inv.task,
                );
            }
        }
        return;
    }
    panic!("kmeans at 8 cores recorded no steal in 25 runs");
}

/// Acceptance: a full diagnosis of kmeans on 8 cores yields a per-core
/// breakdown that sums to the span exactly (well within the 1%
/// criterion), an observed critical path, and at least one ranked
/// finding.
#[test]
fn kmeans_diagnosis_breaks_down_wall_time_exactly() {
    let (compiler, deployment, machine) = deploy_for("kmeans", 8, 42);
    let (report, _) = observed_run(&deployment, 8);
    let predicted = predicted_trace(&compiler, &deployment, &machine);
    let diagnosis = diagnose(&report, Some(&predicted));

    assert_eq!(diagnosis.ledger.cores.len(), 8);
    for row in &diagnosis.ledger.cores {
        assert_eq!(
            row.total(),
            diagnosis.ledger.span,
            "core {} ledger partitions the span",
            row.core
        );
    }
    let path = diagnosis.path.as_ref().expect("causal linkage recorded");
    assert!(!path.steps.is_empty());
    assert!(path.makespan > 0);
    assert!(
        !diagnosis.findings.is_empty(),
        "at least one ranked finding"
    );
    // The summary renders with real task names from the program spec.
    let summary = diagnosis.summary(Some(&compiler.program.spec));
    assert!(summary.contains("per-core time breakdown"), "{summary}");
    assert!(summary.contains("observed critical path"), "{summary}");
}
