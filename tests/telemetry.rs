//! Integration tests for the telemetry subsystem (observability across
//! the compiler, scheduler, and executors).
//!
//! Covers the acceptance criteria end to end: Chrome-trace structural
//! validation on a real benchmark, byte-identical determinism of
//! exported virtual traces, the predicted-vs-observed side-by-side
//! export, and DSA search statistics flowing into the metrics registry.

use bamboo::telemetry::{chrome, json, summary, EventKind};
use bamboo::{
    simulate, Compiler, ExecConfig, MachineDescription, Profile, SimOptions, SynthesisOptions,
    SynthesisResult, Telemetry,
};
use bamboo_apps::{by_name, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Profiles `bench_name` at small scale and synthesizes a layout for
/// `cores` cores with a fixed seed.
fn plan_for(
    bench_name: &str,
    cores: usize,
    seed: u64,
) -> (Compiler, Profile, SynthesisResult, MachineDescription) {
    let bench = by_name(bench_name).expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "telemetry", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    (compiler, profile, plan, machine)
}

/// Acceptance criterion: the Chrome trace exported from a benchmark run
/// parses, every event carries pid/tid/ph/ts, and every core that
/// recorded anything shows up in the timeline.
#[test]
fn exported_chrome_trace_has_valid_structure() {
    let (compiler, _profile, plan, machine) = plan_for("kmeans", 8, 17);
    let telemetry = Telemetry::enabled(8);
    let config = ExecConfig {
        collect_trace: true,
        telemetry: telemetry.clone(),
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
    let run = exec.run(None).expect("benchmark runs");
    assert!(run.quiesced);

    let report = telemetry.report();
    assert!(
        !report.events.is_empty(),
        "an enabled session records events"
    );
    assert_eq!(
        report.dropped, 0,
        "default ring capacity holds a small-scale run"
    );
    let active = report.active_cores();
    assert!(active.len() >= 2, "synthesized layout uses multiple cores");

    let text = chrome::report_json(&report, &compiler.program.spec, "kmeans (observed)");
    let doc = json::parse(&text).expect("exported trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());
    for event in events {
        for field in ["ph", "pid", "tid", "ts", "name"] {
            assert!(
                event.get(field).is_some(),
                "event missing {field}: {event:?}"
            );
        }
    }
    // Every active core contributes at least one non-metadata event.
    for core in &active {
        let on_core = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() != Some("M")
                    && e.get("tid").unwrap().as_f64() == Some(*core as f64)
            })
            .count();
        assert!(
            on_core >= 1,
            "core {core} recorded events but exported none"
        );
    }
    // One complete ("X") slice per dispatched task.
    let slices = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .count() as u64;
    assert_eq!(slices, run.invocations);

    // The human-readable summary and the metrics dump render from the
    // same report.
    let table = summary::per_core_table(&report);
    for core in &active {
        assert!(
            table.contains(&format!("\n{core:>4} ")),
            "summary row for core {core}"
        );
    }
    let metrics = summary::metrics_json(&report.metrics);
    json::parse(&metrics).expect("metrics dump is valid JSON");
}

/// Satellite: determinism regression — two virtual executions of the
/// same program + layout export byte-identical traces and identical
/// telemetry event streams.
#[test]
fn virtual_traces_are_byte_identical_across_runs() {
    let run_once = || {
        let (compiler, _profile, plan, machine) = plan_for("series", 4, 99);
        let telemetry = Telemetry::enabled(4);
        let config = ExecConfig {
            collect_trace: true,
            telemetry: telemetry.clone(),
            ..ExecConfig::default()
        };
        let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
        let run = exec.run(None).expect("benchmark runs");
        let trace = run.trace.expect("trace collection was requested");
        let trace_json = chrome::execution_trace_json(&trace, &compiler.program.spec, "observed");
        let report_json = chrome::report_json(
            &telemetry.report(),
            &compiler.program.spec,
            "series (observed)",
        );
        (trace_json, report_json)
    };
    let (trace_a, report_a) = run_once();
    let (trace_b, report_b) = run_once();
    assert_eq!(trace_a, trace_b, "executor traces must be byte-identical");
    assert_eq!(
        report_a, report_b,
        "telemetry event streams must be byte-identical"
    );
}

/// Satellite: the simulator's predicted timeline and the executor's
/// observed timeline render side by side in one Chrome trace document.
#[test]
fn predicted_and_observed_traces_export_side_by_side() {
    let (compiler, profile, plan, machine) = plan_for("montecarlo", 8, 23);
    let sim = simulate(
        &compiler.program.spec,
        &plan.graph,
        &plan.layout,
        &profile,
        &machine,
        &SimOptions {
            collect_trace: true,
            ..SimOptions::default()
        },
    );
    let predicted = sim.trace.expect("simulator trace was requested");

    let config = ExecConfig {
        collect_trace: true,
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
    let run = exec.run(None).expect("benchmark runs");
    let observed = run.trace.expect("executor trace was requested");

    let text = chrome::side_by_side_json(&predicted, &observed, &compiler.program.spec);
    let doc = json::parse(&text).expect("side-by-side export is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    for pid in [chrome::PID_PREDICTED, chrome::PID_OBSERVED] {
        assert!(
            events.iter().any(|e| {
                e.get("pid").unwrap().as_f64() == Some(pid as f64)
                    && e.get("ph").unwrap().as_str() == Some("X")
            }),
            "process {pid} has no task slices"
        );
    }
}

/// Tentpole wiring: [`Compiler::synthesize_with_telemetry`] records the
/// DSA optimizer's search statistics — iteration/simulation counters,
/// acceptance rate, and the best-cost convergence trajectory.
#[test]
fn dsa_statistics_flow_into_telemetry() {
    let bench = by_name("kmeans").expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "telemetry", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(8);
    let telemetry = Telemetry::enabled(1);
    let mut rng = StdRng::seed_from_u64(5);
    let plan = compiler.synthesize_with_telemetry(
        &profile,
        &machine,
        &SynthesisOptions::default(),
        &mut rng,
        &telemetry,
    );

    let metrics = telemetry.report().metrics;
    assert!(metrics.counters["dsa.iterations"] >= 1);
    assert!(metrics.counters["dsa.simulations"] >= 1);
    assert!(metrics.counters["dsa.candidates_evaluated"] >= 1);
    let rate = metrics.gauges["dsa.acceptance_rate_pct"];
    assert!(
        (0..=100).contains(&rate),
        "acceptance rate {rate}% out of range"
    );
    assert_eq!(
        metrics.gauges["dsa.best_makespan"],
        plan.stats.best_makespan as i64
    );

    let trajectory = &metrics.series["dsa.best_makespan_trajectory"];
    assert!(
        !trajectory.is_empty(),
        "trajectory records per-iteration best cost"
    );
    assert!(
        trajectory.windows(2).all(|w| w[1] <= w[0]),
        "best-cost trajectory must be non-increasing: {trajectory:?}"
    );
    assert_eq!(*trajectory.last().unwrap(), plan.stats.best_makespan);
}

/// The event stream recorded during a virtual run is consistent with
/// the run report: one task start/end pair per invocation and one send
/// event per inter-core transfer.
#[test]
fn telemetry_events_match_run_report() {
    let (compiler, _profile, plan, machine) = plan_for("filterbank", 8, 41);
    let telemetry = Telemetry::enabled(8);
    let config = ExecConfig {
        telemetry: telemetry.clone(),
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&plan.graph, &plan.layout, &machine, config);
    let run = exec.run(None).expect("benchmark runs");

    let report = telemetry.report();
    assert_eq!(report.count(EventKind::TaskStart) as u64, run.invocations);
    assert_eq!(report.count(EventKind::TaskEnd) as u64, run.invocations);
    assert_eq!(report.count(EventKind::ObjSend) as u64, run.transfers);
    assert!(report.last_ts() <= run.makespan);
}
