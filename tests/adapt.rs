//! Online adaptive re-layout integration tests (DESIGN.md §16): the
//! doctor→DSA loop closed at runtime with hot group migration, behind
//! the `DeploymentHandle` lifecycle.
//!
//! Three claims under test:
//!
//! 1. **Determinism** — under stepped pacing the controller's decisions
//!    (tick/decision/relayout counts, committed epochs, final core
//!    assignment) are a pure function of the seeded policy and the
//!    drained estimator snapshots, so same-seed runs are identical even
//!    though the workers race on real threads.
//! 2. **Transparency** — a forced mid-run hot migration never changes
//!    results: on all six apps the threaded checksum equals the clean
//!    (never-migrated) run's, and the request ledger stays exact.
//! 3. **Hysteresis** — the improvement threshold and the per-window
//!    budget bound migration churn under an alternating bursty mix; an
//!    unreachable threshold commits nothing at all.

use bamboo::prelude::*;
use bamboo::schedule::InstanceId;
use bamboo::{CoreId, Pacing, ServingOptions, ServingReport};
use bamboo_apps::{all, by_name, Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Profiles `bench` at small scale, synthesizes for `cores` cores with
/// a fixed seed, and returns the compiler + deployment + profile.
fn deploy(bench: &dyn Benchmark, cores: usize) -> (Compiler, Deployment, Profile) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "adapt", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment, profile)
}

/// The same deployment with every instance squeezed onto core 0 — a
/// deliberately terrible starting layout the controller should improve
/// on as soon as the live model warms up.
fn squeezed(deployment: &Deployment) -> Deployment {
    let mut d = deployment.clone();
    for inst in &mut d.layout.instances {
        inst.core = CoreId::new(0);
    }
    d
}

/// Serves `total` bursty arrivals under stepped pacing with adaptation
/// armed, returning the report and the final per-instance cores.
fn serve_adaptive(
    deployment: &Deployment,
    policy: AdaptPolicy,
    total: usize,
) -> (ServingReport, Vec<usize>) {
    let mut session = DeploymentHandle::from_deployment(deployment.clone())
        .with_adapt(policy)
        .serve(ServingOptions::new().with_pacing(Pacing::Stepped))
        .expect("server starts");
    // A shifting Markov-modulated mix: calm 400/s with 4000/s bursts.
    let mut arrivals = Bursty::new(400.0, 4_000.0, 0.2, 17);
    session
        .serve(&mut arrivals, total, |request| Box::new(request))
        .expect("serve");
    let snapshot = session.snapshot();
    let cores = snapshot
        .layout
        .instances
        .iter()
        .map(|inst| inst.core.index())
        .collect();
    let report = session.stop().expect("finish");
    (report, cores)
}

/// A policy tuned for tests: warmed up fast, baseline divergence
/// reporting on, seeded.
fn test_policy(cores: usize, profile: &Profile) -> AdaptPolicy {
    AdaptPolicy::new(MachineDescription::n_cores(cores))
        .with_min_invocations(16)
        .with_baseline(profile.clone())
        .with_seed(0xADA)
}

/// Determinism: same seed + stepped pacing ⇒ byte-identical controller
/// reports and final assignments across repeated runs, at more than
/// one worker-thread count — and from the squeezed layout the
/// controller actually commits at least one hot relayout with every
/// request accounted exactly.
#[test]
fn stepped_adapt_decisions_are_deterministic() {
    let total = 24;
    for cores in [2, 8] {
        let bench = by_name("kmeans").expect("registered");
        let (_compiler, deployment, profile) = deploy(bench.as_ref(), cores);
        let bad = squeezed(&deployment);
        let run = || serve_adaptive(&bad, test_policy(cores, &profile), total);
        let (report_a, cores_a) = run();
        let (report_b, cores_b) = run();

        let adapt_a = report_a.adapt.clone().expect("adaptation was armed");
        let adapt_b = report_b.adapt.clone().expect("adaptation was armed");
        assert_eq!(adapt_a, adapt_b, "{cores} cores: controller diverged");
        assert_eq!(cores_a, cores_b, "{cores} cores: final layouts diverged");
        assert_eq!(
            report_a.layout_epoch, report_b.layout_epoch,
            "{cores} cores: epochs diverged"
        );

        // The acceptance bar: the shifting mix provokes ≥1 hot
        // relayout off the squeezed layout, and nothing is lost or
        // double-counted.
        if cores > 1 {
            assert!(
                adapt_a.relayouts >= 1,
                "{cores} cores: controller never migrated off the squeezed layout: {adapt_a:?}"
            );
            assert!(
                cores_a.iter().any(|&c| c != 0),
                "{cores} cores: assignment still all on core 0"
            );
        }
        assert_eq!(report_a.completed, total as u64, "requests lost");
        assert_eq!(report_a.admitted, total as u64);
        assert_eq!(
            report_a.completions.len(),
            total,
            "duplicate or missing completions"
        );
        let mut requests: Vec<u64> = report_a.completions.iter().map(|c| c.request).collect();
        requests.sort_unstable();
        requests.dedup();
        assert_eq!(requests.len(), total, "a completion fired twice");
        // Epochs commit in strictly increasing order.
        assert!(
            adapt_a.epochs.windows(2).all(|w| w[0] < w[1]),
            "epochs not strictly increasing: {:?}",
            adapt_a.epochs
        );
        assert_eq!(adapt_a.epochs.len() as u64, adapt_a.relayouts);
        assert_eq!(report_a.relayouts, report_a.executor.relayouts);
    }
}

/// Transparency: on all six apps, forcing a hot relayout mid-request —
/// every instance shifted one core to the right while the workload is
/// in flight — leaves the result checksum identical to a clean run's,
/// the epoch bumped, and the ledger empty.
#[test]
fn forced_midrun_relayout_preserves_checksums_on_all_apps() {
    for bench in all() {
        let (compiler, deployment, _profile) = deploy(bench.as_ref(), 8);
        let clean = ThreadedExecutor::default()
            .run(&deployment, RunOptions::default())
            .expect("clean run");
        let clean_sum = bench.threaded_checksum(&compiler, &clean);

        let mut run = DeploymentHandle::from_deployment(deployment.clone())
            .start()
            .expect("resident start");
        let handle = run.relayout_handle();
        run.inject(Box::new(()));
        // Rotate every instance one core to the right, mid-flight.
        let cores = run.core_count();
        let moves: Vec<(InstanceId, usize)> = handle
            .current_layout()
            .instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstanceId(i as u32), (inst.core.index() + 1) % cores))
            .collect();
        let epoch = handle.migrate(&moves).expect("relayout commits");
        assert_eq!(
            epoch,
            1,
            "{}: first relayout publishes epoch 1",
            bench.name()
        );
        run.drain().expect("drain");
        assert!(run.ledger_is_empty(), "{}: ledger leaked", bench.name());
        let report = run.shutdown().expect("shutdown");

        assert_eq!(report.layout_epoch, 1, "{}", bench.name());
        assert!(
            report.relayouts >= 1,
            "{}: no instances moved",
            bench.name()
        );
        assert_eq!(
            bench.threaded_checksum(&compiler, &report),
            clean_sum,
            "{}: checksum changed across a hot relayout",
            bench.name()
        );
    }
}

/// A relayout rejected up front (dead/unknown target) mutates nothing:
/// the epoch stays, and the typed error surfaces through
/// `bamboo::Error` with a source chain.
#[test]
fn rejected_relayout_is_typed_and_mutates_nothing() {
    let bench = by_name("filterbank").expect("registered");
    let (_compiler, deployment, _profile) = deploy(bench.as_ref(), 4);
    let mut run = DeploymentHandle::from_deployment(deployment)
        .start()
        .expect("resident start");
    let handle = run.relayout_handle();
    let err = handle
        .migrate(&[(InstanceId(0), 99)])
        .expect_err("out-of-range core must be rejected");
    assert_eq!(err, RelayoutError::UnknownCore { core: 99 });
    assert_eq!(handle.layout_epoch(), 0, "failed commit bumped the epoch");
    let unified: Error = err.into();
    assert!(matches!(unified, Error::RelayoutFailed(_)));
    assert!(
        std::error::Error::source(&unified).is_some(),
        "RelayoutFailed must chain to the runtime error"
    );
    run.inject(Box::new(()));
    run.drain().expect("run unaffected by the rejected commit");
    run.shutdown().expect("shutdown");
}

/// Hysteresis: under the same alternating bursty mix, (a) an
/// unreachable improvement threshold commits zero relayouts, and (b) a
/// one-per-hour budget bounds churn to a single commit no matter how
/// often the controller decides.
#[test]
fn hysteresis_prevents_flapping_under_alternating_mix() {
    let bench = by_name("kmeans").expect("registered");
    let (_compiler, deployment, profile) = deploy(bench.as_ref(), 8);
    let bad = squeezed(&deployment);
    let total = 24;

    // (a) Unreachable threshold: the controller decides but never acts.
    let frozen_policy = test_policy(8, &profile).with_min_improvement(f64::INFINITY);
    let (report, cores) = serve_adaptive(&bad, frozen_policy, total);
    let adapt = report.adapt.expect("adaptation armed");
    assert!(adapt.decisions >= 1, "controller never warmed up");
    assert_eq!(adapt.relayouts, 0, "infinite hysteresis still migrated");
    assert_eq!(report.layout_epoch, 0);
    assert!(
        cores.iter().all(|&c| c == 0),
        "layout moved without a commit"
    );
    assert_eq!(report.completed, total as u64);

    // (b) Tight budget: one relayout per (hour-long) window, so the
    // alternating mix cannot bounce instances back and forth.
    let budgeted_policy = test_policy(8, &profile).with_budget(1, Duration::from_secs(3600));
    let (report, _cores) = serve_adaptive(&bad, budgeted_policy, total);
    let adapt = report.adapt.expect("adaptation armed");
    assert!(
        adapt.relayouts <= 1,
        "budget of 1/window exceeded: {adapt:?}"
    );
    assert!(
        adapt.decisions > adapt.relayouts,
        "every decision committed — the budget gate never engaged: {adapt:?}"
    );
    assert_eq!(report.completed, total as u64);
}

/// The armed estimator feeds divergence reporting: with a baseline
/// profile attached, the report carries a pre-relayout divergence
/// measurement (and a post- one once a relayout commits).
#[test]
fn divergence_is_reported_against_the_baseline() {
    let bench = by_name("kmeans").expect("registered");
    let (_compiler, deployment, profile) = deploy(bench.as_ref(), 8);
    let bad = squeezed(&deployment);
    let (report, _) = serve_adaptive(&bad, test_policy(8, &profile), 24);
    let adapt = report.adapt.expect("adaptation armed");
    let pre = adapt
        .pre_divergence
        .expect("baseline attached ⇒ pre-divergence measured");
    assert!(
        pre.is_finite() && pre >= 0.0,
        "divergence {pre} out of range"
    );
    if adapt.relayouts > 0 {
        let post = adapt
            .post_divergence
            .expect("relayout committed ⇒ post-divergence measured");
        assert!(post.is_finite() && post >= 0.0);
    }
}
