//! Integration tests over the six evaluation benchmarks: every Bamboo
//! version must reproduce its serial baseline bit-exactly, on one core
//! and on a synthesized multi-core layout, and the synthesized layout
//! must actually be faster.

use bamboo::{ExecConfig, MachineDescription, SynthesisOptions};
use bamboo_apps::{all, Scale};
use rand::SeedableRng;

#[test]
fn every_benchmark_verifies_on_one_core() {
    for bench in all() {
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "t", |exec| bench.parallel_checksum(&compiler, exec))
            .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name()));
        assert!(report.quiesced, "{} did not quiesce", bench.name());
        assert_eq!(digest, serial.checksum, "{} result mismatch", bench.name());
        // The modeled language overhead stays within the paper's range.
        let overhead =
            report.overhead_cycles as f64 + report.body_cycles as f64 - serial.cycles as f64;
        let pct = overhead / serial.cycles as f64 * 100.0;
        assert!(
            (0.0..=12.0).contains(&pct),
            "{} overhead {pct:.2}% out of range",
            bench.name()
        );
    }
}

#[test]
fn every_benchmark_verifies_and_speeds_up_on_eight_cores() {
    let machine = MachineDescription::n_cores(8);
    for bench in all() {
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (profile, single, ()) = compiler.profile_run(None, "t", |_| ()).expect("profiles");
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let mut exec =
            compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
        let report = exec.run(None).expect("runs");
        assert!(report.quiesced, "{} did not quiesce", bench.name());
        assert_eq!(
            bench.parallel_checksum(&compiler, &exec),
            serial.checksum,
            "{} result mismatch on 8 cores",
            bench.name()
        );
        let speedup = single.makespan as f64 / report.makespan as f64;
        assert!(speedup > 1.5, "{} speedup only {speedup:.2}", bench.name());
    }
}

#[test]
fn simulator_estimate_tracks_real_execution() {
    let machine = MachineDescription::n_cores(8);
    for bench in all() {
        let compiler = bench.compiler(Scale::Small);
        let (profile, _, ()) = compiler.profile_run(None, "t", |_| ()).expect("profiles");
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
        let mut exec =
            compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
        let report = exec.run(None).expect("runs");
        let err = (plan.estimate.makespan as f64 / report.makespan as f64 - 1.0).abs();
        // The paper's Figure 9 errors are under 8%; replay mode does better.
        assert!(
            err < 0.08,
            "{} estimate off by {:.1}%",
            bench.name(),
            err * 100.0
        );
    }
}

#[test]
fn double_scale_increases_serial_work() {
    for bench in all() {
        let original = bench.serial(Scale::Original);
        let double = bench.serial(Scale::Double);
        let ratio = double.cycles as f64 / original.cycles as f64;
        assert!(
            (1.5..=2.5).contains(&ratio),
            "{} double/original ratio {ratio:.2}",
            bench.name()
        );
    }
}

#[test]
fn serial_checksums_are_stable_across_runs() {
    for bench in all() {
        let a = bench.serial(Scale::Small);
        let b = bench.serial(Scale::Small);
        assert_eq!(a, b, "{} serial baseline is nondeterministic", bench.name());
    }
}
