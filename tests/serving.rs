//! Serving integration tests: resident deployments, the request
//! ledger, admission control, and chaos interplay (DESIGN.md §15).
//!
//! The acceptance criterion under test throughout: per-request
//! completion is *exact* — a request's completion fires iff all the
//! invocations it transitively spawned finished, with the tally
//! verified against the deterministic virtual executor's causal graph.

use bamboo::telemetry::analyze::ServingStats;
use bamboo::{
    AdmissionControl, Compiler, Deployment, Error, ExecConfig, FaultSpec, KillTarget,
    MachineDescription, Pacing, Poisson, RecoveryPolicy, RunOptions, Server, ServingError,
    ServingOptions, ServingReport, SynthesisOptions, Telemetry, ThreadedExecutor, TokenBucket,
};
use bamboo_apps::{by_name, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Profiles `bench_name` at small scale, synthesizes for `cores` cores
/// with a fixed seed, and deploys (same recipe as the doctor tests).
fn deploy_for(
    bench_name: &str,
    cores: usize,
    seed: u64,
) -> (Compiler, Deployment, MachineDescription) {
    let bench = by_name(bench_name).expect("benchmark exists");
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "serving", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment, machine)
}

/// Invocations one full workload executes, from the virtual executor's
/// causal graph over the same deployment.
fn predicted_invocations(
    compiler: &Compiler,
    deployment: &Deployment,
    machine: &MachineDescription,
) -> u64 {
    let config = ExecConfig {
        collect_trace: true,
        ..ExecConfig::default()
    };
    let mut exec = compiler.executor(&deployment.graph, &deployment.layout, machine, config);
    let trace = exec
        .run(None)
        .expect("virtual run")
        .trace
        .expect("trace requested");
    trace.tasks.len() as u64
}

/// Serves `total` Poisson arrivals and returns the report.
fn serve_poisson(
    deployment: &Deployment,
    run_options: RunOptions,
    options: ServingOptions,
    rate: f64,
    seed: u64,
    total: usize,
) -> Result<ServingReport, ServingError> {
    let exec = ThreadedExecutor::default();
    let mut server = Server::start(&exec, deployment, run_options, options)?;
    let mut arrivals = Poisson::new(rate, seed);
    server.serve(&mut arrivals, total, |_| Box::new(()))?;
    server.finish()
}

/// Acceptance: every request's completion tally equals the invocation
/// count of the virtual executor's causal graph — even under wall
/// pacing where requests overlap arbitrarily on the cores — and the
/// `serving.*` events in the telemetry rings reconstruct the same
/// counts with a full latency distribution.
#[test]
fn per_request_completion_is_exact_against_virtual_graph() {
    for bench in ["kmeans", "filterbank"] {
        let (compiler, deployment, machine) = deploy_for(bench, 8, 42);
        let expected = predicted_invocations(&compiler, &deployment, &machine);
        assert!(expected > 0, "{bench}: virtual graph is non-trivial");

        let telemetry = Telemetry::enabled(9); // 8 workers + driver
        let run_options = RunOptions {
            telemetry: telemetry.clone(),
            ..RunOptions::default()
        };
        let total = 12;
        let report = serve_poisson(
            &deployment,
            run_options,
            ServingOptions::new(),
            800.0,
            7,
            total,
        )
        .expect("serving run");

        assert_eq!(report.arrivals, total as u64, "{bench}");
        assert_eq!(report.admitted, total as u64, "{bench}");
        assert_eq!(report.completed, total as u64, "{bench}");
        assert_eq!(report.completions.len(), total, "{bench}");
        for c in &report.completions {
            assert_eq!(
                c.invocations, expected,
                "{bench}: request {} tallied {} invocations, virtual graph has {}",
                c.request, c.invocations, expected
            );
        }
        assert_eq!(
            report.executor.invocations,
            expected * total as u64,
            "{bench}: executor total is the sum of per-request tallies"
        );

        // The same numbers fall out of the recorded event rings.
        let stats = ServingStats::from_report(&telemetry.report());
        assert_eq!(stats.arrivals, total as u64, "{bench}");
        assert_eq!(stats.admitted, total as u64, "{bench}");
        assert_eq!(stats.shed, 0, "{bench}");
        assert_eq!(stats.completed, total as u64, "{bench}");
        assert_eq!(stats.latency.count(), total as u64, "{bench}");
        assert!(stats.latency.p99() >= stats.latency.p50(), "{bench}");
        for t in &stats.timelines {
            assert_eq!(t.invocations, expected, "{bench}: request {}", t.request);
        }
    }
}

/// Satellite: under stepped pacing the same seed yields the same
/// per-request completion order and tallies at 1 worker thread and at
/// 8 — and byte-identical reports across repeated 8-thread runs.
#[test]
fn stepped_completion_order_is_thread_count_invariant() {
    let stepped = || {
        ServingOptions::new()
            .with_pacing(Pacing::Stepped)
            .with_batching(4, Duration::from_micros(500))
    };
    let run = |cores: usize| -> Vec<(u64, u64)> {
        let (_compiler, deployment, _machine) = deploy_for("kmeans", cores, 42);
        let report = serve_poisson(
            &deployment,
            RunOptions::default(),
            stepped(),
            2_000.0,
            9,
            10,
        )
        .expect("stepped run");
        assert_eq!(report.completed, 10);
        report
            .completions
            .iter()
            .map(|c| (c.request, c.invocations))
            .collect()
    };
    let one = run(1);
    let eight_a = run(8);
    let eight_b = run(8);
    let order = |v: &[(u64, u64)]| v.iter().map(|&(r, _)| r).collect::<Vec<_>>();
    assert_eq!(
        order(&one),
        order(&eight_a),
        "completion order diverged between 1 and 8 threads"
    );
    assert_eq!(eight_a, eight_b, "same-seed 8-thread runs diverged");
}

/// Satellite: after a drain the request ledger is empty — no leaked
/// per-request entries, nothing outstanding.
#[test]
fn ledger_is_empty_after_drain() {
    let (_compiler, deployment, _machine) = deploy_for("filterbank", 8, 42);
    let exec = ThreadedExecutor::default();
    let mut server = Server::start(
        &exec,
        &deployment,
        RunOptions::default(),
        ServingOptions::new(),
    )
    .expect("server starts");
    let mut arrivals = Poisson::new(500.0, 3);
    server
        .serve(&mut arrivals, 8, |_| Box::new(()))
        .expect("serve");
    server.await_idle().expect("drain");
    assert_eq!(server.outstanding(), 0);
    assert!(server.ledger_is_empty(), "ledger leaked entries");
    let report = server.finish().expect("finish");
    assert_eq!(report.admitted, 8);
    assert_eq!(report.completed, 8);
}

/// Satellite: a clean run — no faults, offered load far under capacity,
/// open admission — sheds nothing anywhere: neither at serving
/// admission nor on the router's shed-on-overflow path
/// (`router.shed` / [`bamboo::ThreadedReport::router_shed`]).
#[test]
fn clean_run_sheds_nothing() {
    let (_compiler, deployment, _machine) = deploy_for("kmeans", 8, 42);
    let report = serve_poisson(
        &deployment,
        RunOptions::default(),
        ServingOptions::new(),
        200.0,
        11,
        10,
    )
    .expect("clean run");
    assert_eq!(report.shed, 0, "admission shed on a clean run");
    assert_eq!(report.shed_rate_limit, 0);
    assert_eq!(report.shed_queue_depth, 0);
    assert_eq!(
        report.executor.router_shed, 0,
        "router shed invocations on a clean run"
    );
    assert_eq!(report.admitted, report.completed);
}

/// Admission control sheds typed and accounted: a one-token bucket
/// against a burst admits exactly what the bucket sustains, every
/// refusal lands in the rate-limit tally, and nothing admitted is
/// lost.
#[test]
fn token_bucket_sheds_are_typed_and_accounted() {
    let (_compiler, deployment, _machine) = deploy_for("filterbank", 8, 42);
    // 50/s sustained, burst 2, offered ~2000/s in stepped (virtual)
    // time: most arrivals must shed.
    let options = ServingOptions::new()
        .with_pacing(Pacing::Stepped)
        .with_admission(AdmissionControl::open().with_rate(TokenBucket::new(50.0, 2.0)));
    let report = serve_poisson(&deployment, RunOptions::default(), options, 2_000.0, 5, 30)
        .expect("rate-limited run");
    assert_eq!(report.arrivals, 30);
    assert_eq!(report.admitted + report.shed, report.arrivals);
    assert!(report.shed > 0, "bucket never refused");
    assert_eq!(report.shed, report.shed_rate_limit);
    assert_eq!(report.shed_queue_depth, 0);
    assert_eq!(
        report.completed, report.admitted,
        "admitted requests all completed"
    );
}

/// The channel ingress refuses over-capacity submissions with the
/// typed overload error, which converts into `bamboo::Error::Overloaded`.
#[test]
fn channel_overflow_is_typed_overloaded() {
    let (handle, _ingress) = bamboo::serving::channel(1);
    handle.submit(Box::new(())).expect("first fits");
    let err: Error = handle.submit(Box::new(())).unwrap_err().into();
    assert!(
        matches!(err, Error::Overloaded { .. }),
        "unexpected error: {err:?}"
    );
}

/// Chaos interplay: an expendable-core kill mid-stream is absorbed by
/// failover — every admitted request still completes with the exact
/// invocation tally.
#[test]
fn expendable_kill_mid_request_still_completes_every_request() {
    let (compiler, deployment, machine) = deploy_for("kmeans", 8, 42);
    let expected = predicted_invocations(&compiler, &deployment, &machine);
    let run_options = RunOptions::default()
        .with_faults(FaultSpec::seeded(7).with_kill(KillTarget::Expendable, 1));
    let report = serve_poisson(
        &deployment,
        run_options,
        ServingOptions::new(),
        500.0,
        13,
        6,
    )
    .expect("recovered chaos run");
    assert_eq!(report.completed, 6, "a request was lost to the kill");
    for c in &report.completions {
        assert_eq!(
            c.invocations, expected,
            "request {} tally drifted under failover",
            c.request
        );
    }
}

/// Chaos interplay: an unrecoverable kill fails the serving run with
/// the typed `CoreLost` — it never hangs waiting for a completion that
/// cannot come.
#[test]
fn unrecoverable_kill_is_typed_core_lost_not_a_hang() {
    let (_compiler, deployment, _machine) = deploy_for("fractal", 8, 42);
    // Kill every core before its first dispatch, recovery disabled.
    let spec = (0..8).fold(
        FaultSpec::seeded(7).with_recovery(RecoveryPolicy::Disabled),
        |s, c| s.with_kill(KillTarget::Core(c), 0),
    );
    let exec = ThreadedExecutor::default();
    let mut server = Server::start(
        &exec,
        &deployment,
        RunOptions::default().with_faults(spec),
        ServingOptions::new(),
    )
    .expect("server starts");
    let mut arrivals = Poisson::new(1_000.0, 1);
    // serve() may or may not observe the failure depending on when the
    // kill lands; finish() must surface it either way (and always
    // stops the workers, so the error path never leaks threads).
    let served = server.serve(&mut arrivals, 2, |_| Box::new(()));
    let finished = server.finish().map(|_| ());
    let err: Error = match served.and(finished) {
        Err(e) => e.into(),
        Ok(()) => panic!("unrecovered kill did not fail the serving run"),
    };
    assert!(
        matches!(err, Error::CoreLost { .. }),
        "unexpected error: {err:?}"
    );
}
