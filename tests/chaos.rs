//! Chaos integration tests: deterministic fault injection and recovery
//! in the threaded executor (DESIGN.md §14).
//!
//! The CI `chaos-smoke` matrix sweeps `BAMBOO_CHAOS_THREADS` and
//! `BAMBOO_CHAOS_SEED` over these tests; unset, they run at 8 threads
//! with seed 7. The determinism contract is checked on what the plan
//! *schedules* (the rendered schedule string) and on *results* (final
//! payload checksums) — never on wall-clock-dependent tallies.

use bamboo::telemetry::analyze;
use bamboo::{
    Compiler, Deployment, ExecError, FaultSpec, KillTarget, MachineDescription, RecoveryPolicy,
    RunOptions, SynthesisOptions, Telemetry, ThreadedExecutor,
};
use bamboo_apps::{all, by_name, Benchmark, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Thread count for every chaos run (CI matrix override).
fn threads() -> usize {
    std::env::var("BAMBOO_CHAOS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Fault-plan seed (CI matrix override).
fn seed() -> u64 {
    std::env::var("BAMBOO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// Profiles, synthesizes (fixed seed 42, matching `bamboo-doctor`), and
/// deploys `bench` for a `cores`-core machine.
fn deploy(bench: &dyn Benchmark, cores: usize) -> (Compiler, Deployment) {
    let compiler = bench.compiler(Scale::Small);
    let (profile, _, ()) = compiler
        .profile_run(None, "chaos", |_| ())
        .expect("profile run");
    let machine = MachineDescription::n_cores(cores);
    let mut rng = StdRng::seed_from_u64(42);
    let plan = compiler.synthesize(&profile, &machine, &SynthesisOptions::default(), &mut rng);
    let deployment = compiler.deploy(&plan);
    (compiler, deployment)
}

#[test]
fn same_seed_runs_are_schedule_and_payload_deterministic() {
    let bench = by_name("kmeans").expect("registered");
    let (compiler, deployment) = deploy(bench.as_ref(), threads());
    let exec = ThreadedExecutor::default();
    let clean = exec
        .run(&deployment, RunOptions::default())
        .expect("clean run");
    let clean_sum = bench.threaded_checksum(&compiler, &clean);

    let chaos_run = || {
        exec.run(
            &deployment,
            RunOptions::default().with_faults(FaultSpec::default_plan(seed())),
        )
        .expect("chaos run terminates")
    };
    let a = chaos_run();
    let b = chaos_run();

    // Identical seed + thread count ⇒ byte-identical fault schedule.
    let schedule = a
        .fault_schedule
        .as_deref()
        .expect("chaos run renders its schedule");
    assert!(
        schedule.contains("chaos schedule"),
        "unexpected schedule: {schedule}"
    );
    assert_eq!(
        a.fault_schedule, b.fault_schedule,
        "same-seed schedules diverged"
    );

    // The default plan must actually bite, and recovery must be
    // transparent: both faulty results equal the fault-free result.
    assert!(a.faults_injected >= 1, "default plan injected nothing");
    assert_eq!(bench.threaded_checksum(&compiler, &a), clean_sum);
    assert_eq!(bench.threaded_checksum(&compiler, &b), clean_sum);
}

#[test]
fn expendable_kill_recovers_on_every_benchmark() {
    let spec = FaultSpec::seeded(seed()).with_kill(KillTarget::Expendable, 1);
    for bench in all() {
        let (compiler, deployment) = deploy(bench.as_ref(), threads());
        let exec = ThreadedExecutor::default();
        let clean = exec
            .run(&deployment, RunOptions::default())
            .expect("clean run");
        let clean_sum = bench.threaded_checksum(&compiler, &clean);
        let run = exec
            .run(&deployment, RunOptions::default().with_faults(spec.clone()))
            .unwrap_or_else(|e| panic!("{}: kill run failed: {e}", bench.name()));
        // A kill either resolved (and the run recovered) or was skipped
        // because no core was expendable; the schedule says which.
        let schedule = run.fault_schedule.as_deref().expect("schedule rendered");
        assert!(
            schedule.contains("kill"),
            "{}: no kill line in {schedule}",
            bench.name()
        );
        assert_eq!(
            bench.threaded_checksum(&compiler, &run),
            clean_sum,
            "{}: kill recovery corrupted the result",
            bench.name()
        );
    }
}

#[test]
fn drops_and_delays_are_transparent() {
    let bench = by_name("series").expect("registered");
    let (compiler, deployment) = deploy(bench.as_ref(), threads());
    let exec = ThreadedExecutor::default();
    let clean = exec
        .run(&deployment, RunOptions::default())
        .expect("clean run");
    let clean_sum = bench.threaded_checksum(&compiler, &clean);
    // Aggressive wire faults, no kills: 10% first-transmission drops
    // and 10% 30µs delays must be absorbed by redelivery alone.
    let spec = FaultSpec::seeded(seed())
        .with_drops(100)
        .with_delays(100, Duration::from_micros(30));
    let run = exec
        .run(&deployment, RunOptions::default().with_faults(spec))
        .expect("wire faults never fail a run below the redelivery bound");
    assert!(
        run.faults_injected >= 1,
        "10% drop/delay rates injected nothing"
    );
    assert_eq!(bench.threaded_checksum(&compiler, &run), clean_sum);
}

#[test]
fn kill_without_recovery_is_a_typed_error_not_a_hang() {
    let bench = by_name("fractal").expect("registered");
    let (_compiler, deployment) = deploy(bench.as_ref(), threads());
    let exec = ThreadedExecutor::default();
    // Kill every core before its first dispatch so the failure fires
    // regardless of where the startup object lands, and disable
    // recovery: the run must return `CoreLost`, not hang.
    let spec = (0..threads()).fold(
        FaultSpec::seeded(seed()).with_recovery(RecoveryPolicy::Disabled),
        |s, c| s.with_kill(KillTarget::Core(c), 0),
    );
    let err = exec
        .run(&deployment, RunOptions::default().with_faults(spec))
        .expect_err("unrecovered kill must fail the run");
    assert!(
        matches!(err, ExecError::CoreLost { .. }),
        "unexpected error: {err:?}"
    );
}

#[test]
fn diagnosis_attributes_slowdown_to_injected_faults() {
    let bench = by_name("montecarlo").expect("registered");
    let (_compiler, deployment) = deploy(bench.as_ref(), threads());
    let telemetry = Telemetry::enabled(threads());
    let options = RunOptions {
        telemetry: telemetry.clone(),
        ..RunOptions::default()
    }
    .with_faults(FaultSpec::default_plan(seed()));
    let run = ThreadedExecutor::default()
        .run(&deployment, options)
        .expect("chaos run");
    assert!(run.faults_injected >= 1, "default plan injected nothing");
    let diagnosis = analyze::diagnose(&telemetry.report(), None);
    assert!(
        diagnosis
            .findings
            .iter()
            .any(|f| f.rule.starts_with("injected-")),
        "no fault-attribution finding among {:?}",
        diagnosis
            .findings
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>()
    );
}
