//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, integer-range strategies, tuple strategies, a character
//! class + repetition string strategy (`"[ -~\n]{0,200}"` style), and
//! `collection::vec`. Cases are sampled from a deterministic seeded
//! generator; there is no shrinking — a failing case panics with the
//! sampled inputs' debug representation, which is enough to reproduce
//! (the seed is fixed per case index).

pub mod strategy {
    //! Value-generation strategies.

    use rand::Rng;

    /// A deterministic per-case random source.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// The generator for case number `case` of a property.
        pub fn for_case(case: u32) -> TestRng {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x5eed_0000_0000 + case as u64,
            ))
        }

        /// The next 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.bits() % bound
        }
    }

    /// Generates values of `Self::Value` from random bits.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty strategy range");
                    let off = (rng.bits() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.bits() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// String strategy from a `"[class]{lo,hi}"` pattern literal.
    ///
    /// Supports a single character class (with `a-z` ranges and `\n`,
    /// `\\`, `\-`, `\]` escapes) followed by a `{lo,hi}` repetition.
    /// Patterns outside that shape fall back to printable ASCII with
    /// length 0..=64.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| ((b' '..=b'~').map(char::from).collect(), 0, 64));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class, tail) = rest.split_at(close);
        let tail = tail
            .strip_prefix(']')?
            .strip_prefix('{')?
            .strip_suffix('}')?;
        let (lo, hi) = tail.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i)? {
                        'n' => '\n',
                        't' => '\t',
                        other => *other,
                    }
                }
                c => c,
            };
            // Range `c-d` (a trailing `-` is a literal).
            if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() {
                let end = chars[i + 2];
                for code in c as u32..=end as u32 {
                    alphabet.push(char::from_u32(code)?);
                }
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        if alphabet.is_empty() || hi < lo {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};

    /// Strategy for `Vec<E::Value>` with a length drawn from a range.
    pub struct VecStrategy<E> {
        element: E,
        len: core::ops::Range<usize>,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<E: Strategy>(element: E, len: core::ops::Range<usize>) -> VecStrategy<E> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    pub use crate::strategy::TestRng;

    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; this repository's heavier
            // end-to-end properties make 32 the practical choice.
            ProptestConfig { cases: 32 }
        }
    }
}

/// Alias module mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { ... }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn vectors_respect_length(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    proptest! {
        #[test]
        fn string_pattern_honors_class(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
