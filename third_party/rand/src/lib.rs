//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the small slice of the rand 0.8 API the workspace uses — `Rng` with
//! `gen_range`/`gen_bool`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` — backed by SplitMix64. Deterministic for a given
//! seed, which is all the synthesis pipeline and tests require; not
//! cryptographic.

use core::ops::Range;

/// Types that `Rng::gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps 64 random bits into `[start, end)`.
    fn sample_from(bits: u64, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(bits: u64, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128;
                debug_assert!(span > 0, "gen_range called with empty range");
                let off = (bits as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_from(bits: u64, start: Self, end: Self) -> Self {
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
}

/// The subset of rand's `Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on an empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let bits = self.next_u64();
        T::sample_from(bits, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring rand's trait of the same name.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seeded generator: SplitMix64.
    ///
    /// (The real `StdRng` is ChaCha12; this reproduction only needs a
    /// deterministic, well-mixed stream.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD3F2_9467_41BA_12F8,
            }
        }
    }

    /// Alias of [`StdRng`]; the real crate's small fast generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
