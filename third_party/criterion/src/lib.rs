//! Offline stand-in for `criterion`.
//!
//! Supports the API the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark body runs a single timed
//! iteration and prints the wall time: enough to exercise the bench code
//! paths (including under `cargo test`, which executes `harness = false`
//! bench binaries) and to get coarse numbers, without statistical
//! sampling.

use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one timed iteration of a benchmark body.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times a single call of `body`.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(body());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { elapsed_ns: 0 };
    f(&mut bencher);
    let ms = bencher.elapsed_ns as f64 / 1_000_000.0;
    println!("bench {label:<48} {ms:>10.3} ms (single sample)");
}

/// Collects benchmark functions under a group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_execute() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("x", |b| b.iter(|| ran += 1));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("y", |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 2);
    }
}
