//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! purely as forward-looking annotations — nothing serializes through
//! serde at runtime (exporters hand-roll their JSON). The build
//! environment has no network access to the real crates.io `serde`, so
//! these derives simply expand to nothing, keeping the annotations legal
//! while adding zero code.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
