//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module subset the runtime uses — `unbounded`,
//! `Sender`, `Receiver` with `send`/`recv`/`try_recv`/`len` — implemented
//! over `Mutex` + `Condvar`. Correct MPMC semantics with disconnect
//! detection; throughput is adequate for the workloads in this
//! repository (the hot path is task bodies, not channel ops).

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel. Cloneable; sharable across threads.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Cloneable; sharable across threads.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Returns the undelivered message.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // Like the real crossbeam: no `T: Debug` bound.
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and all senders are gone.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message.
        Timeout,
        /// The channel is drained and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.chan.queue.lock().expect("channel mutex");
            queue.push_back(msg);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().expect("channel mutex").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is drained and no sender
        /// remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().expect("channel mutex");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.chan.ready.wait(queue).expect("channel mutex");
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally no sender
        /// remains.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.queue.lock().expect("channel mutex");
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the wait elapses,
        /// [`RecvTimeoutError::Disconnected`] when the channel is
        /// drained and no sender remains.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.chan.queue.lock().expect("channel mutex");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .chan
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel mutex");
                queue = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().expect("channel mutex").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A non-blocking draining iterator: yields queued messages
        /// until the channel is momentarily empty or disconnected.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Iterator over [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded();
            drop(rx2);
            assert_eq!(tx2.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
