//! Offline stand-in for `parking_lot`.
//!
//! Provides `Mutex`/`MutexGuard` (no poisoning), `RawMutex`, and the
//! `arc_lock` feature's `ArcMutexGuard` + `try_lock_arc`, which the
//! runtime's lock table uses for its transactional try-lock-all dispatch.
//! Implementation: a CAS spinlock that yields after a burst of spins.
//! Critical sections in this repository are tiny (queue pops, routing
//! table lookups), so a spin/yield lock performs fine without any OS
//! parking machinery.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The raw lock state: a CAS spinlock that yields under contention.
pub struct RawMutex {
    locked: AtomicBool,
}

impl RawMutex {
    const fn new() -> Self {
        RawMutex {
            locked: AtomicBool::new(false),
        }
    }

    fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn lock(&self) {
        let mut spins = 0u32;
        while !self.try_lock() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, locking never
/// returns a poison error.
pub struct Mutex<T: ?Sized> {
    raw: RawMutex,
    data: UnsafeCell<T>,
}

// SAFETY: the lock serializes all access to `data`, so the mutex can be
// shared/sent between threads whenever the protected value can be sent.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Wraps `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            raw: RawMutex::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, spinning/yielding until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw.lock();
        MutexGuard { mutex: self }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(MutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Like [`Mutex::try_lock`], but the guard keeps the mutex alive via
    /// its `Arc` instead of a borrow (parking_lot's `arc_lock` feature).
    pub fn try_lock_arc(self: &Arc<Self>) -> Option<ArcMutexGuard<RawMutex, T>> {
        if self.raw.try_lock() {
            Some(ArcMutexGuard {
                mutex: self.clone(),
                _raw: PhantomData,
            })
        } else {
            None
        }
    }

    /// Arc-holding blocking acquire (parking_lot's `arc_lock` feature).
    pub fn lock_arc(self: &Arc<Self>) -> ArcMutexGuard<RawMutex, T> {
        self.raw.lock();
        ArcMutexGuard {
            mutex: self.clone(),
            _raw: PhantomData,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A borrowing guard; the lock releases on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive lock ownership.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard witnesses exclusive lock ownership.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.raw.unlock();
    }
}

/// An owning guard holding the mutex alive through an `Arc`.
///
/// The `R` parameter mirrors `lock_api::ArcMutexGuard<R, T>` so type
/// annotations written against the real parking_lot keep compiling.
pub struct ArcMutexGuard<R, T: ?Sized> {
    mutex: Arc<Mutex<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> Deref for ArcMutexGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive lock ownership.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<R, T: ?Sized> DerefMut for ArcMutexGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard witnesses exclusive lock ownership.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcMutexGuard<R, T> {
    fn drop(&mut self) {
        self.mutex.raw.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_excludes_and_releases() {
        let m = Mutex::new(0u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_arc_guards_exclusively() {
        let m = Arc::new(Mutex::new(()));
        let g = m.try_lock_arc().expect("free");
        assert!(m.try_lock_arc().is_none());
        drop(g);
        assert!(m.try_lock_arc().is_some());
    }

    #[test]
    fn contended_counter_is_exact() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }
}
