//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits plus the matching
//! no-op derive macros, so `#[derive(serde::Serialize)]` annotations
//! across the workspace stay legal without network access to crates.io.
//! Nothing in this repository serializes through serde — all JSON output
//! goes through `bamboo-telemetry`'s hand-rolled writer.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the real serde's serialization entry point.
pub trait Serialize {}

/// Marker trait; the real serde's deserialization entry point.
pub trait Deserialize<'de> {}
