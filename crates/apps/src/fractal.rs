//! Fractal: Mandelbrot set computation (paper §5.1).
//!
//! The image is split into horizontal bands; `startup` creates one `Band`
//! object per band plus a `Canvas` accumulator; `render` iterates the
//! escape-time recurrence for every pixel of its band; `merge` copies the
//! band's iteration counts into the canvas. Bands near the set boundary
//! cost far more than bands outside it, so this benchmark exercises load
//! balancing across the round-robin band distribution. The paper reports
//! the best speedup of the suite: 61.6× on 62 cores.

use crate::util::Checksum;
use crate::{Benchmark, PaperNumbers, Scale, SerialOutcome};
use bamboo::{body, Compiler, FlagExpr, NativeBody, ProgramBuilder, VirtualExecutor};

/// Cycles charged per escape-time iteration (calibrated against the
/// paper's 1.63e10-cycle serial run).
const CYCLES_PER_ITER: u64 = 1_600;
/// Cycles charged per pixel merged into the canvas.
const CYCLES_PER_MERGE_PIXEL: u64 = 60;
/// Modeled generated-code overhead (paper §5.5: 6.2%).
const LANG_OVERHEAD_PERMILLE: u64 = 62;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of bands (must divide `height`).
    pub bands: usize,
    /// Escape-time iteration cap.
    pub max_iter: u32,
}

impl Params {
    /// Parameters for a scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                width: 64,
                height: 32,
                bands: 8,
                max_iter: 64,
            },
            Scale::Original => Params {
                width: 512,
                height: 496,
                bands: 124,
                max_iter: 128,
            },
            Scale::Double => Params {
                width: 512,
                height: 992,
                bands: 124,
                max_iter: 128,
            },
        }
    }

    fn rows_per_band(&self) -> usize {
        self.height / self.bands
    }
}

/// Renders rows `[y0, y0+rows)`: returns per-pixel iteration counts and
/// the total number of iterations executed (the work measure).
pub fn render_band(p: &Params, y0: usize, rows: usize) -> (Vec<u32>, u64) {
    let mut counts = Vec::with_capacity(rows * p.width);
    let mut total: u64 = 0;
    for y in y0..y0 + rows {
        let ci = -1.0 + 2.0 * y as f64 / p.height as f64;
        for x in 0..p.width {
            let cr = -2.5 + 3.5 * x as f64 / p.width as f64;
            let (mut zr, mut zi) = (0.0f64, 0.0f64);
            let mut iter = 0u32;
            while iter < p.max_iter && zr * zr + zi * zi <= 4.0 {
                let nzr = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = nzr;
                iter += 1;
            }
            total += iter as u64;
            counts.push(iter);
        }
    }
    (counts, total)
}

fn bamboo_charge(work: u64) -> u64 {
    work + work * LANG_OVERHEAD_PERMILLE / 1000
}

#[derive(Debug)]
struct BandData {
    id: usize,
    y0: usize,
    rows: usize,
    counts: Vec<u32>,
}

#[derive(Debug)]
struct CanvasData {
    pixels: Vec<u32>,
    width: usize,
    merged: usize,
    expected: usize,
}

/// Builds the Bamboo program for `params`.
pub fn build(params: Params) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("fractal");
    let s = b.class("StartupObject", &["initialstate"]);
    let band = b.class("Band", &["ready", "done"]);
    let canvas = b.class("Canvas", &["collecting", "finished"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(band, "ready");
    let done = b.flag(band, "done");
    let collecting = b.flag(canvas, "collecting");
    let finished = b.flag(canvas, "finished");

    let p = params;
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(band, &[(ready, true)], &[])
        .alloc(canvas, &[(collecting, true)], &[])
        .exit("spawned", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            let rows = p.rows_per_band();
            for id in 0..p.bands {
                ctx.create(
                    0,
                    BandData {
                        id,
                        y0: id * rows,
                        rows,
                        counts: Vec::new(),
                    },
                );
            }
            ctx.create(
                1,
                CanvasData {
                    pixels: vec![0; p.width * p.height],
                    width: p.width,
                    merged: 0,
                    expected: p.bands,
                },
            );
            ctx.charge(bamboo_charge(p.bands as u64 * 30));
            0
        }))
        .finish();

    b.task("render")
        .param("b", band, FlagExpr::flag(ready))
        .exit("rendered", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(move |ctx| {
            let band = ctx.param_mut::<BandData>(0);
            let (counts, iters) = render_band(&p, band.y0, band.rows);
            band.counts = counts;
            ctx.charge(bamboo_charge(iters * CYCLES_PER_ITER));
            0
        }))
        .finish();

    b.task("merge")
        .param("c", canvas, FlagExpr::flag(collecting))
        .param("b", band, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("finished", |e| {
            e.set(0, collecting, false)
                .set(0, finished, true)
                .set(1, done, false)
        })
        .body(body(move |ctx| {
            let (c, band) = ctx.param_pair_mut::<CanvasData, BandData>(0, 1);
            debug_assert_eq!(band.y0, band.id * band.rows, "band id/offset consistency");
            let base = band.y0 * c.width;
            let pixels_merged = band.counts.len() as u64;
            c.pixels[base..base + band.counts.len()].copy_from_slice(&band.counts);
            c.merged += 1;
            let done_all = c.merged == c.expected;
            ctx.charge(bamboo_charge(pixels_merged * CYCLES_PER_MERGE_PIXEL));
            if done_all {
                1
            } else {
                0
            }
        }))
        .finish();

    Compiler::from_native(b.build().expect("fractal program is well-formed"))
}

fn checksum_pixels(pixels: &[u32]) -> u64 {
    let mut sum = Checksum::new();
    for px in pixels {
        sum.push_u64(*px as u64);
    }
    sum.finish()
}

/// The Fractal benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fractal;

impl Benchmark for Fractal {
    fn name(&self) -> &'static str {
        "Fractal"
    }

    fn paper(&self) -> PaperNumbers {
        PaperNumbers {
            c_cycles_1e8: 162.5,
            speedup_vs_bamboo: 61.6,
            speedup_vs_c: 58.0,
            overhead_pct: 6.2,
        }
    }

    fn compiler(&self, scale: Scale) -> Compiler {
        build(Params::for_scale(scale))
    }

    fn serial(&self, scale: Scale) -> SerialOutcome {
        let p = Params::for_scale(scale);
        let rows = p.rows_per_band();
        let mut pixels = vec![0u32; p.width * p.height];
        let mut cycles = p.bands as u64 * 30;
        for id in 0..p.bands {
            let y0 = id * rows;
            let (counts, iters) = render_band(&p, y0, rows);
            pixels[y0 * p.width..y0 * p.width + counts.len()].copy_from_slice(&counts);
            cycles += iters * CYCLES_PER_ITER;
            cycles += counts.len() as u64 * CYCLES_PER_MERGE_PIXEL;
        }
        SerialOutcome {
            cycles,
            checksum: checksum_pixels(&pixels),
        }
    }

    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64 {
        let canvas = compiler
            .program
            .spec
            .class_by_name("Canvas")
            .expect("class exists");
        let objs = exec.store.live_of_class(canvas);
        assert_eq!(objs.len(), 1);
        checksum_pixels(&exec.payload::<CanvasData>(objs[0]).pixels)
    }

    fn threaded_checksum(&self, compiler: &Compiler, report: &bamboo::ThreadedReport) -> u64 {
        let canvas = compiler
            .program
            .spec
            .class_by_name("Canvas")
            .expect("class exists");
        let objs = report.payloads_of::<CanvasData>(canvas);
        assert_eq!(objs.len(), 1);
        checksum_pixels(&objs[0].pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_pixel_reaches_max_iter() {
        let p = Params::for_scale(Scale::Small);
        // The row through the set's interior contains max_iter pixels.
        let (counts, _) = render_band(&p, p.height / 2, 1);
        assert!(counts.contains(&p.max_iter));
        assert!(counts.iter().any(|&c| c < 4), "edges escape fast");
    }

    #[test]
    fn serial_and_parallel_agree_bit_exactly() {
        let bench = Fractal;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "test", |exec| {
                bench.parallel_checksum(&compiler, exec)
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(digest, serial.checksum);
    }

    #[test]
    fn band_costs_vary() {
        // Load imbalance is the point of this benchmark.
        let p = Params::for_scale(Scale::Small);
        let rows = p.rows_per_band();
        let works: Vec<u64> = (0..p.bands)
            .map(|i| render_band(&p, i * rows, rows).1)
            .collect();
        let min = works.iter().min().unwrap();
        let max = works.iter().max().unwrap();
        assert!(max > &(min * 2), "expected ≥2x imbalance, got {min}..{max}");
    }

    #[test]
    fn double_scale_doubles_work() {
        let bench = Fractal;
        let original = bench.serial(Scale::Original);
        let double = bench.serial(Scale::Double);
        let ratio = double.cycles as f64 / original.cycles as f64;
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
    }
}
