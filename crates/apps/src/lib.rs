#![warn(missing_docs)]

//! # bamboo-apps
//!
//! The six benchmarks of the Bamboo paper's evaluation (§5), implemented
//! from scratch against the native builder API, each with a serial
//! baseline (the "1-core C version") sharing the same computational
//! kernels so results can be compared bit-exactly:
//!
//! | module | paper benchmark | origin in the paper | character |
//! |---|---|---|---|
//! | [`tracking`] | Tracking | SD-VBS feature tracker | multi-phase pipeline with per-phase merges |
//! | [`kmeans`] | KMeans | STAMP | iterative: parallel assign, serial reduce/broadcast |
//! | [`montecarlo`] | MonteCarlo | Java Grande | simulate + aggregate (pipelining opportunity) |
//! | [`filterbank`] | FilterBank | StreamIt | per-channel FIR down/up-sample + combine |
//! | [`fractal`] | Fractal | — | Mandelbrot rows, embarrassingly parallel |
//! | [`series`] | Series | Java Grande | Fourier coefficients, embarrassingly parallel |
//!
//! Inputs are synthetic and deterministic (see DESIGN.md §2 on
//! substitutions). Cycle charges are proportional to the real work each
//! kernel performs, with per-benchmark constants calibrated so the serial
//! totals land near the paper's reported magnitudes; the Bamboo versions
//! additionally charge a small per-benchmark *language overhead* factor
//! modeling the generated-code-vs-hand-C gap the paper measures in §5.5.
//!
//! [`keyword`] additionally provides the keyword-counting DSL example of
//! paper §2, used by the figure-regeneration binaries.

pub mod filterbank;
pub mod fractal;
pub mod keyword;
pub mod kmeans;
pub mod montecarlo;
pub mod series;
pub mod tracking;
pub mod util;

use bamboo::{Compiler, Cycles, ThreadedReport, VirtualExecutor};

/// Input scale for a benchmark run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Reduced input for unit tests and quick experiments.
    Small,
    /// The evaluation input (`Input_original` in the paper's §5.4).
    Original,
    /// Twice the work (`Input_double`).
    Double,
}

/// The paper's reported numbers for one benchmark (Figure 7), used by
/// EXPERIMENTS.md comparisons.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperNumbers {
    /// 1-core C cycles, in units of 1e8.
    pub c_cycles_1e8: f64,
    /// 62-core speedup over 1-core Bamboo.
    pub speedup_vs_bamboo: f64,
    /// 62-core speedup over 1-core C.
    pub speedup_vs_c: f64,
    /// 1-core Bamboo overhead over C, percent.
    pub overhead_pct: f64,
}

/// Outcome of a serial baseline run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SerialOutcome {
    /// Charged cycles (the "1-core C" column).
    pub cycles: Cycles,
    /// Bit-exact digest of the results.
    pub checksum: u64,
}

/// A benchmark: builds its Bamboo program, runs its serial baseline, and
/// extracts/validates parallel results.
pub trait Benchmark: Sync {
    /// The benchmark's name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// The paper's reported numbers (Figure 7).
    fn paper(&self) -> PaperNumbers;

    /// Builds the compiled Bamboo program for `scale`.
    fn compiler(&self, scale: Scale) -> Compiler;

    /// Runs the serial baseline for `scale`.
    fn serial(&self, scale: Scale) -> SerialOutcome;

    /// Extracts the parallel run's result digest from a finished executor.
    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64;

    /// Extracts the same result digest from a threaded executor's
    /// report, so threaded runs (including chaos runs) can be compared
    /// bit-exactly against serial and virtual results.
    fn threaded_checksum(&self, compiler: &Compiler, report: &ThreadedReport) -> u64;
}

/// All six benchmarks, in the paper's table order.
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(tracking::Tracking),
        Box::new(kmeans::KMeans),
        Box::new(montecarlo::MonteCarlo),
        Box::new(filterbank::FilterBank),
        Box::new(fractal::Fractal),
        Box::new(series::Series),
    ]
}

/// Looks a benchmark up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_six() {
        let names: Vec<&str> = all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "Tracking",
                "KMeans",
                "MonteCarlo",
                "FilterBank",
                "Fractal",
                "Series"
            ]
        );
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("fractal").is_some());
        assert!(by_name("FRACTAL").is_some());
        assert!(by_name("nope").is_none());
    }
}
