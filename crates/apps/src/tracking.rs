//! Tracking: a feature-tracking pipeline in the style of the SD-VBS
//! benchmark the paper ports (§5.1, Figure 8).
//!
//! The computation runs five phases over a synthetic image pair, each
//! phase fanning out into per-band pieces and merging into an accumulator
//! before the next phase starts — the paper's task-flow structure of
//! image processing → feature extraction → feature tracking:
//!
//! 1. **blur** — 3×3 Gaussian smoothing of frame A;
//! 2. **gradient** — central-difference Ix/Iy of the blurred frame;
//! 3. **feature** — Harris-style corner scores; the phase-final merge
//!    selects the strongest features (serial work, as in the paper);
//! 4. **blur2** — smoothing of frame B;
//! 5. **track** — per-feature SSD search locating each feature in
//!    frame B.
//!
//! The many serial merge points bound the speedup; the paper reports
//! 26.2× — the lowest of the suite.

use crate::util::{Checksum, Lcg};
use crate::{Benchmark, PaperNumbers, Scale, SerialOutcome};
use bamboo::{body, Compiler, FlagExpr, NativeBody, ProgramBuilder, VirtualExecutor};
use std::sync::Arc;

/// Per-pixel charges for the raster phases (calibrated against the
/// paper's 4.05e10-cycle serial run).
const CYCLES_PER_BLUR_PX: u64 = 500_000;
const CYCLES_PER_GRAD_PX: u64 = 510_000;
const CYCLES_PER_FEAT_PX: u64 = 520_000;
/// Per-SSD-sample charge in the tracking phase.
const CYCLES_PER_TRACK_UNIT: u64 = 26_000;
/// Per-pixel charge for merging a band into the accumulator.
const CYCLES_PER_MERGE_PX: u64 = 11_000;
/// Per-pixel charge for the serial feature selection.
const CYCLES_PER_SELECT_PX: u64 = 5_000;
/// Modeled generated-code overhead (paper §5.5: 0.3%).
const LANG_OVERHEAD_PERMILLE: u64 = 3;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Image width.
    pub width: usize,
    /// Image height (must be divisible by `bands`).
    pub height: usize,
    /// Pieces per phase.
    pub bands: usize,
    /// Features selected and tracked.
    pub features: usize,
    /// SSD search radius.
    pub radius: usize,
}

impl Params {
    /// Parameters for a scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                width: 32,
                height: 16,
                bands: 8,
                features: 12,
                radius: 2,
            },
            Scale::Original => Params {
                width: 128,
                height: 124,
                bands: 62,
                features: 124,
                radius: 3,
            },
            Scale::Double => Params {
                width: 128,
                height: 248,
                bands: 62,
                features: 248,
                radius: 3,
            },
        }
    }

    fn rows_per_band(&self) -> usize {
        self.height / self.bands
    }

    fn pixels(&self) -> usize {
        self.width * self.height
    }
}

// ---- kernels ------------------------------------------------------------

/// Frame A: smooth structure plus deterministic noise.
pub fn frame_a(p: &Params) -> Vec<f64> {
    let mut rng = Lcg::new(0x7EAC4);
    let mut img = Vec::with_capacity(p.pixels());
    for y in 0..p.height {
        for x in 0..p.width {
            let v = (0.13 * x as f64).sin() * (0.21 * y as f64).cos() * 40.0
                + ((x * 7 + y * 13) % 31) as f64
                + rng.next_f64() * 3.0;
            img.push(v);
        }
    }
    img
}

/// Frame B: frame A shifted by (2, 1) with fresh noise.
pub fn frame_b(p: &Params) -> Vec<f64> {
    let a = frame_a(p);
    let mut rng = Lcg::new(0x7EACB);
    let mut img = vec![0.0; p.pixels()];
    for y in 0..p.height {
        for x in 0..p.width {
            let sx = x.saturating_sub(2).min(p.width - 1);
            let sy = y.saturating_sub(1).min(p.height - 1);
            img[y * p.width + x] = a[sy * p.width + sx] + rng.next_f64() * 0.5;
        }
    }
    img
}

fn at(img: &[f64], p: &Params, x: isize, y: isize) -> f64 {
    let x = x.clamp(0, p.width as isize - 1) as usize;
    let y = y.clamp(0, p.height as isize - 1) as usize;
    img[y * p.width + x]
}

/// 3×3 Gaussian blur of rows `[y0, y0+rows)` of `src`.
pub fn blur_band(src: &[f64], p: &Params, y0: usize, rows: usize) -> Vec<f64> {
    const K: [[f64; 3]; 3] = [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]];
    let mut out = Vec::with_capacity(rows * p.width);
    for y in y0..y0 + rows {
        for x in 0..p.width {
            let mut acc = 0.0;
            for (dy, krow) in K.iter().enumerate() {
                for (dx, k) in krow.iter().enumerate() {
                    acc += k * at(
                        src,
                        p,
                        x as isize + dx as isize - 1,
                        y as isize + dy as isize - 1,
                    );
                }
            }
            out.push(acc / 16.0);
        }
    }
    out
}

/// Central-difference gradients of rows `[y0, y0+rows)`.
pub fn grad_band(src: &[f64], p: &Params, y0: usize, rows: usize) -> (Vec<f64>, Vec<f64>) {
    let mut ix = Vec::with_capacity(rows * p.width);
    let mut iy = Vec::with_capacity(rows * p.width);
    for y in y0..y0 + rows {
        for x in 0..p.width {
            let (x, y) = (x as isize, y as isize);
            ix.push((at(src, p, x + 1, y) - at(src, p, x - 1, y)) / 2.0);
            iy.push((at(src, p, x, y + 1) - at(src, p, x, y - 1)) / 2.0);
        }
    }
    (ix, iy)
}

/// Harris-style corner scores of rows `[y0, y0+rows)`.
pub fn feature_band(ix: &[f64], iy: &[f64], p: &Params, y0: usize, rows: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(rows * p.width);
    for y in y0..y0 + rows {
        for x in 0..p.width {
            let (mut gxx, mut gyy, mut gxy) = (0.0, 0.0, 0.0);
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let gx = at(ix, p, x as isize + dx, y as isize + dy);
                    let gy = at(iy, p, x as isize + dx, y as isize + dy);
                    gxx += gx * gx;
                    gyy += gy * gy;
                    gxy += gx * gy;
                }
            }
            let det = gxx * gyy - gxy * gxy;
            let trace = gxx + gyy;
            out.push(det - 0.04 * trace * trace);
        }
    }
    out
}

/// Selects the `n` strongest features on a sparse grid (deterministic,
/// serial — the paper's feature-index phase).
pub fn select_features(score: &[f64], p: &Params, n: usize) -> Vec<(usize, usize)> {
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    let margin = p.radius + 4;
    for y in (margin..p.height.saturating_sub(margin)).step_by(3) {
        for x in (margin..p.width.saturating_sub(margin)).step_by(3) {
            candidates.push((x, y, score[y * p.width + x]));
        }
    }
    candidates.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.1.cmp(&b.1)).then(a.0.cmp(&b.0)));
    candidates
        .into_iter()
        .take(n)
        .map(|(x, y, _)| (x, y))
        .collect()
}

/// Tracks one feature from blurred frame A to blurred frame B: SSD search
/// over ±radius with a 7×7 patch. Returns (dx, dy) and the number of SSD
/// samples evaluated.
pub fn track_feature(a: &[f64], b: &[f64], p: &Params, fx: usize, fy: usize) -> ((i32, i32), u64) {
    let mut best = (0i32, 0i32);
    let mut best_ssd = f64::MAX;
    let mut samples = 0u64;
    let r = p.radius as isize;
    for dy in -r..=r {
        for dx in -r..=r {
            let mut ssd = 0.0;
            for py in -3..=3isize {
                for px in -3..=3isize {
                    let va = at(a, p, fx as isize + px, fy as isize + py);
                    let vb = at(b, p, fx as isize + px + dx, fy as isize + py + dy);
                    let d = va - vb;
                    ssd += d * d;
                    samples += 1;
                }
            }
            if ssd < best_ssd {
                best_ssd = ssd;
                best = (dx as i32, dy as i32);
            }
        }
    }
    (best, samples)
}

fn bamboo_charge(work: u64) -> u64 {
    work + work * LANG_OVERHEAD_PERMILLE / 1000
}

// ---- payloads -----------------------------------------------------------

#[derive(Debug)]
struct RasterPiece {
    id: usize,
    y0: usize,
    rows: usize,
    src: Arc<Vec<f64>>,
    /// Second source (gradient pieces carry iy here).
    src2: Option<Arc<Vec<f64>>>,
    out: Vec<f64>,
    out2: Vec<f64>,
}

#[derive(Debug)]
struct TrackPieceData {
    id: usize,
    feats: Vec<(usize, usize, usize)>, // (x, y, global index)
    a: Arc<Vec<f64>>,
    b: Arc<Vec<f64>>,
    tracks: Vec<(usize, i32, i32)>, // (global index, dx, dy)
}

#[derive(Debug)]
struct AccData {
    blurred_a: Vec<f64>,
    ix: Vec<f64>,
    iy: Vec<f64>,
    score: Vec<f64>,
    blurred_b: Vec<f64>,
    features: Vec<(usize, usize)>,
    tracks: Vec<(i32, i32)>,
    merged: usize,
}

// ---- program ------------------------------------------------------------

/// Builds the Bamboo program for `params`.
pub fn build(params: Params) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("tracking");
    let s = b.class("StartupObject", &["initialstate"]);
    let acc = b.class(
        "Acc",
        &["cblur", "cgrad", "cfeat", "cblur2", "ctrack", "finished"],
    );
    let blur_piece = b.class("BlurPiece", &["ready", "done"]);
    let grad_piece = b.class("GradPiece", &["ready", "done"]);
    let feat_piece = b.class("FeatPiece", &["ready", "done"]);
    let blur2_piece = b.class("Blur2Piece", &["ready", "done"]);
    let track_piece = b.class("TrackPiece", &["ready", "done"]);

    let init = b.flag(s, "initialstate");
    let cblur = b.flag(acc, "cblur");
    let cgrad = b.flag(acc, "cgrad");
    let cfeat = b.flag(acc, "cfeat");
    let cblur2 = b.flag(acc, "cblur2");
    let ctrack = b.flag(acc, "ctrack");
    let finished = b.flag(acc, "finished");
    let flags: Vec<(bamboo::ClassId, bamboo::FlagId, bamboo::FlagId)> =
        [blur_piece, grad_piece, feat_piece, blur2_piece, track_piece]
            .iter()
            .map(|&c| (c, b.flag(c, "ready"), b.flag(c, "done")))
            .collect();
    let (bp_ready, bp_done) = (flags[0].1, flags[0].2);
    let (gp_ready, gp_done) = (flags[1].1, flags[1].2);
    let (fp_ready, fp_done) = (flags[2].1, flags[2].2);
    let (b2_ready, b2_done) = (flags[3].1, flags[3].2);
    let (tp_ready, tp_done) = (flags[4].1, flags[4].2);

    let p = params;
    let rows = p.rows_per_band();

    // startup: Acc + blur pieces of frame A.
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(acc, &[(cblur, true)], &[])
        .alloc(blur_piece, &[(bp_ready, true)], &[])
        .exit("spawned", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            ctx.create(
                0,
                AccData {
                    blurred_a: vec![0.0; p.pixels()],
                    ix: vec![0.0; p.pixels()],
                    iy: vec![0.0; p.pixels()],
                    score: vec![0.0; p.pixels()],
                    blurred_b: vec![0.0; p.pixels()],
                    features: Vec::new(),
                    tracks: Vec::new(),
                    merged: 0,
                },
            );
            let src = Arc::new(frame_a(&p));
            for id in 0..p.bands {
                ctx.create(
                    1,
                    RasterPiece {
                        id,
                        y0: id * rows,
                        rows,
                        src: src.clone(),
                        src2: None,
                        out: Vec::new(),
                        out2: Vec::new(),
                    },
                );
            }
            ctx.charge(bamboo_charge(p.bands as u64 * 80));
            0
        }))
        .finish();

    // Phase 1: blur.
    b.task("blur")
        .param("b", blur_piece, FlagExpr::flag(bp_ready))
        .exit("", |e| e.set(0, bp_ready, false).set(0, bp_done, true))
        .body(body(move |ctx| {
            let piece = ctx.param_mut::<RasterPiece>(0);
            piece.out = blur_band(&piece.src, &p, piece.y0, piece.rows);
            let px = (piece.rows * p.width) as u64;
            ctx.charge(bamboo_charge(px * CYCLES_PER_BLUR_PX));
            0
        }))
        .finish();

    b.task("mergeBlur")
        .param("a", acc, FlagExpr::flag(cblur))
        .param("b", blur_piece, FlagExpr::flag(bp_done))
        .alloc(grad_piece, &[(gp_ready, true)], &[])
        .exit("more", |e| e.set(1, bp_done, false))
        .exit("phaseDone", |e| {
            e.set(0, cblur, false)
                .set(0, cgrad, true)
                .set(1, bp_done, false)
        })
        .body(body(move |ctx| {
            let (phase_done, px, next_src) = {
                let (a, piece) = ctx.param_pair_mut::<AccData, RasterPiece>(0, 1);
                debug_assert_eq!(piece.y0, piece.id * rows, "piece id/offset consistency");
                let base = piece.y0 * p.width;
                a.blurred_a[base..base + piece.out.len()].copy_from_slice(&piece.out);
                a.merged += 1;
                let phase_done = a.merged == p.bands;
                if phase_done {
                    a.merged = 0;
                }
                let src = phase_done.then(|| Arc::new(a.blurred_a.clone()));
                (phase_done, piece.out.len() as u64, src)
            };
            if let Some(src) = next_src {
                for id in 0..p.bands {
                    ctx.create(
                        0,
                        RasterPiece {
                            id,
                            y0: id * rows,
                            rows,
                            src: src.clone(),
                            src2: None,
                            out: Vec::new(),
                            out2: Vec::new(),
                        },
                    );
                }
            }
            ctx.charge(bamboo_charge(px * CYCLES_PER_MERGE_PX));
            if phase_done {
                1
            } else {
                0
            }
        }))
        .finish();

    // Phase 2: gradient.
    b.task("gradient")
        .param("g", grad_piece, FlagExpr::flag(gp_ready))
        .exit("", |e| e.set(0, gp_ready, false).set(0, gp_done, true))
        .body(body(move |ctx| {
            let piece = ctx.param_mut::<RasterPiece>(0);
            let (ix, iy) = grad_band(&piece.src, &p, piece.y0, piece.rows);
            piece.out = ix;
            piece.out2 = iy;
            let px = (piece.rows * p.width) as u64;
            ctx.charge(bamboo_charge(px * CYCLES_PER_GRAD_PX));
            0
        }))
        .finish();

    b.task("mergeGradient")
        .param("a", acc, FlagExpr::flag(cgrad))
        .param("g", grad_piece, FlagExpr::flag(gp_done))
        .alloc(feat_piece, &[(fp_ready, true)], &[])
        .exit("more", |e| e.set(1, gp_done, false))
        .exit("phaseDone", |e| {
            e.set(0, cgrad, false)
                .set(0, cfeat, true)
                .set(1, gp_done, false)
        })
        .body(body(move |ctx| {
            let (phase_done, px, next_src) = {
                let (a, piece) = ctx.param_pair_mut::<AccData, RasterPiece>(0, 1);
                let base = piece.y0 * p.width;
                a.ix[base..base + piece.out.len()].copy_from_slice(&piece.out);
                a.iy[base..base + piece.out2.len()].copy_from_slice(&piece.out2);
                a.merged += 1;
                let phase_done = a.merged == p.bands;
                if phase_done {
                    a.merged = 0;
                }
                let src = phase_done.then(|| (Arc::new(a.ix.clone()), Arc::new(a.iy.clone())));
                (phase_done, piece.out.len() as u64, src)
            };
            if let Some((ix, iy)) = next_src {
                for id in 0..p.bands {
                    ctx.create(
                        0,
                        RasterPiece {
                            id,
                            y0: id * rows,
                            rows,
                            src: ix.clone(),
                            src2: Some(iy.clone()),
                            out: Vec::new(),
                            out2: Vec::new(),
                        },
                    );
                }
            }
            ctx.charge(bamboo_charge(2 * px * CYCLES_PER_MERGE_PX));
            if phase_done {
                1
            } else {
                0
            }
        }))
        .finish();

    // Phase 3: feature scores; final merge selects features and spawns
    // frame-B blur pieces.
    b.task("features")
        .param("f", feat_piece, FlagExpr::flag(fp_ready))
        .exit("", |e| e.set(0, fp_ready, false).set(0, fp_done, true))
        .body(body(move |ctx| {
            let piece = ctx.param_mut::<RasterPiece>(0);
            let iy = piece
                .src2
                .as_ref()
                .expect("feature pieces carry iy")
                .clone();
            piece.out = feature_band(&piece.src, &iy, &p, piece.y0, piece.rows);
            let px = (piece.rows * p.width) as u64;
            ctx.charge(bamboo_charge(px * CYCLES_PER_FEAT_PX));
            0
        }))
        .finish();

    b.task("mergeFeatures")
        .param("a", acc, FlagExpr::flag(cfeat))
        .param("f", feat_piece, FlagExpr::flag(fp_done))
        .alloc(blur2_piece, &[(b2_ready, true)], &[])
        .exit("more", |e| e.set(1, fp_done, false))
        .exit("phaseDone", |e| {
            e.set(0, cfeat, false)
                .set(0, cblur2, true)
                .set(1, fp_done, false)
        })
        .body(body(move |ctx| {
            let (phase_done, charge) = {
                let (a, piece) = ctx.param_pair_mut::<AccData, RasterPiece>(0, 1);
                let base = piece.y0 * p.width;
                a.score[base..base + piece.out.len()].copy_from_slice(&piece.out);
                a.merged += 1;
                let phase_done = a.merged == p.bands;
                let mut charge = piece.out.len() as u64 * CYCLES_PER_MERGE_PX;
                if phase_done {
                    a.merged = 0;
                    a.features = select_features(&a.score, &p, p.features);
                    a.tracks = vec![(0, 0); a.features.len()];
                    charge += p.pixels() as u64 * CYCLES_PER_SELECT_PX;
                }
                (phase_done, charge)
            };
            if phase_done {
                let src = Arc::new(frame_b(&p));
                for id in 0..p.bands {
                    ctx.create(
                        0,
                        RasterPiece {
                            id,
                            y0: id * rows,
                            rows,
                            src: src.clone(),
                            src2: None,
                            out: Vec::new(),
                            out2: Vec::new(),
                        },
                    );
                }
            }
            ctx.charge(bamboo_charge(charge));
            if phase_done {
                1
            } else {
                0
            }
        }))
        .finish();

    // Phase 4: blur frame B; final merge spawns track pieces.
    b.task("blurB")
        .param("b", blur2_piece, FlagExpr::flag(b2_ready))
        .exit("", |e| e.set(0, b2_ready, false).set(0, b2_done, true))
        .body(body(move |ctx| {
            let piece = ctx.param_mut::<RasterPiece>(0);
            piece.out = blur_band(&piece.src, &p, piece.y0, piece.rows);
            let px = (piece.rows * p.width) as u64;
            ctx.charge(bamboo_charge(px * CYCLES_PER_BLUR_PX));
            0
        }))
        .finish();

    b.task("mergeBlurB")
        .param("a", acc, FlagExpr::flag(cblur2))
        .param("b", blur2_piece, FlagExpr::flag(b2_done))
        .alloc(track_piece, &[(tp_ready, true)], &[])
        .exit("more", |e| e.set(1, b2_done, false))
        .exit("phaseDone", |e| {
            e.set(0, cblur2, false)
                .set(0, ctrack, true)
                .set(1, b2_done, false)
        })
        .body(body(move |ctx| {
            let (phase_done, px, next) = {
                let (a, piece) = ctx.param_pair_mut::<AccData, RasterPiece>(0, 1);
                let base = piece.y0 * p.width;
                a.blurred_b[base..base + piece.out.len()].copy_from_slice(&piece.out);
                a.merged += 1;
                let phase_done = a.merged == p.bands;
                if phase_done {
                    a.merged = 0;
                }
                let next = phase_done.then(|| {
                    // Distribute features over track pieces round-robin.
                    let mut feats: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); p.bands];
                    for (i, (x, y)) in a.features.iter().enumerate() {
                        feats[i % p.bands].push((*x, *y, i));
                    }
                    (
                        Arc::new(a.blurred_a.clone()),
                        Arc::new(a.blurred_b.clone()),
                        feats,
                    )
                });
                (phase_done, piece.out.len() as u64, next)
            };
            if let Some((fa, fb, feats)) = next {
                for (id, feats) in feats.into_iter().enumerate() {
                    ctx.create(
                        0,
                        TrackPieceData {
                            id,
                            feats,
                            a: fa.clone(),
                            b: fb.clone(),
                            tracks: Vec::new(),
                        },
                    );
                }
            }
            ctx.charge(bamboo_charge(px * CYCLES_PER_MERGE_PX));
            if phase_done {
                1
            } else {
                0
            }
        }))
        .finish();

    // Phase 5: track features.
    b.task("track")
        .param("t", track_piece, FlagExpr::flag(tp_ready))
        .exit("", |e| e.set(0, tp_ready, false).set(0, tp_done, true))
        .body(body(move |ctx| {
            let piece = ctx.param_mut::<TrackPieceData>(0);
            let mut samples = 0u64;
            let mut tracks = Vec::with_capacity(piece.feats.len());
            for &(x, y, idx) in &piece.feats {
                let ((dx, dy), n) = track_feature(&piece.a, &piece.b, &p, x, y);
                tracks.push((idx, dx, dy));
                samples += n;
            }
            piece.tracks = tracks;
            ctx.charge(bamboo_charge(samples * CYCLES_PER_TRACK_UNIT));
            0
        }))
        .finish();

    b.task("mergeTracks")
        .param("a", acc, FlagExpr::flag(ctrack))
        .param("t", track_piece, FlagExpr::flag(tp_done))
        .exit("more", |e| e.set(1, tp_done, false))
        .exit("finished", |e| {
            e.set(0, ctrack, false)
                .set(0, finished, true)
                .set(1, tp_done, false)
        })
        .body(body(move |ctx| {
            let (a, piece) = ctx.param_pair_mut::<AccData, TrackPieceData>(0, 1);
            debug_assert!(piece.id < p.bands, "track piece id in range");
            for &(idx, dx, dy) in &piece.tracks {
                a.tracks[idx] = (dx, dy);
            }
            a.merged += 1;
            let phase_done = a.merged == p.bands;
            let n = piece.tracks.len() as u64;
            ctx.charge(bamboo_charge((n + 1) * 40_000));
            if phase_done {
                1
            } else {
                0
            }
        }))
        .finish();

    Compiler::from_native(b.build().expect("tracking program is well-formed"))
}

fn checksum_tracks(features: &[(usize, usize)], tracks: &[(i32, i32)]) -> u64 {
    let mut sum = Checksum::new();
    for (x, y) in features {
        sum.push_u64(*x as u64);
        sum.push_u64(*y as u64);
    }
    for (dx, dy) in tracks {
        sum.push_u64(*dx as u32 as u64);
        sum.push_u64(*dy as u32 as u64);
    }
    sum.finish()
}

/// The Tracking benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tracking;

impl Benchmark for Tracking {
    fn name(&self) -> &'static str {
        "Tracking"
    }

    fn paper(&self) -> PaperNumbers {
        PaperNumbers {
            c_cycles_1e8: 405.2,
            speedup_vs_bamboo: 26.2,
            speedup_vs_c: 26.1,
            overhead_pct: 0.3,
        }
    }

    fn compiler(&self, scale: Scale) -> Compiler {
        build(Params::for_scale(scale))
    }

    fn serial(&self, scale: Scale) -> SerialOutcome {
        let p = Params::for_scale(scale);
        let rows = p.rows_per_band();
        let mut cycles = p.bands as u64 * 80;
        let src = frame_a(&p);
        let px_band = (rows * p.width) as u64;

        let mut blurred_a = vec![0.0; p.pixels()];
        for id in 0..p.bands {
            let out = blur_band(&src, &p, id * rows, rows);
            blurred_a[id * rows * p.width..id * rows * p.width + out.len()].copy_from_slice(&out);
            cycles += px_band * (CYCLES_PER_BLUR_PX + CYCLES_PER_MERGE_PX);
        }
        let (mut ix, mut iy) = (vec![0.0; p.pixels()], vec![0.0; p.pixels()]);
        for id in 0..p.bands {
            let (ox, oy) = grad_band(&blurred_a, &p, id * rows, rows);
            let base = id * rows * p.width;
            ix[base..base + ox.len()].copy_from_slice(&ox);
            iy[base..base + oy.len()].copy_from_slice(&oy);
            cycles += px_band * (CYCLES_PER_GRAD_PX + 2 * CYCLES_PER_MERGE_PX);
        }
        let mut score = vec![0.0; p.pixels()];
        for id in 0..p.bands {
            let out = feature_band(&ix, &iy, &p, id * rows, rows);
            let base = id * rows * p.width;
            score[base..base + out.len()].copy_from_slice(&out);
            cycles += px_band * (CYCLES_PER_FEAT_PX + CYCLES_PER_MERGE_PX);
        }
        let features = select_features(&score, &p, p.features);
        cycles += p.pixels() as u64 * CYCLES_PER_SELECT_PX;

        let fb = frame_b(&p);
        let mut blurred_b = vec![0.0; p.pixels()];
        for id in 0..p.bands {
            let out = blur_band(&fb, &p, id * rows, rows);
            let base = id * rows * p.width;
            blurred_b[base..base + out.len()].copy_from_slice(&out);
            cycles += px_band * (CYCLES_PER_BLUR_PX + CYCLES_PER_MERGE_PX);
        }

        let mut tracks = vec![(0, 0); features.len()];
        let mut piece_counts = vec![0u64; p.bands];
        for (i, (x, y)) in features.iter().enumerate() {
            let ((dx, dy), n) = track_feature(&blurred_a, &blurred_b, &p, *x, *y);
            tracks[i] = (dx, dy);
            cycles += n * CYCLES_PER_TRACK_UNIT;
            piece_counts[i % p.bands] += 1;
        }
        for count in piece_counts {
            cycles += (count + 1) * 40_000;
        }
        SerialOutcome {
            cycles,
            checksum: checksum_tracks(&features, &tracks),
        }
    }

    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64 {
        let acc = compiler
            .program
            .spec
            .class_by_name("Acc")
            .expect("class exists");
        let objs = exec.store.live_of_class(acc);
        assert_eq!(objs.len(), 1);
        let a = exec.payload::<AccData>(objs[0]);
        checksum_tracks(&a.features, &a.tracks)
    }

    fn threaded_checksum(&self, compiler: &Compiler, report: &bamboo::ThreadedReport) -> u64 {
        let acc = compiler
            .program
            .spec
            .class_by_name("Acc")
            .expect("class exists");
        let objs = report.payloads_of::<AccData>(acc);
        assert_eq!(objs.len(), 1);
        checksum_tracks(&objs[0].features, &objs[0].tracks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_recovers_the_synthetic_shift() {
        // Frame B is frame A shifted by (2, 1); most features should
        // track to displacement (2, 1).
        let p = Params::for_scale(Scale::Small);
        let a = frame_a(&p);
        let fb = frame_b(&p);
        let rows = p.rows_per_band();
        let mut blurred_a = vec![0.0; p.pixels()];
        let mut blurred_b = vec![0.0; p.pixels()];
        for id in 0..p.bands {
            let oa = blur_band(&a, &p, id * rows, rows);
            let ob = blur_band(&fb, &p, id * rows, rows);
            let base = id * rows * p.width;
            blurred_a[base..base + oa.len()].copy_from_slice(&oa);
            blurred_b[base..base + ob.len()].copy_from_slice(&ob);
        }
        let (ix, iy) = grad_band(&blurred_a, &p, 0, p.height);
        let score = feature_band(&ix, &iy, &p, 0, p.height);
        let features = select_features(&score, &p, 8);
        let hits = features
            .iter()
            .filter(|(x, y)| {
                let ((dx, dy), _) = track_feature(&blurred_a, &blurred_b, &p, *x, *y);
                dx == 2 && dy == 1
            })
            .count();
        assert!(
            hits * 2 >= features.len(),
            "only {hits}/{} tracked",
            features.len()
        );
    }

    #[test]
    fn serial_and_parallel_agree_bit_exactly() {
        let bench = Tracking;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "test", |exec| {
                bench.parallel_checksum(&compiler, exec)
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(digest, serial.checksum);
        // 1 startup + 5 phases × 2 tasks × bands.
        let p = Params::for_scale(Scale::Small);
        assert_eq!(report.invocations as usize, 1 + 10 * p.bands);
    }

    #[test]
    fn select_features_is_deterministic_and_in_bounds() {
        let p = Params::for_scale(Scale::Small);
        let score: Vec<f64> = (0..p.pixels()).map(|i| ((i * 37) % 101) as f64).collect();
        let a = select_features(&score, &p, 10);
        let b = select_features(&score, &p, 10);
        assert_eq!(a, b);
        for (x, y) in a {
            assert!(x < p.width && y < p.height);
        }
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    #[test]
    fn blur_preserves_constant_images() {
        let p = Params {
            width: 16,
            height: 8,
            bands: 4,
            features: 4,
            radius: 2,
        };
        let img = vec![5.0; p.pixels()];
        let out = blur_band(&img, &p, 2, 2);
        assert!(out.iter().all(|v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    fn gradients_of_a_ramp_are_constant() {
        let p = Params {
            width: 16,
            height: 8,
            bands: 4,
            features: 4,
            radius: 2,
        };
        let img: Vec<f64> = (0..p.pixels())
            .map(|i| (i % p.width) as f64 * 3.0)
            .collect();
        let (ix, iy) = grad_band(&img, &p, 2, 2);
        // Interior x-gradient = 3; y-gradient = 0.
        for x in 1..p.width - 1 {
            assert!((ix[x] - 3.0).abs() < 1e-12, "ix[{x}] = {}", ix[x]);
            assert!(iy[x].abs() < 1e-12);
        }
    }

    #[test]
    fn corner_scores_peak_at_corners() {
        // A checkerboard has strong corners everywhere; a flat image has
        // zero score.
        let p = Params {
            width: 16,
            height: 8,
            bands: 4,
            features: 4,
            radius: 2,
        };
        let flat = vec![1.0; p.pixels()];
        let (ix, iy) = grad_band(&flat, &p, 0, p.height);
        let score = feature_band(&ix, &iy, &p, 0, p.height);
        assert!(score.iter().all(|s| s.abs() < 1e-9));
    }

    #[test]
    fn track_samples_scale_with_radius() {
        let p1 = Params {
            width: 32,
            height: 16,
            bands: 4,
            features: 4,
            radius: 1,
        };
        let p3 = Params {
            width: 32,
            height: 16,
            bands: 4,
            features: 4,
            radius: 3,
        };
        let a = frame_a(&p1);
        let b = frame_b(&p1);
        let (_, n1) = track_feature(&a, &b, &p1, 10, 8);
        let (_, n3) = track_feature(&a, &b, &p3, 10, 8);
        assert_eq!(n1, 9 * 49);
        assert_eq!(n3, 49 * 49);
    }
}
