//! MonteCarlo: financial Monte Carlo simulation (ported in spirit from
//! the Java Grande suite, paper §5.1).
//!
//! Each `Sim` object walks a geometric-Brownian-motion price path with a
//! deterministic per-simulation RNG stream; the `Agg` object folds the
//! final prices into index-addressed slots plus running moments. The
//! aggregation is substantial relative to a single simulation, so the
//! synthesizer can profit from *pipelining* — overlapping aggregation on
//! one core with simulation on the others — which is exactly the
//! sophisticated layout the paper reports discovering for this benchmark
//! (§5.4 and §5.6).

use crate::util::{Checksum, Lcg};
use crate::{Benchmark, PaperNumbers, Scale, SerialOutcome};
use bamboo::{body, Compiler, FlagExpr, NativeBody, ProgramBuilder, VirtualExecutor};

/// Cycles charged per path timestep (calibrated against the paper's
/// 4.44e9-cycle serial run: 248 sims × 2000 steps × this ≈ 4.4e9).
const CYCLES_PER_STEP: u64 = 8_400;
/// Cycles charged per aggregation of one simulation result. Deliberately
/// large (≈10% of one simulation) so the serial aggregator is a real
/// bottleneck and pipelining matters.
const CYCLES_PER_AGGREGATE: u64 = 420_000;
/// Modeled generated-code overhead (paper §5.5: 5.9%).
const LANG_OVERHEAD_PERMILLE: u64 = 59;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of simulation objects.
    pub sims: usize,
    /// Timesteps per path.
    pub steps: usize,
}

impl Params {
    /// Parameters for a scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                sims: 12,
                steps: 128,
            },
            Scale::Original => Params {
                sims: 248,
                steps: 2000,
            },
            Scale::Double => Params {
                sims: 496,
                steps: 2000,
            },
        }
    }
}

/// Walks one GBM path; returns the final price.
pub fn simulate_path(sim_id: usize, steps: usize) -> f64 {
    let mut rng = Lcg::new(0xC0FFEE ^ (sim_id as u64).wrapping_mul(0x9E37));
    let (mu, sigma, dt) = (0.05f64, 0.2f64, 1.0 / steps as f64);
    let drift = (mu - 0.5 * sigma * sigma) * dt;
    let vol = sigma * dt.sqrt();
    let mut price = 100.0f64;
    for _ in 0..steps {
        price *= (drift + vol * rng.next_gaussian()).exp();
    }
    price
}

fn bamboo_charge(work: u64) -> u64 {
    work + work * LANG_OVERHEAD_PERMILLE / 1000
}

#[derive(Debug)]
struct SimData {
    id: usize,
    result: f64,
}

#[derive(Debug)]
struct AggData {
    slots: Vec<f64>,
    sum: f64,
    sum_sq: f64,
    merged: usize,
    expected: usize,
}

/// Builds the Bamboo program for `params`.
pub fn build(params: Params) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("montecarlo");
    let s = b.class("StartupObject", &["initialstate"]);
    let sim = b.class("Sim", &["ready", "done"]);
    let agg = b.class("Agg", &["collecting", "finished"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(sim, "ready");
    let done = b.flag(sim, "done");
    let collecting = b.flag(agg, "collecting");
    let finished = b.flag(agg, "finished");

    let p = params;
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(sim, &[(ready, true)], &[])
        .alloc(agg, &[(collecting, true)], &[])
        .exit("spawned", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for id in 0..p.sims {
                ctx.create(0, SimData { id, result: 0.0 });
            }
            ctx.create(
                1,
                AggData {
                    slots: vec![0.0; p.sims],
                    sum: 0.0,
                    sum_sq: 0.0,
                    merged: 0,
                    expected: p.sims,
                },
            );
            ctx.charge(bamboo_charge(p.sims as u64 * 30));
            0
        }))
        .finish();

    b.task("runSimulation")
        .param("m", sim, FlagExpr::flag(ready))
        .exit("simulated", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(move |ctx| {
            let m = ctx.param_mut::<SimData>(0);
            m.result = simulate_path(m.id, p.steps);
            ctx.charge(bamboo_charge(p.steps as u64 * CYCLES_PER_STEP));
            0
        }))
        .finish();

    b.task("aggregate")
        .param("a", agg, FlagExpr::flag(collecting))
        .param("m", sim, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("finished", |e| {
            e.set(0, collecting, false)
                .set(0, finished, true)
                .set(1, done, false)
        })
        .body(body(move |ctx| {
            let (a, m) = ctx.param_pair_mut::<AggData, SimData>(0, 1);
            a.slots[m.id] = m.result;
            a.merged += 1;
            let done_all = a.merged == a.expected;
            if done_all {
                // Fold moments in slot order: bit-exact regardless of the
                // order simulations completed.
                a.sum = a.slots.iter().sum();
                a.sum_sq = a.slots.iter().map(|v| v * v).sum();
            }
            ctx.charge(bamboo_charge(CYCLES_PER_AGGREGATE));
            if done_all {
                1
            } else {
                0
            }
        }))
        .finish();

    Compiler::from_native(b.build().expect("montecarlo program is well-formed"))
}

fn checksum_agg(slots: &[f64], sum: f64, sum_sq: f64) -> u64 {
    let mut digest = Checksum::new();
    digest.push_f64s(slots);
    digest.push_f64(sum);
    digest.push_f64(sum_sq);
    digest.finish()
}

/// The MonteCarlo benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonteCarlo;

impl Benchmark for MonteCarlo {
    fn name(&self) -> &'static str {
        "MonteCarlo"
    }

    fn paper(&self) -> PaperNumbers {
        PaperNumbers {
            c_cycles_1e8: 44.4,
            speedup_vs_bamboo: 36.2,
            speedup_vs_c: 34.2,
            overhead_pct: 5.9,
        }
    }

    fn compiler(&self, scale: Scale) -> Compiler {
        build(Params::for_scale(scale))
    }

    fn serial(&self, scale: Scale) -> SerialOutcome {
        let p = Params::for_scale(scale);
        let mut slots = vec![0.0; p.sims];
        let mut cycles = p.sims as u64 * 30;
        for (id, slot) in slots.iter_mut().enumerate() {
            *slot = simulate_path(id, p.steps);
            cycles += p.steps as u64 * CYCLES_PER_STEP + CYCLES_PER_AGGREGATE;
        }
        let sum: f64 = slots.iter().sum();
        let sum_sq: f64 = slots.iter().map(|v| v * v).sum();
        SerialOutcome {
            cycles,
            checksum: checksum_agg(&slots, sum, sum_sq),
        }
    }

    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64 {
        let agg = compiler
            .program
            .spec
            .class_by_name("Agg")
            .expect("class exists");
        let objs = exec.store.live_of_class(agg);
        assert_eq!(objs.len(), 1);
        let a = exec.payload::<AggData>(objs[0]);
        checksum_agg(&a.slots, a.sum, a.sum_sq)
    }

    fn threaded_checksum(&self, compiler: &Compiler, report: &bamboo::ThreadedReport) -> u64 {
        let agg = compiler
            .program
            .spec
            .class_by_name("Agg")
            .expect("class exists");
        let objs = report.payloads_of::<AggData>(agg);
        assert_eq!(objs.len(), 1);
        checksum_agg(&objs[0].slots, objs[0].sum, objs[0].sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_deterministic_and_distinct() {
        assert_eq!(simulate_path(3, 100), simulate_path(3, 100));
        assert_ne!(simulate_path(3, 100), simulate_path(4, 100));
    }

    #[test]
    fn prices_stay_positive_and_plausible() {
        for id in 0..20 {
            let p = simulate_path(id, 500);
            assert!(p > 0.0 && p < 10_000.0, "price {p}");
        }
    }

    #[test]
    fn serial_and_parallel_agree_bit_exactly() {
        let bench = MonteCarlo;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "test", |exec| {
                bench.parallel_checksum(&compiler, exec)
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(digest, serial.checksum);
        let p = Params::for_scale(Scale::Small);
        assert_eq!(report.invocations as usize, 1 + 2 * p.sims);
    }

    #[test]
    fn aggregation_is_a_meaningful_fraction_of_simulation() {
        // The pipelining experiment depends on this ratio.
        let p = Params::for_scale(Scale::Original);
        let sim_cost = p.steps as u64 * CYCLES_PER_STEP;
        assert!(CYCLES_PER_AGGREGATE * 10 > sim_cost / 10);
        assert!(CYCLES_PER_AGGREGATE < sim_cost);
    }
}
