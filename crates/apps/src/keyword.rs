//! The keyword-counting example of paper §2, as a DSL program.
//!
//! `startup` partitions a text into sections and creates one `Text` object
//! per section in the `process` state plus a `Results` object;
//! `processText` counts the keyword occurrences in its section;
//! `mergeIntermediateResult` folds section counts into the result. The
//! figure-regeneration binaries (paper Figures 3, 4, and 6) and the
//! quickstart example all build on this module.

use bamboo::Compiler;

/// The DSL source of the keyword-counting program.
///
/// The text and keyword are baked into the source (the DSL has no file
/// I/O); `sections` controls the fan-out, as the command-line argument
/// does in the paper's listing.
pub fn source(sections: usize) -> String {
    format!(
        r#"
class StartupObject {{ flag initialstate; }}

class Text {{
    flag process;
    flag submit;
    String section;
    int count;

    Text(String section) {{ this.section = section; }}

    void process() {{
        String[] words = split(this.section, " ");
        int n = 0;
        for (int i = 0; i < len(words); i = i + 1) {{
            if (words[i] == "bamboo") {{ n = n + 1; }}
        }}
        this.count = n;
    }}
}}

class Results {{
    flag finished;
    int total;
    int merged;
    int expected;

    Results(int expected) {{ this.expected = expected; }}

    boolean mergeResult(Text tp) {{
        this.total = this.total + tp.count;
        this.merged = this.merged + 1;
        return this.merged == this.expected;
    }}
}}

task startup(StartupObject s in initialstate) {{
    int sections = {sections};
    for (int i = 0; i < sections; i = i + 1) {{
        String section = "bamboo grows fast the bamboo panda eats bamboo shoots";
        Text tp = new Text(section){{ process := true }};
    }}
    Results rp = new Results(sections){{ finished := false }};
    taskexit(s: initialstate := false);
}}

task processText(Text tp in process) {{
    tp.process();
    taskexit(tp: process := false, submit := true);
}}

task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {{
    boolean allprocessed = rp.mergeResult(tp);
    if (allprocessed) {{
        taskexit(rp: finished := true; tp: submit := false);
    }}
    taskexit(tp: submit := false);
}}
"#
    )
}

/// Compiles the keyword-counting program with `sections` text sections.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn compiler(sections: usize) -> Compiler {
    Compiler::from_source("keyword-count", &source(sections))
        .expect("bundled keyword-count source compiles")
}

/// The keyword occurrences per section in the bundled text.
pub const KEYWORDS_PER_SECTION: i64 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo::lang::interp::Value;

    #[test]
    fn counts_keywords_across_sections() {
        let compiler = compiler(4);
        let (_, report, total) = compiler
            .profile_run(None, "test", |exec| {
                let results = compiler
                    .program
                    .spec
                    .class_by_name("Results")
                    .expect("class exists");
                let objs = exec.store.live_of_class(results);
                assert_eq!(objs.len(), 1);
                let r = match exec.store.get(objs[0]).payload {
                    bamboo::runtime::PayloadSlot::Interp(r) => r,
                    _ => unreachable!("interpreted program"),
                };
                exec.interp_heap().expect("interp heap").field(r, 0).clone()
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(report.invocations, 1 + 4 * 2);
        assert_eq!(total, Value::Int(4 * KEYWORDS_PER_SECTION));
    }

    #[test]
    fn source_scales_section_count() {
        let compiler = compiler(2);
        let (profile, _, ()) = compiler.profile_run(None, "test", |_| ()).unwrap();
        let process = compiler.program.spec.task_by_name("processText").unwrap();
        assert_eq!(profile.task(process).invocations(), 2);
    }
}
