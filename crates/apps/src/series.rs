//! Series: Fourier coefficient computation (ported in spirit from the
//! Java Grande suite, as in the paper's §5.1).
//!
//! The first `n` Fourier coefficient pairs of `f(x) = (x+1)^x` on `[0,2]`
//! are computed by trapezoidal integration. The Bamboo version splits the
//! coefficient range into chunks: `startup` creates one `Chunk` object per
//! range plus a `Result` accumulator; `compute` integrates a chunk;
//! `merge` writes the chunk's coefficients into index-addressed slots of
//! the result (bit-exact regardless of merge order). Embarrassingly
//! parallel — the paper reports a 61.2× speedup on 62 cores.

use crate::util::Checksum;
use crate::{Benchmark, PaperNumbers, Scale, SerialOutcome};
use bamboo::{body, Compiler, FlagExpr, NativeBody, ProgramBuilder, VirtualExecutor};

/// Cycles charged per integration point (calibrated to the paper's serial
/// magnitude: 124 chunks × 8 coefficients × 200 points × this ≈ 1.8e11).
const CYCLES_PER_POINT: u64 = 890_000;
/// Cycles charged per coefficient merged into the result.
const CYCLES_PER_MERGE_COEFF: u64 = 200_000;
/// Modeled generated-code overhead of the Bamboo version, in permille
/// (paper §5.5 measures 6.3% for Series).
const LANG_OVERHEAD_PERMILLE: u64 = 63;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of chunk objects.
    pub chunks: usize,
    /// Coefficient pairs per chunk.
    pub coeffs_per_chunk: usize,
    /// Integration points per coefficient.
    pub points: usize,
}

impl Params {
    /// Parameters for a scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                chunks: 8,
                coeffs_per_chunk: 4,
                points: 64,
            },
            Scale::Original => Params {
                chunks: 124,
                coeffs_per_chunk: 8,
                points: 200,
            },
            Scale::Double => Params {
                chunks: 124,
                coeffs_per_chunk: 16,
                points: 200,
            },
        }
    }

    fn total_coeffs(&self) -> usize {
        self.chunks * self.coeffs_per_chunk
    }
}

/// The integrand of the Java Grande Series kernel.
fn integrand(x: f64) -> f64 {
    (x + 1.0).powf(x)
}

/// Computes coefficient pairs `(a_k, b_k)` for `k` in
/// `[first, first+count)` by the trapezoid rule with `points` intervals.
pub fn fourier_coefficients(first: usize, count: usize, points: usize) -> Vec<(f64, f64)> {
    let omega = std::f64::consts::PI;
    let dx = 2.0 / points as f64;
    let mut out = Vec::with_capacity(count);
    for k in first..first + count {
        let (mut a, mut b) = (0.0f64, 0.0f64);
        for i in 0..=points {
            let x = i as f64 * dx;
            let w = if i == 0 || i == points { 0.5 } else { 1.0 };
            let f = integrand(x);
            if k == 0 {
                a += w * f * dx;
            } else {
                let phase = omega * k as f64 * x;
                a += w * f * phase.cos() * dx;
                b += w * f * phase.sin() * dx;
            }
        }
        out.push((a / 2.0, b / 2.0));
    }
    out
}

/// Work units (integration points) for one chunk.
fn chunk_units(p: &Params) -> u64 {
    (p.coeffs_per_chunk * (p.points + 1)) as u64
}

fn bamboo_charge(work: u64) -> u64 {
    work + work * LANG_OVERHEAD_PERMILLE / 1000
}

/// Chunk payload.
#[derive(Debug)]
struct ChunkData {
    id: usize,
    first: usize,
    coeffs: Vec<(f64, f64)>,
}

/// Result payload: index-addressed coefficient slots.
#[derive(Debug)]
struct ResultData {
    slots: Vec<(f64, f64)>,
    merged: usize,
    expected: usize,
}

/// Builds the Bamboo program for `params`.
pub fn build(params: Params) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("series");
    let s = b.class("StartupObject", &["initialstate"]);
    let chunk = b.class("Chunk", &["ready", "done"]);
    let result = b.class("Result", &["collecting", "finished"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(chunk, "ready");
    let done = b.flag(chunk, "done");
    let collecting = b.flag(result, "collecting");
    let finished = b.flag(result, "finished");

    let p = params;
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(chunk, &[(ready, true)], &[])
        .alloc(result, &[(collecting, true)], &[])
        .exit("spawned", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for id in 0..p.chunks {
                ctx.create(
                    0,
                    ChunkData {
                        id,
                        first: id * p.coeffs_per_chunk,
                        coeffs: Vec::new(),
                    },
                );
            }
            ctx.create(
                1,
                ResultData {
                    slots: vec![(0.0, 0.0); p.total_coeffs()],
                    merged: 0,
                    expected: p.chunks,
                },
            );
            ctx.charge(bamboo_charge(p.chunks as u64 * 40));
            0
        }))
        .finish();

    b.task("compute")
        .param("c", chunk, FlagExpr::flag(ready))
        .exit("computed", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(move |ctx| {
            let c = ctx.param_mut::<ChunkData>(0);
            c.coeffs = fourier_coefficients(c.first, p.coeffs_per_chunk, p.points);
            ctx.charge(bamboo_charge(chunk_units(&p) * CYCLES_PER_POINT));
            0
        }))
        .finish();

    b.task("merge")
        .param("r", result, FlagExpr::flag(collecting))
        .param("c", chunk, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("finished", |e| {
            e.set(0, collecting, false)
                .set(0, finished, true)
                .set(1, done, false)
        })
        .body(body(move |ctx| {
            let (r, c) = ctx.param_pair_mut::<ResultData, ChunkData>(0, 1);
            debug_assert_eq!(c.first, c.id * c.coeffs.len(), "chunk id/range consistency");
            for (i, coeff) in c.coeffs.iter().enumerate() {
                r.slots[c.first + i] = *coeff;
            }
            r.merged += 1;
            let finished = r.merged == r.expected;
            ctx.charge(bamboo_charge(
                p.coeffs_per_chunk as u64 * CYCLES_PER_MERGE_COEFF,
            ));
            if finished {
                1
            } else {
                0
            }
        }))
        .finish();

    Compiler::from_native(b.build().expect("series program is well-formed"))
}

fn checksum_slots(slots: &[(f64, f64)]) -> u64 {
    let mut sum = Checksum::new();
    for (a, b) in slots {
        sum.push_f64(*a);
        sum.push_f64(*b);
    }
    sum.finish()
}

/// The Series benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct Series;

impl Benchmark for Series {
    fn name(&self) -> &'static str {
        "Series"
    }

    fn paper(&self) -> PaperNumbers {
        PaperNumbers {
            c_cycles_1e8: 1774.7,
            speedup_vs_bamboo: 61.2,
            speedup_vs_c: 57.6,
            overhead_pct: 6.3,
        }
    }

    fn compiler(&self, scale: Scale) -> Compiler {
        build(Params::for_scale(scale))
    }

    fn serial(&self, scale: Scale) -> SerialOutcome {
        let p = Params::for_scale(scale);
        let mut slots = vec![(0.0, 0.0); p.total_coeffs()];
        let mut cycles = p.chunks as u64 * 40;
        for id in 0..p.chunks {
            let first = id * p.coeffs_per_chunk;
            let coeffs = fourier_coefficients(first, p.coeffs_per_chunk, p.points);
            for (i, c) in coeffs.iter().enumerate() {
                slots[first + i] = *c;
            }
            cycles += chunk_units(&p) * CYCLES_PER_POINT;
            cycles += p.coeffs_per_chunk as u64 * CYCLES_PER_MERGE_COEFF;
        }
        SerialOutcome {
            cycles,
            checksum: checksum_slots(&slots),
        }
    }

    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64 {
        let result_class = compiler
            .program
            .spec
            .class_by_name("Result")
            .expect("class exists");
        let results = exec.store.live_of_class(result_class);
        assert_eq!(results.len(), 1, "exactly one result object");
        checksum_slots(&exec.payload::<ResultData>(results[0]).slots)
    }

    fn threaded_checksum(&self, compiler: &Compiler, report: &bamboo::ThreadedReport) -> u64 {
        let result_class = compiler
            .program
            .spec
            .class_by_name("Result")
            .expect("class exists");
        let results = report.payloads_of::<ResultData>(result_class);
        assert_eq!(results.len(), 1, "exactly one result object");
        checksum_slots(&results[0].slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo::ExecConfig;

    #[test]
    fn kernel_zeroth_coefficient_is_positive() {
        let coeffs = fourier_coefficients(0, 1, 1000);
        // a_0 = (1/2)∫(x+1)^x dx over [0,2] ≈ 2.88.
        assert!((coeffs[0].0 - 2.88).abs() < 0.02, "a0 = {}", coeffs[0].0);
        assert_eq!(coeffs[0].1, 0.0);
    }

    #[test]
    fn serial_and_parallel_agree_bit_exactly() {
        let bench = Series;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "test", |exec| {
                bench.parallel_checksum(&compiler, exec)
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(digest, serial.checksum);
    }

    #[test]
    fn body_cycles_match_serial_modulo_language_overhead() {
        let bench = Series;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, ()) = compiler.profile_run(None, "test", |_| ()).unwrap();
        let expected = bamboo_charge(serial.cycles);
        // Integer rounding of per-invocation overhead keeps this within
        // one permille.
        let diff = (report.body_cycles as f64 - expected as f64).abs() / expected as f64;
        assert!(
            diff < 0.001,
            "body {} vs expected {}",
            report.body_cycles,
            expected
        );
    }

    #[test]
    fn invocation_count_matches_structure() {
        let bench = Series;
        let p = Params::for_scale(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, ()) = compiler.profile_run(None, "test", |_| ()).unwrap();
        assert_eq!(report.invocations as usize, 1 + 2 * p.chunks);
    }

    #[test]
    fn double_scale_doubles_work() {
        let bench = Series;
        let original = bench.serial(Scale::Original);
        let double = bench.serial(Scale::Double);
        let ratio = double.cycles as f64 / original.cycles as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn parallel_execution_on_many_cores_matches_too() {
        use rand::SeedableRng;
        let bench = Series;
        let compiler = bench.compiler(Scale::Small);
        let (profile, _, ()) = compiler.profile_run(None, "test", |_| ()).unwrap();
        let machine = bamboo::MachineDescription::n_cores(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let plan = compiler.synthesize(
            &profile,
            &machine,
            &bamboo::SynthesisOptions::default(),
            &mut rng,
        );
        let mut exec =
            compiler.executor(&plan.graph, &plan.layout, &machine, ExecConfig::default());
        exec.run(None).unwrap();
        assert_eq!(
            bench.parallel_checksum(&compiler, &exec),
            bench.serial(Scale::Small).checksum
        );
    }
}
