//! KMeans: iterative K-means clustering (ported in spirit from STAMP,
//! paper §5.1).
//!
//! As in the paper's port, no transactions guard the shared centroid
//! structure; instead **one core runs the reduction task and the other
//! cores send partial results to it**. Per iteration:
//!
//! - `broadcast` (Master×Chunk, serial through the master) copies the
//!   current centroids into a chunk and marks it ready;
//! - `assign` (Chunk, data parallel) assigns the chunk's points to the
//!   nearest centroid and computes partial sums;
//! - `reduce` (Master×Chunk, serial) stores the partials in the chunk's
//!   slot; the iteration's final reduce folds slots in chunk order
//!   (bit-exact) and recomputes centroids, then either starts the next
//!   iteration or finishes.
//!
//! The serial broadcast/reduce phases bound the speedup well below the
//! embarrassingly parallel benchmarks — the paper reports 38.9×.

use crate::util::{Checksum, Lcg};
use crate::{Benchmark, PaperNumbers, Scale, SerialOutcome};
use bamboo::{body, Compiler, FlagExpr, NativeBody, ProgramBuilder, VirtualExecutor};

/// Cycles per (point × centroid × dimension) distance unit (calibrated
/// against the paper's 1.12e11-cycle serial run).
const CYCLES_PER_DIST_UNIT: u64 = 14_000;
/// Cycles per centroid value broadcast into a chunk.
const CYCLES_PER_BCAST_VALUE: u64 = 20_000;
/// Cycles per partial value reduced from a chunk.
const CYCLES_PER_REDUCE_VALUE: u64 = 42_000;
/// Cycles per value in the end-of-iteration centroid recomputation.
const CYCLES_PER_RECOMPUTE_VALUE: u64 = 500;
/// Modeled generated-code overhead (paper §5.5: 10.6% — the highest of
/// the suite; fine-grained shared-structure code).
const LANG_OVERHEAD_PERMILLE: u64 = 106;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of point chunks (one per worker).
    pub chunks: usize,
    /// Points per chunk.
    pub points_per_chunk: usize,
    /// Cluster count.
    pub k: usize,
    /// Point dimensionality.
    pub dims: usize,
    /// Fixed iteration count.
    pub iters: usize,
}

impl Params {
    /// Parameters for a scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                chunks: 4,
                points_per_chunk: 32,
                k: 4,
                dims: 2,
                iters: 3,
            },
            Scale::Original => Params {
                chunks: 61,
                points_per_chunk: 407,
                k: 8,
                dims: 4,
                iters: 10,
            },
            Scale::Double => Params {
                chunks: 61,
                points_per_chunk: 814,
                k: 8,
                dims: 4,
                iters: 10,
            },
        }
    }
}

/// Generates a chunk's points: a deterministic mixture around `k` true
/// centers.
pub fn chunk_points(p: &Params, chunk_id: usize) -> Vec<f64> {
    let mut rng = Lcg::new(0x4B4D45414E53 ^ chunk_id as u64);
    let mut points = Vec::with_capacity(p.points_per_chunk * p.dims);
    for _ in 0..p.points_per_chunk {
        let center = rng.next_below(p.k as u64) as usize;
        for d in 0..p.dims {
            let base = true_center(center, d);
            points.push(base + 0.6 * rng.next_gaussian());
        }
    }
    points
}

fn true_center(cluster: usize, dim: usize) -> f64 {
    ((cluster * 7 + dim * 3) % 13) as f64 - 6.0
}

/// Deterministic initial centroids.
pub fn initial_centroids(p: &Params) -> Vec<f64> {
    let mut rng = Lcg::new(0xCE27401D);
    (0..p.k * p.dims)
        .map(|_| 8.0 * (rng.next_f64() - 0.5))
        .collect()
}

/// Assigns each point of a chunk to its nearest centroid; returns partial
/// sums (`k*dims`) and counts (`k`).
pub fn assign_chunk(
    points: &[f64],
    centroids: &[f64],
    k: usize,
    dims: usize,
) -> (Vec<f64>, Vec<u64>) {
    let mut sums = vec![0.0f64; k * dims];
    let mut counts = vec![0u64; k];
    for point in points.chunks_exact(dims) {
        let mut best = 0usize;
        let mut best_d2 = f64::MAX;
        for c in 0..k {
            let mut d2 = 0.0;
            for d in 0..dims {
                let delta = point[d] - centroids[c * dims + d];
                d2 += delta * delta;
            }
            if d2 < best_d2 {
                best_d2 = d2;
                best = c;
            }
        }
        for d in 0..dims {
            sums[best * dims + d] += point[d];
        }
        counts[best] += 1;
    }
    (sums, counts)
}

/// Recomputes centroids from per-chunk partials, folding in chunk order.
pub fn recompute_centroids(
    partials: &[(Vec<f64>, Vec<u64>)],
    old: &[f64],
    k: usize,
    dims: usize,
) -> Vec<f64> {
    let mut sums = vec![0.0f64; k * dims];
    let mut counts = vec![0u64; k];
    for (psums, pcounts) in partials {
        for (acc, v) in sums.iter_mut().zip(psums) {
            *acc += v;
        }
        for (acc, v) in counts.iter_mut().zip(pcounts) {
            *acc += v;
        }
    }
    let mut out = vec![0.0f64; k * dims];
    for c in 0..k {
        for d in 0..dims {
            out[c * dims + d] = if counts[c] > 0 {
                sums[c * dims + d] / counts[c] as f64
            } else {
                old[c * dims + d]
            };
        }
    }
    out
}

fn assign_units(p: &Params) -> u64 {
    (p.points_per_chunk * p.k * p.dims) as u64
}

fn bamboo_charge(work: u64) -> u64 {
    work + work * LANG_OVERHEAD_PERMILLE / 1000
}

#[derive(Debug)]
struct MasterData {
    centroids: Vec<f64>,
    partials: Vec<(Vec<f64>, Vec<u64>)>,
    b_count: usize,
    r_count: usize,
    iter: usize,
}

#[derive(Debug)]
struct ChunkData {
    id: usize,
    points: Vec<f64>,
    centroids: Vec<f64>,
    partial: (Vec<f64>, Vec<u64>),
}

/// Builds the Bamboo program for `params`.
pub fn build(params: Params) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("kmeans");
    let s = b.class("StartupObject", &["initialstate"]);
    let master = b.class("Master", &["broadcasting", "collecting", "done"]);
    let chunk = b.class("Chunk", &["stale", "ready", "submitted"]);
    let init = b.flag(s, "initialstate");
    let broadcasting = b.flag(master, "broadcasting");
    let collecting = b.flag(master, "collecting");
    let mdone = b.flag(master, "done");
    let stale = b.flag(chunk, "stale");
    let ready = b.flag(chunk, "ready");
    let submitted = b.flag(chunk, "submitted");

    let p = params;
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(master, &[(broadcasting, true)], &[])
        .alloc(chunk, &[(stale, true)], &[])
        .exit("spawned", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            ctx.create(
                0,
                MasterData {
                    centroids: initial_centroids(&p),
                    partials: vec![(Vec::new(), Vec::new()); p.chunks],
                    b_count: 0,
                    r_count: 0,
                    iter: 0,
                },
            );
            for id in 0..p.chunks {
                ctx.create(
                    1,
                    ChunkData {
                        id,
                        points: chunk_points(&p, id),
                        centroids: Vec::new(),
                        partial: (Vec::new(), Vec::new()),
                    },
                );
            }
            ctx.charge(bamboo_charge(p.chunks as u64 * 60));
            0
        }))
        .finish();

    b.task("broadcast")
        .param("m", master, FlagExpr::flag(broadcasting))
        .param("c", chunk, FlagExpr::flag(stale))
        .exit("more", |e| e.set(1, stale, false).set(1, ready, true))
        .exit("last", |e| {
            e.set(1, stale, false)
                .set(1, ready, true)
                .set(0, broadcasting, false)
                .set(0, collecting, true)
        })
        .body(body(move |ctx| {
            let (m, c) = ctx.param_pair_mut::<MasterData, ChunkData>(0, 1);
            c.centroids = m.centroids.clone();
            m.b_count += 1;
            let last = m.b_count == p.chunks;
            if last {
                m.b_count = 0;
            }
            ctx.charge(bamboo_charge(
                (p.k * p.dims) as u64 * CYCLES_PER_BCAST_VALUE,
            ));
            if last {
                1
            } else {
                0
            }
        }))
        .finish();

    b.task("assign")
        .param("c", chunk, FlagExpr::flag(ready))
        .exit("assigned", |e| {
            e.set(0, ready, false).set(0, submitted, true)
        })
        .body(body(move |ctx| {
            let c = ctx.param_mut::<ChunkData>(0);
            c.partial = assign_chunk(&c.points, &c.centroids, p.k, p.dims);
            ctx.charge(bamboo_charge(assign_units(&p) * CYCLES_PER_DIST_UNIT));
            0
        }))
        .finish();

    b.task("reduce")
        .param("m", master, FlagExpr::flag(collecting))
        .param("c", chunk, FlagExpr::flag(submitted))
        .exit("more", |e| e.set(1, submitted, false).set(1, stale, true))
        .exit("nextIteration", |e| {
            e.set(1, submitted, false)
                .set(1, stale, true)
                .set(0, collecting, false)
                .set(0, broadcasting, true)
        })
        .exit("converged", |e| {
            e.set(1, submitted, false)
                .set(1, stale, true)
                .set(0, collecting, false)
                .set(0, mdone, true)
        })
        .body(body(move |ctx| {
            let (m, c) = ctx.param_pair_mut::<MasterData, ChunkData>(0, 1);
            m.partials[c.id] = (
                std::mem::take(&mut c.partial.0),
                std::mem::take(&mut c.partial.1),
            );
            m.r_count += 1;
            let mut charge = (p.k * (p.dims + 1)) as u64 * CYCLES_PER_REDUCE_VALUE;
            let mut exit = 0;
            if m.r_count == p.chunks {
                m.r_count = 0;
                m.centroids = recompute_centroids(&m.partials, &m.centroids, p.k, p.dims);
                m.iter += 1;
                charge += (p.k * p.dims * p.chunks) as u64 * CYCLES_PER_RECOMPUTE_VALUE;
                exit = if m.iter == p.iters { 2 } else { 1 };
            }
            ctx.charge(bamboo_charge(charge));
            exit
        }))
        .finish();

    Compiler::from_native(b.build().expect("kmeans program is well-formed"))
}

fn checksum_kmeans(centroids: &[f64], partials: &[(Vec<f64>, Vec<u64>)]) -> u64 {
    let mut sum = Checksum::new();
    sum.push_f64s(centroids);
    for (psums, pcounts) in partials {
        sum.push_f64s(psums);
        sum.push_u64s(pcounts);
    }
    sum.finish()
}

/// The KMeans benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct KMeans;

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "KMeans"
    }

    fn paper(&self) -> PaperNumbers {
        PaperNumbers {
            c_cycles_1e8: 1124.6,
            speedup_vs_bamboo: 38.9,
            speedup_vs_c: 35.1,
            overhead_pct: 10.6,
        }
    }

    fn compiler(&self, scale: Scale) -> Compiler {
        build(Params::for_scale(scale))
    }

    fn serial(&self, scale: Scale) -> SerialOutcome {
        let p = Params::for_scale(scale);
        let chunks: Vec<Vec<f64>> = (0..p.chunks).map(|id| chunk_points(&p, id)).collect();
        let mut centroids = initial_centroids(&p);
        let mut partials: Vec<(Vec<f64>, Vec<u64>)> = vec![(Vec::new(), Vec::new()); p.chunks];
        let mut cycles = p.chunks as u64 * 60;
        for _ in 0..p.iters {
            for (id, points) in chunks.iter().enumerate() {
                // broadcast + assign + reduce, as the Bamboo version does.
                cycles += (p.k * p.dims) as u64 * CYCLES_PER_BCAST_VALUE;
                partials[id] = assign_chunk(points, &centroids, p.k, p.dims);
                cycles += assign_units(&p) * CYCLES_PER_DIST_UNIT;
                cycles += (p.k * (p.dims + 1)) as u64 * CYCLES_PER_REDUCE_VALUE;
            }
            centroids = recompute_centroids(&partials, &centroids, p.k, p.dims);
            cycles += (p.k * p.dims * p.chunks) as u64 * CYCLES_PER_RECOMPUTE_VALUE;
        }
        SerialOutcome {
            cycles,
            checksum: checksum_kmeans(&centroids, &partials),
        }
    }

    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64 {
        let master = compiler
            .program
            .spec
            .class_by_name("Master")
            .expect("class exists");
        let objs = exec.store.live_of_class(master);
        assert_eq!(objs.len(), 1);
        let m = exec.payload::<MasterData>(objs[0]);
        checksum_kmeans(&m.centroids, &m.partials)
    }

    fn threaded_checksum(&self, compiler: &Compiler, report: &bamboo::ThreadedReport) -> u64 {
        let master = compiler
            .program
            .spec
            .class_by_name("Master")
            .expect("class exists");
        let objs = report.payloads_of::<MasterData>(master);
        assert_eq!(objs.len(), 1);
        checksum_kmeans(&objs[0].centroids, &objs[0].partials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_counts_cover_all_points() {
        let p = Params::for_scale(Scale::Small);
        let points = chunk_points(&p, 0);
        let centroids = initial_centroids(&p);
        let (_, counts) = assign_chunk(&points, &centroids, p.k, p.dims);
        assert_eq!(counts.iter().sum::<u64>() as usize, p.points_per_chunk);
    }

    #[test]
    fn centroids_move_toward_true_centers() {
        let p = Params {
            chunks: 4,
            points_per_chunk: 200,
            k: 4,
            dims: 2,
            iters: 12,
        };
        let chunks: Vec<Vec<f64>> = (0..p.chunks).map(|id| chunk_points(&p, id)).collect();
        let mut centroids = initial_centroids(&p);
        for _ in 0..p.iters {
            let partials: Vec<(Vec<f64>, Vec<u64>)> = chunks
                .iter()
                .map(|points| assign_chunk(points, &centroids, p.k, p.dims))
                .collect();
            centroids = recompute_centroids(&partials, &centroids, p.k, p.dims);
        }
        // Mean distance from each centroid to its closest true center is
        // small after convergence.
        let mut total = 0.0;
        for c in 0..p.k {
            let mut best = f64::MAX;
            for t in 0..p.k {
                let mut d2 = 0.0;
                for d in 0..p.dims {
                    let delta = centroids[c * p.dims + d] - true_center(t, d);
                    d2 += delta * delta;
                }
                best = best.min(d2.sqrt());
            }
            total += best;
        }
        let mean_dist = total / p.k as f64;
        assert!(mean_dist < 1.5, "mean distance {mean_dist}");
    }

    #[test]
    fn serial_and_parallel_agree_bit_exactly() {
        let bench = KMeans;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "test", |exec| {
                bench.parallel_checksum(&compiler, exec)
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(digest, serial.checksum);
        // 1 startup + iters * chunks * (broadcast + assign + reduce).
        let p = Params::for_scale(Scale::Small);
        assert_eq!(report.invocations as usize, 1 + p.iters * p.chunks * 3);
    }

    #[test]
    fn double_scale_roughly_doubles_work() {
        let bench = KMeans;
        let original = bench.serial(Scale::Original);
        let double = bench.serial(Scale::Double);
        let ratio = double.cycles as f64 / original.cycles as f64;
        assert!((1.8..=2.1).contains(&ratio), "ratio {ratio}");
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    #[test]
    fn empty_cluster_keeps_old_centroid() {
        // One partial that assigns everything to cluster 0.
        let partials = vec![(vec![10.0, 20.0, 0.0, 0.0], vec![2, 0])];
        let old = vec![1.0, 1.0, 7.0, 8.0];
        let new = recompute_centroids(&partials, &old, 2, 2);
        assert_eq!(&new[0..2], &[5.0, 10.0]);
        // Cluster 1 saw no points: keeps its previous centroid.
        assert_eq!(&new[2..4], &[7.0, 8.0]);
    }

    #[test]
    fn partial_sums_match_point_totals() {
        let p = Params::for_scale(Scale::Small);
        let points = chunk_points(&p, 1);
        let centroids = initial_centroids(&p);
        let (sums, counts) = assign_chunk(&points, &centroids, p.k, p.dims);
        // Summing partial sums over clusters reproduces the coordinate
        // totals of all points.
        for d in 0..p.dims {
            let total: f64 = points.chunks_exact(p.dims).map(|pt| pt[d]).sum();
            let partial: f64 = (0..p.k).map(|c| sums[c * p.dims + d]).sum();
            assert!((total - partial).abs() < 1e-9);
        }
        assert_eq!(counts.iter().sum::<u64>() as usize, p.points_per_chunk);
    }
}
