//! FilterBank: multi-channel, multirate signal processing (ported in
//! spirit from the StreamIt suite, paper §5.1).
//!
//! Every channel band-filters the shared input signal with its own FIR,
//! down-samples by 2, up-samples by 2, applies a reconstruction FIR, and
//! the `combine` task sums the per-channel outputs into the result. Each
//! channel writes an index-addressed slot (per-channel energy plus an
//! output digest), making the combined result bit-exact under any merge
//! order; the final elementwise sum is folded in channel order at the
//! last merge.

use crate::util::{Checksum, Lcg};
use crate::{Benchmark, PaperNumbers, Scale, SerialOutcome};
use bamboo::{body, Compiler, FlagExpr, NativeBody, ProgramBuilder, VirtualExecutor};

/// Cycles charged per multiply-accumulate in the FIR convolutions
/// (calibrated against the paper's 5.55e10-cycle serial run).
const CYCLES_PER_MAC: u64 = 1_700;
/// Cycles charged per output sample combined.
const CYCLES_PER_COMBINE_SAMPLE: u64 = 2_400;
/// Modeled generated-code overhead (paper §5.5: 0.1% — streaming code
/// compiles essentially as well as hand C).
const LANG_OVERHEAD_PERMILLE: u64 = 1;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of filter channels.
    pub channels: usize,
    /// Input signal length.
    pub len: usize,
    /// FIR tap count.
    pub taps: usize,
}

impl Params {
    /// Parameters for a scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Small => Params {
                channels: 6,
                len: 256,
                taps: 16,
            },
            Scale::Original => Params {
                channels: 62,
                len: 4096,
                taps: 64,
            },
            Scale::Double => Params {
                channels: 124,
                len: 4096,
                taps: 64,
            },
        }
    }
}

/// The shared input signal (deterministic pseudo-noise plus two tones).
pub fn input_signal(len: usize) -> Vec<f64> {
    let mut rng = Lcg::new(0xF117E2);
    (0..len)
        .map(|i| {
            let t = i as f64;
            (0.05 * t).sin() + 0.5 * (0.21 * t).sin() + 0.25 * (rng.next_f64() - 0.5)
        })
        .collect()
}

/// The FIR taps of `channel`'s analysis filter: a windowed cosine bank.
pub fn channel_taps(channel: usize, taps: usize) -> Vec<f64> {
    let omega = std::f64::consts::PI * (channel as f64 + 0.5) / 64.0;
    (0..taps)
        .map(|k| {
            let window = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * k as f64 / taps as f64).cos();
            window * (omega * k as f64).cos() / taps as f64
        })
        .collect()
}

/// Convolves `signal` with `taps` (same-length output, zero-padded past
/// the start).
pub fn fir(signal: &[f64], taps: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; signal.len()];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, tap) in taps.iter().enumerate() {
            if i >= k {
                acc += tap * signal[i - k];
            }
        }
        *slot = acc;
    }
    out
}

/// Processes one channel end-to-end: analysis FIR, ↓2, ↑2,
/// reconstruction FIR. Returns the channel output (input length).
pub fn process_channel(input: &[f64], channel: usize, taps: usize) -> Vec<f64> {
    let analysis = channel_taps(channel, taps);
    let filtered = fir(input, &analysis);
    // Down-sample by 2.
    let down: Vec<f64> = filtered.iter().step_by(2).copied().collect();
    // Up-sample by 2 (zero-stuffing).
    let mut up = vec![0.0; input.len()];
    for (i, v) in down.iter().enumerate() {
        up[i * 2] = *v;
    }
    // Reconstruction FIR (time-reversed taps).
    let synthesis: Vec<f64> = analysis.iter().rev().copied().collect();
    fir(&up, &synthesis)
}

/// Work units (MACs) for one channel.
fn channel_macs(p: &Params) -> u64 {
    // Two full-length FIRs of `taps` taps each.
    2 * (p.len as u64) * (p.taps as u64)
}

fn bamboo_charge(work: u64) -> u64 {
    work + work * LANG_OVERHEAD_PERMILLE / 1000
}

#[derive(Debug)]
struct ChannelData {
    id: usize,
    output: Vec<f64>,
}

#[derive(Debug)]
struct CombineData {
    /// Per-channel output digests (index-addressed).
    digests: Vec<u64>,
    /// Per-channel outputs parked until the final fold.
    outputs: Vec<Vec<f64>>,
    /// The combined signal, folded in channel order at the end.
    combined: Vec<f64>,
    merged: usize,
    expected: usize,
}

/// Builds the Bamboo program for `params`.
pub fn build(params: Params) -> Compiler {
    let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("filterbank");
    let s = b.class("StartupObject", &["initialstate"]);
    let chan = b.class("Channel", &["ready", "done"]);
    let comb = b.class("Combiner", &["collecting", "finished"]);
    let init = b.flag(s, "initialstate");
    let ready = b.flag(chan, "ready");
    let done = b.flag(chan, "done");
    let collecting = b.flag(comb, "collecting");
    let finished = b.flag(comb, "finished");

    let p = params;
    b.task("startup")
        .param("s", s, FlagExpr::flag(init))
        .alloc(chan, &[(ready, true)], &[])
        .alloc(comb, &[(collecting, true)], &[])
        .exit("spawned", |e| e.set(0, init, false))
        .body(body(move |ctx| {
            for id in 0..p.channels {
                ctx.create(
                    0,
                    ChannelData {
                        id,
                        output: Vec::new(),
                    },
                );
            }
            ctx.create(
                1,
                CombineData {
                    digests: vec![0; p.channels],
                    outputs: vec![Vec::new(); p.channels],
                    combined: Vec::new(),
                    merged: 0,
                    expected: p.channels,
                },
            );
            ctx.charge(bamboo_charge(p.channels as u64 * 40));
            0
        }))
        .finish();

    b.task("processChannel")
        .param("c", chan, FlagExpr::flag(ready))
        .exit("processed", |e| e.set(0, ready, false).set(0, done, true))
        .body(body(move |ctx| {
            let c = ctx.param_mut::<ChannelData>(0);
            let input = input_signal(p.len);
            c.output = process_channel(&input, c.id, p.taps);
            ctx.charge(bamboo_charge(channel_macs(&p) * CYCLES_PER_MAC));
            0
        }))
        .finish();

    b.task("combine")
        .param("r", comb, FlagExpr::flag(collecting))
        .param("c", chan, FlagExpr::flag(done))
        .exit("more", |e| e.set(1, done, false))
        .exit("finished", |e| {
            e.set(0, collecting, false)
                .set(0, finished, true)
                .set(1, done, false)
        })
        .body(body(move |ctx| {
            let (r, c) = ctx.param_pair_mut::<CombineData, ChannelData>(0, 1);
            let mut digest = Checksum::new();
            digest.push_f64s(&c.output);
            r.digests[c.id] = digest.finish();
            r.outputs[c.id] = std::mem::take(&mut c.output);
            r.merged += 1;
            let done_all = r.merged == r.expected;
            if done_all {
                // Fold the elementwise sum in channel order: bit-exact.
                let mut combined = vec![0.0f64; p.len];
                for output in &r.outputs {
                    for (acc, v) in combined.iter_mut().zip(output) {
                        *acc += v;
                    }
                }
                r.combined = combined;
            }
            ctx.charge(bamboo_charge(p.len as u64 * CYCLES_PER_COMBINE_SAMPLE));
            if done_all {
                1
            } else {
                0
            }
        }))
        .finish();

    Compiler::from_native(b.build().expect("filterbank program is well-formed"))
}

fn checksum_combined(digests: &[u64], combined: &[f64]) -> u64 {
    let mut sum = Checksum::new();
    sum.push_u64s(digests);
    sum.push_f64s(combined);
    sum.finish()
}

/// The FilterBank benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct FilterBank;

impl Benchmark for FilterBank {
    fn name(&self) -> &'static str {
        "FilterBank"
    }

    fn paper(&self) -> PaperNumbers {
        PaperNumbers {
            c_cycles_1e8: 554.6,
            speedup_vs_bamboo: 37.5,
            speedup_vs_c: 37.5,
            overhead_pct: 0.1,
        }
    }

    fn compiler(&self, scale: Scale) -> Compiler {
        build(Params::for_scale(scale))
    }

    fn serial(&self, scale: Scale) -> SerialOutcome {
        let p = Params::for_scale(scale);
        let input = input_signal(p.len);
        let mut digests = vec![0u64; p.channels];
        let mut outputs = vec![Vec::new(); p.channels];
        let mut cycles = p.channels as u64 * 40;
        for ch in 0..p.channels {
            let output = process_channel(&input, ch, p.taps);
            let mut digest = Checksum::new();
            digest.push_f64s(&output);
            digests[ch] = digest.finish();
            outputs[ch] = output;
            cycles += channel_macs(&p) * CYCLES_PER_MAC;
            cycles += p.len as u64 * CYCLES_PER_COMBINE_SAMPLE;
        }
        let mut combined = vec![0.0f64; p.len];
        for output in &outputs {
            for (acc, v) in combined.iter_mut().zip(output) {
                *acc += v;
            }
        }
        SerialOutcome {
            cycles,
            checksum: checksum_combined(&digests, &combined),
        }
    }

    fn parallel_checksum(&self, compiler: &Compiler, exec: &VirtualExecutor<'_>) -> u64 {
        let comb = compiler
            .program
            .spec
            .class_by_name("Combiner")
            .expect("class exists");
        let objs = exec.store.live_of_class(comb);
        assert_eq!(objs.len(), 1);
        let r = exec.payload::<CombineData>(objs[0]);
        checksum_combined(&r.digests, &r.combined)
    }

    fn threaded_checksum(&self, compiler: &Compiler, report: &bamboo::ThreadedReport) -> u64 {
        let comb = compiler
            .program
            .spec
            .class_by_name("Combiner")
            .expect("class exists");
        let objs = report.payloads_of::<CombineData>(comb);
        assert_eq!(objs.len(), 1);
        checksum_combined(&objs[0].digests, &objs[0].combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_identity_filter_passes_signal() {
        let mut taps = vec![0.0; 8];
        taps[0] = 1.0;
        let signal = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(fir(&signal, &taps), signal);
    }

    #[test]
    fn channels_produce_distinct_outputs() {
        let input = input_signal(128);
        let a = process_channel(&input, 0, 16);
        let b = process_channel(&input, 5, 16);
        assert_ne!(a, b);
        assert_eq!(a.len(), input.len());
    }

    #[test]
    fn serial_and_parallel_agree_bit_exactly() {
        let bench = FilterBank;
        let serial = bench.serial(Scale::Small);
        let compiler = bench.compiler(Scale::Small);
        let (_, report, digest) = compiler
            .profile_run(None, "test", |exec| {
                bench.parallel_checksum(&compiler, exec)
            })
            .unwrap();
        assert!(report.quiesced);
        assert_eq!(digest, serial.checksum);
    }

    #[test]
    fn double_scale_doubles_channels() {
        let bench = FilterBank;
        let original = bench.serial(Scale::Original);
        let double = bench.serial(Scale::Double);
        let ratio = double.cycles as f64 / original.cycles as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    #[test]
    fn taps_are_bounded_and_windowed() {
        for ch in [0usize, 10, 61] {
            let taps = channel_taps(ch, 64);
            assert_eq!(taps.len(), 64);
            // Hamming-windowed cosine bank: every tap bounded by 1/taps.
            assert!(taps.iter().all(|t| t.abs() <= 1.0 / 64.0 + 1e-12));
        }
    }

    #[test]
    fn downsample_upsample_zero_stuffs() {
        let input: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let out = process_channel(&input, 0, 4);
        assert_eq!(out.len(), input.len());
        // The zero-stuffed odd samples only receive energy through the
        // reconstruction FIR; the output is not identically zero.
        assert!(out.iter().any(|v| v.abs() > 1e-9));
    }

    #[test]
    fn input_signal_is_deterministic() {
        assert_eq!(input_signal(128), input_signal(128));
        assert_eq!(input_signal(128).len(), 128);
    }
}
