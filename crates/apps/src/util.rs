//! Shared utilities for the benchmark suite: deterministic RNG and
//! bit-exact checksums.

/// A small deterministic linear congruential generator (same stream on
/// every platform; used for synthetic inputs and Monte Carlo paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // Numerical Recipes LCG constants + xorshift mix.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        x
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Approximately standard-normal value (sum of 4 uniforms, centered —
    /// cheap, deterministic, fine for synthetic workloads).
    pub fn next_gaussian(&mut self) -> f64 {
        let s = self.next_f64() + self.next_f64() + self.next_f64() + self.next_f64();
        (s - 2.0) * (12.0f64 / 4.0).sqrt()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Accumulates a bit-exact FNV-1a checksum over numeric results, so serial
/// and parallel runs can be compared for *exact* equality (merges write
/// into index-addressed slots; folding order is fixed at checksum time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checksum {
    state: u64,
}

impl Checksum {
    /// Creates a fresh checksum.
    pub fn new() -> Self {
        Checksum {
            state: 0xcbf29ce484222325,
        }
    }

    /// Folds one 64-bit word.
    pub fn push_u64(&mut self, value: u64) {
        let mut h = self.state;
        for byte in value.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.state = h;
    }

    /// Folds a float's bit pattern.
    pub fn push_f64(&mut self, value: f64) {
        self.push_u64(value.to_bits());
    }

    /// Folds a float slice in order.
    pub fn push_f64s(&mut self, values: &[f64]) {
        for v in values {
            self.push_f64(*v);
        }
    }

    /// Folds an integer slice in order.
    pub fn push_u64s(&mut self, values: &[u64]) {
        for v in values {
            self.push_u64(*v);
        }
    }

    /// Returns the digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn lcg_floats_in_unit_interval() {
        let mut rng = Lcg::new(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = Lcg::new(11);
        let n = 20_000;
        let values: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let mut a = Checksum::new();
        a.push_f64s(&[1.0, 2.0]);
        let mut b = Checksum::new();
        b.push_f64s(&[2.0, 1.0]);
        assert_ne!(a.finish(), b.finish());
        let mut c = Checksum::new();
        c.push_f64s(&[1.0, 2.0]);
        assert_eq!(a.finish(), c.finish());
    }
}
