//! Deterministic fault injection for the threaded executor.
//!
//! A [`FaultSpec`] describes the faults a run should suffer — core
//! kills, core stalls, message drops/delays, lock slowdown — as *rates
//! and trigger points*, not as a wall-clock script. At run start the
//! executor compiles the spec against the deployment's steal topology
//! into a [`FaultPlan`]; every per-message and per-invocation decision
//! is a pure hash of `(seed, id)`, so the *fault schedule* (which
//! message ids drop, which invocation ids slow down, which core dies
//! after how many dispatches) is byte-identical across runs of the same
//! seed and layout even though the OS interleaves threads differently
//! each time.
//!
//! The determinism contract (DESIGN.md §14): identical `(seed, layout)`
//! ⇒ identical [`FaultPlan::schedule`] rendering, and — because message
//! ids always form the dense set `1..=M` with `M` fixed by the program —
//! an identical multiset of drop/delay decisions. *When* each decision
//! bites still depends on thread timing; recovery must therefore be
//! correct under every interleaving, which is exactly what the chaos
//! tests exercise.

use std::time::Duration;

/// Which core a [`CoreKill`] takes down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillTarget {
    /// A specific core of the layout.
    Core(usize),
    /// A core chosen at plan compile time (seeded, deterministic) among
    /// cores whose hosted groups *all* have a second host — killing it
    /// can never strand work, so the run must still produce the
    /// fault-free result. When no such core exists the kill is skipped
    /// (recorded in the schedule).
    Expendable,
}

/// Kill one core after it has completed a number of dispatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreKill {
    /// The victim.
    pub target: KillTarget,
    /// Dispatches the victim completes before dying (0 = before its
    /// first dispatch).
    pub after_dispatches: u64,
}

/// Stall one core for a duration at a precise dispatch count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreStall {
    /// The stalled core.
    pub core: usize,
    /// The dispatch count at which the stall fires.
    pub at_dispatch: u64,
    /// How long the core sleeps.
    pub duration: Duration,
}

/// Whether the executor may recover from core kills.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Dead-core failover: the victim's run queue is drained by
    /// same-group peers through the steal path, its parameter-set
    /// objects are re-sent to live hosts, and the router re-stripes
    /// around the dead core. Requires same-group stealing.
    #[default]
    Enabled,
    /// A kill fails the run with `ExecError::CoreLost` (typed, never a
    /// hang).
    Disabled,
}

/// User-facing fault description, carried by
/// [`crate::RunOptions::faults`].
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Seed of every per-id fault decision.
    pub seed: u64,
    /// Core kills.
    pub kills: Vec<CoreKill>,
    /// Core stalls.
    pub stalls: Vec<CoreStall>,
    /// Per-mille of worker-sent messages whose first transmission is
    /// dropped (the driver's startup send is exempt).
    pub drop_permille: u16,
    /// Per-mille of worker-sent messages delivered late.
    pub delay_permille: u16,
    /// How late a delayed message arrives.
    pub delay: Duration,
    /// Per-mille of invocations whose lock acquisition is slowed.
    pub lock_slowdown_permille: u16,
    /// How long a slowed lock acquisition takes.
    pub lock_slowdown: Duration,
    /// Kill recovery policy.
    pub recovery: RecoveryPolicy,
    /// Redelivery attempts before a dropped message is declared lost
    /// (`ExecError::MessageLost`).
    pub max_redeliveries: u32,
    /// Cumulative redelivery backoff budget per message; exceeding it
    /// also declares the message lost.
    pub message_deadline: Duration,
    /// First redelivery backoff; doubles per consecutive drop.
    pub backoff_base: Duration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            kills: Vec::new(),
            stalls: Vec::new(),
            drop_permille: 0,
            delay_permille: 0,
            delay: Duration::from_micros(50),
            lock_slowdown_permille: 0,
            lock_slowdown: Duration::from_micros(20),
            recovery: RecoveryPolicy::Enabled,
            max_redeliveries: 8,
            message_deadline: Duration::from_secs(1),
            backoff_base: Duration::from_micros(20),
        }
    }
}

impl FaultSpec {
    /// An empty plan (no faults) with the given seed — the base for the
    /// builder methods.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// The default chaos plan the CI matrix runs: one expendable-core
    /// kill after two dispatches plus a 2% message drop rate and a 5%
    /// 50µs delivery delay.
    pub fn default_plan(seed: u64) -> Self {
        FaultSpec::seeded(seed)
            .with_kill(KillTarget::Expendable, 2)
            .with_drops(20)
            .with_delays(50, Duration::from_micros(50))
    }

    /// Adds a core kill.
    #[must_use]
    pub fn with_kill(mut self, target: KillTarget, after_dispatches: u64) -> Self {
        self.kills.push(CoreKill {
            target,
            after_dispatches,
        });
        self
    }

    /// Adds a core stall.
    #[must_use]
    pub fn with_stall(mut self, core: usize, at_dispatch: u64, duration: Duration) -> Self {
        self.stalls.push(CoreStall {
            core,
            at_dispatch,
            duration,
        });
        self
    }

    /// Sets the message drop rate (per mille, clamped to ≤ 1000).
    #[must_use]
    pub fn with_drops(mut self, permille: u16) -> Self {
        self.drop_permille = permille.min(1000);
        self
    }

    /// Sets the message delay rate and duration.
    #[must_use]
    pub fn with_delays(mut self, permille: u16, delay: Duration) -> Self {
        self.delay_permille = permille.min(1000);
        self.delay = delay;
        self
    }

    /// Sets the lock-slowdown rate and duration.
    #[must_use]
    pub fn with_lock_slowdown(mut self, permille: u16, slowdown: Duration) -> Self {
        self.lock_slowdown_permille = permille.min(1000);
        self.lock_slowdown = slowdown;
        self
    }

    /// Sets the kill recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the redelivery bound.
    #[must_use]
    pub fn with_max_redeliveries(mut self, max: u32) -> Self {
        self.max_redeliveries = max;
        self
    }

    /// Sets the per-message redelivery deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.message_deadline = deadline;
        self
    }
}

/// splitmix64: a full-avalanche mix of `(seed, salt, id)` — the sole
/// source of randomness in fault decisions, so they replay exactly.
fn mix(seed: u64, salt: u64, id: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(id);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const DROP_SALT: u64 = 0x01;
const DELAY_SALT: u64 = 0x02;
const LOCK_SALT: u64 = 0x03;
const TARGET_SALT: u64 = 0x04;

/// A [`FaultSpec`] compiled against one deployment's steal topology:
/// kill targets resolved to concrete cores, per-id decisions reduced to
/// pure hash probes, and the whole schedule rendered once for the
/// determinism gate.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-core dispatch count at which the core dies (`None` = never).
    kill_after: Vec<Option<u64>>,
    /// Per-core `(at_dispatch, duration)` stalls.
    stalls: Vec<Vec<(u64, Duration)>>,
    schedule: String,
}

impl FaultPlan {
    /// Compiles `spec` for a deployment with `core_count` cores.
    /// `group_cores[g]` lists the cores hosting group `g`; `hosted
    /// [core][g]` says whether `core` hosts `g` (the same topology the
    /// steal path uses). Both drive [`KillTarget::Expendable`]
    /// resolution, which is deterministic in `(seed, topology)`.
    pub fn compile(spec: &FaultSpec, group_cores: &[Vec<usize>], hosted: &[Vec<bool>]) -> Self {
        let core_count = hosted.len();
        let mut kill_after: Vec<Option<u64>> = vec![None; core_count];
        let mut lines: Vec<String> = vec![format!("chaos schedule (seed {})", spec.seed)];
        let expendable: Vec<usize> = (0..core_count)
            .filter(|&c| {
                let groups: Vec<usize> = (0..group_cores.len()).filter(|&g| hosted[c][g]).collect();
                !groups.is_empty() && groups.iter().all(|&g| group_cores[g].len() >= 2)
            })
            .collect();
        for (i, kill) in spec.kills.iter().enumerate() {
            let resolved = match kill.target {
                KillTarget::Core(c) if c < core_count => Some(c),
                KillTarget::Core(_) => None,
                KillTarget::Expendable if !expendable.is_empty() => {
                    let pick = mix(spec.seed, TARGET_SALT, i as u64) as usize;
                    Some(expendable[pick % expendable.len()])
                }
                KillTarget::Expendable => None,
            };
            match resolved {
                Some(core) => {
                    let after = match kill_after[core] {
                        Some(prev) => prev.min(kill.after_dispatches),
                        None => kill.after_dispatches,
                    };
                    kill_after[core] = Some(after);
                    lines.push(format!(
                        "kill core {core} after {} dispatches",
                        kill.after_dispatches
                    ));
                }
                None => lines.push(format!("kill {:?} skipped (unresolvable)", kill.target)),
            }
        }
        let mut stalls: Vec<Vec<(u64, Duration)>> = vec![Vec::new(); core_count];
        for stall in &spec.stalls {
            if stall.core < core_count {
                stalls[stall.core].push((stall.at_dispatch, stall.duration));
                lines.push(format!(
                    "stall core {} at dispatch {} for {:?}",
                    stall.core, stall.at_dispatch, stall.duration
                ));
            } else {
                lines.push(format!("stall core {} skipped (out of range)", stall.core));
            }
        }
        for per_core in &mut stalls {
            per_core.sort_unstable();
        }
        lines.push(format!(
            "drop {}/1000 messages (max {} redeliveries, deadline {:?}, backoff {:?})",
            spec.drop_permille, spec.max_redeliveries, spec.message_deadline, spec.backoff_base
        ));
        lines.push(format!(
            "delay {}/1000 messages by {:?}",
            spec.delay_permille, spec.delay
        ));
        lines.push(format!(
            "lock-slowdown {}/1000 invocations by {:?}",
            spec.lock_slowdown_permille, spec.lock_slowdown
        ));
        lines.push(format!("recovery {:?}", spec.recovery));
        FaultPlan {
            spec: spec.clone(),
            kill_after,
            stalls,
            schedule: lines.join("\n"),
        }
    }

    /// The dispatch count at which `core` dies, if it is a kill victim.
    pub fn kill_after(&self, core: usize) -> Option<u64> {
        self.kill_after.get(core).copied().flatten()
    }

    /// The stall duration scheduled for `core` at exactly
    /// `dispatch_count` completed dispatches.
    pub fn stall_at(&self, core: usize, dispatch_count: u64) -> Option<Duration> {
        self.stalls
            .get(core)?
            .iter()
            .find(|(at, _)| *at == dispatch_count)
            .map(|(_, d)| *d)
    }

    /// How many consecutive transmissions of message `msg` are dropped
    /// (0 = delivered first try). Bounded by `max_redeliveries`, so a
    /// saturated result means the message is permanently lost.
    pub fn drop_attempts(&self, msg: u64) -> u32 {
        if self.spec.drop_permille == 0 {
            return 0;
        }
        let mut n = 0;
        while n < self.spec.max_redeliveries {
            if mix(self.spec.seed, DROP_SALT + u64::from(n), msg) % 1000
                >= u64::from(self.spec.drop_permille)
            {
                break;
            }
            n += 1;
        }
        n
    }

    /// The delivery delay injected on message `msg`, if any.
    pub fn delay_of(&self, msg: u64) -> Option<Duration> {
        (self.spec.delay_permille > 0
            && mix(self.spec.seed, DELAY_SALT, msg) % 1000 < u64::from(self.spec.delay_permille))
        .then_some(self.spec.delay)
    }

    /// The lock-acquisition slowdown injected on invocation `inv`, if
    /// any.
    pub fn lock_slowdown_of(&self, inv: u64) -> Option<Duration> {
        (self.spec.lock_slowdown_permille > 0
            && mix(self.spec.seed, LOCK_SALT, inv) % 1000
                < u64::from(self.spec.lock_slowdown_permille))
        .then_some(self.spec.lock_slowdown)
    }

    /// Backoff before redelivery attempt `attempt` (0-based): the base
    /// doubled per consecutive drop.
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.spec
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
    }

    /// Redelivery bound per message.
    pub fn max_redeliveries(&self) -> u32 {
        self.spec.max_redeliveries
    }

    /// Cumulative backoff budget per message.
    pub fn message_deadline(&self) -> Duration {
        self.spec.message_deadline
    }

    /// Whether dead-core failover is on.
    pub fn recovery_enabled(&self) -> bool {
        self.spec.recovery == RecoveryPolicy::Enabled
    }

    /// The resolved fault schedule, rendered deterministically: a pure
    /// function of `(spec, topology)`. Two runs with the same seed and
    /// layout produce byte-identical schedules — the chaos gate's
    /// determinism check compares exactly this string.
    pub fn schedule(&self) -> &str {
        &self.schedule
    }

    /// FNV-1a digest of [`Self::schedule`].
    pub fn schedule_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.schedule.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 cores; group 0 on cores {0}, group 1 on {0,1,2,3}, group 2 on
    /// {3}: cores 1 and 2 host only the replicated group.
    fn topology() -> (Vec<Vec<usize>>, Vec<Vec<bool>>) {
        let group_cores = vec![vec![0], vec![0, 1, 2, 3], vec![3]];
        let hosted = vec![
            vec![true, true, false],
            vec![false, true, false],
            vec![false, true, false],
            vec![false, true, true],
        ];
        (group_cores, hosted)
    }

    #[test]
    fn expendable_kill_resolves_to_a_replicated_only_core() {
        let (group_cores, hosted) = topology();
        let spec = FaultSpec::seeded(7).with_kill(KillTarget::Expendable, 3);
        let plan = FaultPlan::compile(&spec, &group_cores, &hosted);
        let victims: Vec<usize> = (0..4).filter(|&c| plan.kill_after(c).is_some()).collect();
        assert_eq!(victims.len(), 1);
        assert!(
            victims[0] == 1 || victims[0] == 2,
            "core {} is not expendable",
            victims[0]
        );
        assert_eq!(plan.kill_after(victims[0]), Some(3));
    }

    #[test]
    fn expendable_kill_is_skipped_when_no_core_qualifies() {
        // Single host per group: killing anything strands work.
        let group_cores = vec![vec![0], vec![1]];
        let hosted = vec![vec![true, false], vec![false, true]];
        let spec = FaultSpec::seeded(1).with_kill(KillTarget::Expendable, 0);
        let plan = FaultPlan::compile(&spec, &group_cores, &hosted);
        assert!((0..2).all(|c| plan.kill_after(c).is_none()));
        assert!(plan.schedule().contains("skipped"), "{}", plan.schedule());
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let (group_cores, hosted) = topology();
        let spec = FaultSpec::default_plan(42);
        let a = FaultPlan::compile(&spec, &group_cores, &hosted);
        let b = FaultPlan::compile(&spec, &group_cores, &hosted);
        assert_eq!(a.schedule(), b.schedule());
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        // Decisions replay exactly too.
        for msg in 1..=500 {
            assert_eq!(a.drop_attempts(msg), b.drop_attempts(msg));
            assert_eq!(a.delay_of(msg), b.delay_of(msg));
        }
        // A different seed draws a different decision multiset.
        let other = FaultPlan::compile(&FaultSpec::default_plan(43), &group_cores, &hosted);
        assert!((1..=500).any(|m| a.drop_attempts(m) != other.drop_attempts(m)));
    }

    #[test]
    fn drop_rate_tracks_the_permille() {
        let (group_cores, hosted) = topology();
        let spec = FaultSpec::seeded(9).with_drops(100); // 10%
        let plan = FaultPlan::compile(&spec, &group_cores, &hosted);
        let dropped = (1..=10_000).filter(|&m| plan.drop_attempts(m) > 0).count();
        assert!(
            (800..1200).contains(&dropped),
            "10% of 10k ±20%, got {dropped}"
        );
        // Rate 0 never drops; the backoff ladder doubles.
        let quiet = FaultPlan::compile(&FaultSpec::seeded(9), &group_cores, &hosted);
        assert!((1..=1000).all(|m| quiet.drop_attempts(m) == 0));
        assert_eq!(plan.backoff(1), plan.backoff(0) * 2);
    }

    #[test]
    fn stalls_and_lock_slowdowns_schedule_precisely() {
        let (group_cores, hosted) = topology();
        let spec = FaultSpec::seeded(3)
            .with_stall(2, 5, Duration::from_micros(200))
            .with_lock_slowdown(1000, Duration::from_micros(30));
        let plan = FaultPlan::compile(&spec, &group_cores, &hosted);
        assert_eq!(plan.stall_at(2, 5), Some(Duration::from_micros(200)));
        assert_eq!(plan.stall_at(2, 4), None);
        assert_eq!(plan.stall_at(1, 5), None);
        // 1000‰ slows every invocation.
        assert!((1..=50).all(|i| plan.lock_slowdown_of(i).is_some()));
    }
}
