#![warn(missing_docs)]

//! # bamboo-runtime
//!
//! The Bamboo many-core runtime (Zhou & Demsky, PLDI 2010, §4.7):
//! distributed per-core schedulers with parameter sets and task-invocation
//! queues, transactional task dispatch (lock all parameter objects or try
//! another invocation — no aborts), static routing tables from the
//! synthesized layout, and shared-lock merging per the disjointness
//! analysis.
//!
//! Executors (see DESIGN.md §2 for why virtual time stands in for the
//! TILEPro64):
//!
//! - [`VirtualExecutor`] — executes real task bodies on N virtual cores
//!   under a deterministic cycle cost model; single host thread. With a
//!   single-core layout this is the sequential profiling/1-core-Bamboo
//!   executor.
//! - [`ThreadedExecutor`] — real OS threads, one per core, with real
//!   try-locks and channel-based object transfer; demonstrates the
//!   concurrent semantics (native programs only).

pub mod adapt;
pub mod chaos;
pub mod cost;
pub mod deploy;
pub mod ledger;
pub mod program;
pub mod router;
pub mod store;
pub mod threaded;
pub mod virtual_exec;

pub use adapt::{AdaptPolicy, AdaptReport, AdaptiveController, RelayoutError};
pub use chaos::{CoreKill, CoreStall, FaultPlan, FaultSpec, KillTarget, RecoveryPolicy};
pub use cost::CostModel;
pub use deploy::{Deployment, QuiescencePolicy, RouterPolicy, RunOptions, StealPolicy};
pub use ledger::{Completion, RequestLedger};
pub use program::{body, NativeBody, NativePayload, Program, TaskCtx};
pub use router::ShardedRouter;
// The layout is part of the runtime's public surface (deployments carry
// one; `RelayoutHandle::current_layout` returns the live view), so
// dependents that don't otherwise touch the scheduler can name it.
pub use bamboo_schedule::Layout;
pub use store::{ObjId, ObjectStore, PayloadSlot, RtObject};
pub use threaded::{
    PayloadTypeError, RelayoutHandle, ResidentRun, ThreadedExecutor, ThreadedReport,
};
pub use virtual_exec::{ExecConfig, ExecError, RunReport, VirtualExecutor};
