//! Runtime cost model.
//!
//! The paper measures hardware clock cycles; this reproduction charges
//! explicit, deterministic cycle costs instead (see DESIGN.md §2). Task
//! bodies charge their own compute cycles via
//! [`crate::program::TaskCtx::charge`]; the runtime adds the dispatch
//! machinery costs below. The single-core *C baseline* of each benchmark
//! charges only body cycles, so the Bamboo-vs-C overhead column of the
//! paper's Figure 7 falls out of these constants times the number of
//! dispatch events.

use bamboo_profile::Cycles;

/// Per-event dispatch costs, in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Popping an invocation off the ready queue and setting up the call.
    pub dispatch: Cycles,
    /// Acquiring/releasing one parameter object's lock.
    pub lock_per_param: Cycles,
    /// Enqueueing one object into parameter sets after delivery.
    pub enqueue: Cycles,
    /// Registering a freshly allocated dispatch object.
    pub alloc: Cycles,
}

impl CostModel {
    /// The default model used throughout the evaluation.
    pub const DEFAULT: CostModel = CostModel {
        dispatch: 30,
        lock_per_param: 6,
        enqueue: 8,
        alloc: 12,
    };

    /// A zero-overhead model (for isolating body costs in tests).
    pub const FREE: CostModel = CostModel {
        dispatch: 0,
        lock_per_param: 0,
        enqueue: 0,
        alloc: 0,
    };

    /// Total runtime-side cycles for one invocation with `n_params`
    /// parameters.
    pub fn invocation_overhead(&self, n_params: usize) -> Cycles {
        self.dispatch + self.lock_per_param * n_params as Cycles
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_overhead_scales_with_params() {
        let m = CostModel::DEFAULT;
        assert_eq!(m.invocation_overhead(0), m.dispatch);
        assert_eq!(m.invocation_overhead(2), m.dispatch + 2 * m.lock_per_param);
    }

    #[test]
    fn free_model_is_zero() {
        assert_eq!(CostModel::FREE.invocation_overhead(3), 0);
    }
}
