//! The virtual-time executor.
//!
//! Executes a Bamboo program *for real* — task bodies run, data
//! structures mutate, results are produced — on N virtual cores whose
//! clocks advance according to the cost model and the machine's network
//! model. A single host thread drives a discrete-event loop identical in
//! structure to the scheduling simulator's, so the two are directly
//! comparable (the paper's Figure 9 experiment): the simulator uses
//! Markov-model *predictions* where this executor uses *actual* bodies,
//! exits, and allocation counts.
//!
//! With a single-core layout this is the sequential reference executor
//! used for profiling bootstrap and the 1-core Bamboo measurements.

use crate::cost::CostModel;
use crate::program::{NativePayload, Program, TaskCtx};
use crate::store::{ObjId, ObjectStore, PayloadSlot, RtObject};
use bamboo_analysis::DisjointnessAnalysis;
use bamboo_lang::ids::TagTypeId;
use bamboo_lang::ids::{ExitId, ParamIdx, TaskId};
use bamboo_lang::interp::{Interp, TagInstance};
use bamboo_lang::spec::{FlagOrTagAction, FlagSet, ProgramSpec};
use bamboo_machine::MachineDescription;
use bamboo_profile::{Cycles, Profile, ProfileCollector};
use bamboo_schedule::trace::{DataDep, ExecutionTrace, TraceTask};
use bamboo_schedule::{GroupGraph, InstanceId, Layout, RouteDecision, Router};
use bamboo_telemetry::{Telemetry, TimeUnit, WorkerSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Dispatch cost model.
    pub cost: CostModel,
    /// Record an execution trace.
    pub collect_trace: bool,
    /// Collect a profile, labeled with this input name.
    pub profile_input: Option<String>,
    /// Abort after this many invocations (divergence guard).
    pub max_invocations: u64,
    /// Estimated object payload size in words (transfer costs).
    pub payload_words: u64,
    /// Per-class payload overrides (falls back to `payload_words`).
    pub payload_words_per_class: std::collections::HashMap<bamboo_lang::ids::ClassId, u64>,
    /// Telemetry session events are recorded into (timestamps in virtual
    /// cycles). Disabled by default; recording costs nothing then.
    pub telemetry: Telemetry,
}

impl ExecConfig {
    /// Payload size for `class`.
    pub fn payload_words_of(&self, class: bamboo_lang::ids::ClassId) -> u64 {
        self.payload_words_per_class
            .get(&class)
            .copied()
            .unwrap_or(self.payload_words)
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            cost: CostModel::DEFAULT,
            collect_trace: false,
            profile_input: None,
            max_invocations: 50_000_000,
            payload_words: 16,
            payload_words_per_class: std::collections::HashMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// An interpreted body trapped.
    Trap(String),
    /// The invocation budget was exhausted.
    Diverged(u64),
    /// The threaded executor was asked to run an interpreted program.
    NativeOnly,
    /// A core was killed (fault injection) and its work could not be
    /// recovered — recovery disabled, or a stranded group had no live
    /// host. The run terminates with this error instead of hanging in
    /// quiescence.
    CoreLost {
        /// The dead core.
        core: usize,
    },
    /// A message exhausted its redelivery budget or deadline under
    /// injected drops and was declared permanently lost.
    MessageLost {
        /// The lost message's id.
        msg: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Trap(msg) => write!(f, "runtime trap: {msg}"),
            ExecError::Diverged(n) => write!(f, "exceeded invocation budget of {n}"),
            ExecError::NativeOnly => write!(f, "this executor requires native task bodies"),
            ExecError::CoreLost { core } => {
                write!(
                    f,
                    "core {core} was lost and its work could not be recovered"
                )
            }
            ExecError::MessageLost { msg } => {
                write!(
                    f,
                    "message {msg} exceeded its redelivery budget and was lost"
                )
            }
        }
    }
}

impl Error for ExecError {}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Virtual completion time.
    pub makespan: Cycles,
    /// Invocations executed.
    pub invocations: u64,
    /// Cycles charged by task bodies (the "C version" work).
    pub body_cycles: Cycles,
    /// Cycles added by the runtime (dispatch, locks, enqueues, allocs).
    pub overhead_cycles: Cycles,
    /// Inter-core object transfers performed.
    pub transfers: u64,
    /// Whether the run drained all work (vs. hitting the budget).
    pub quiesced: bool,
    /// The trace, when requested.
    pub trace: Option<ExecutionTrace>,
    /// The profile, when requested.
    pub profile: Option<Profile>,
}

/// A formed invocation.
#[derive(Clone, Debug)]
struct ReadyInv {
    task: TaskId,
    instance: InstanceId,
    objs: Vec<ObjId>,
    tag_env: Vec<Option<TagInstance>>,
}

/// A created object awaiting registration at invocation completion.
struct CreatedRt {
    site: bamboo_lang::ids::AllocSiteId,
    payload: PayloadSlot,
    tags: Vec<(TagTypeId, TagInstance)>,
}

/// Completion state of a running invocation.
struct Running {
    inv: ReadyInv,
    exit: ExitId,
    created: Vec<CreatedRt>,
    trace_id: Option<usize>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    Arrival(u32),
    CoreFree(u32),
}

/// The virtual-time executor. See the module docs.
pub struct VirtualExecutor<'p> {
    program: &'p Program,
    graph: &'p GroupGraph,
    layout: &'p Layout,
    machine: &'p MachineDescription,
    locks: &'p DisjointnessAnalysis,
    config: ExecConfig,
    /// The object store (inspect after `run` for results).
    pub store: ObjectStore,
    interp: Option<Interp<'p>>,
    router: Router,
    param_sets: Vec<Vec<VecDeque<ObjId>>>,
    param_keys: Vec<Vec<(TaskId, ParamIdx)>>,
    ready: Vec<VecDeque<ReadyInv>>,
    running: Vec<Option<Running>>,
    events: BinaryHeap<Reverse<(Cycles, u64, EventKey)>>,
    seq: u64,
    now: Cycles,
    makespan: Cycles,
    invocations: u64,
    body_cycles: Cycles,
    overhead_cycles: Cycles,
    transfers: u64,
    trace: Vec<TraceTask>,
    last_on_core: Vec<Option<usize>>,
    collector: Option<ProfileCollector>,
    /// Producer invocation per object (trace data edges).
    producers: Vec<Option<usize>>,
    /// Latest arrival time per object.
    arrivals: Vec<Cycles>,
    /// Deferred interpreter trap, surfaced from the event loop.
    trap: Option<String>,
    /// Enqueue cycles accrued on each core since its last dispatch; folded
    /// into the next invocation's duration so virtual time and the
    /// overhead accounting agree.
    pending_enqueue: Vec<Cycles>,
    /// Per-core telemetry sinks (empty when telemetry is disabled).
    /// Created at the start of `run`, submitted when the report is built.
    sinks: Vec<WorkerSink>,
}

impl<'p> VirtualExecutor<'p> {
    /// Creates an executor over `layout`.
    pub fn new(
        program: &'p Program,
        graph: &'p GroupGraph,
        layout: &'p Layout,
        machine: &'p MachineDescription,
        locks: &'p DisjointnessAnalysis,
        config: ExecConfig,
    ) -> Self {
        let spec = &program.spec;
        let mut param_keys = Vec::with_capacity(layout.instances.len());
        let mut param_sets = Vec::with_capacity(layout.instances.len());
        for inst in &layout.instances {
            let group = &graph.groups[inst.group.index()];
            let mut keys = Vec::new();
            for task in &group.tasks {
                for p in 0..spec.task(*task).params.len() {
                    keys.push((*task, ParamIdx::new(p)));
                }
            }
            param_sets.push(vec![VecDeque::new(); keys.len()]);
            param_keys.push(keys);
        }
        let interp = program.compiled().map(|c| Interp::new(c));
        let collector = config
            .profile_input
            .as_ref()
            .map(|input| ProfileCollector::new(spec, input.clone()));
        VirtualExecutor {
            program,
            graph,
            layout,
            machine,
            locks,
            config,
            store: ObjectStore::new(),
            interp,
            router: Router::new(),
            param_sets,
            param_keys,
            ready: vec![VecDeque::new(); layout.core_count],
            running: (0..layout.core_count).map(|_| None).collect(),
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            makespan: 0,
            invocations: 0,
            body_cycles: 0,
            overhead_cycles: 0,
            transfers: 0,
            trace: Vec::new(),
            last_on_core: vec![None; layout.core_count],
            collector,
            producers: Vec::new(),
            arrivals: Vec::new(),
            trap: None,
            pending_enqueue: vec![0; layout.core_count],
            sinks: Vec::new(),
        }
    }

    /// Creates an executor over a [`Deployment`](crate::Deployment) —
    /// the same artifact [`crate::ThreadedExecutor::run`] consumes, so
    /// predicted-vs-observed comparisons are guaranteed to execute the
    /// identical plan.
    pub fn over(
        deployment: &'p crate::deploy::Deployment,
        machine: &'p MachineDescription,
        config: ExecConfig,
    ) -> Self {
        VirtualExecutor::new(
            &deployment.program,
            &deployment.graph,
            &deployment.layout,
            machine,
            &deployment.locks,
            config,
        )
    }

    fn spec(&self) -> &ProgramSpec {
        &self.program.spec
    }

    fn push_event(&mut self, time: Cycles, key: EventKey) {
        self.seq += 1;
        self.events.push(Reverse((time, self.seq, key)));
    }

    /// Runs the program to quiescence.
    ///
    /// `startup` provides the startup object's payload for native
    /// programs (ignored for interpreted programs, whose startup object
    /// is allocated in the interpreter heap).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Trap`] if an interpreted body traps, or
    /// [`ExecError::Diverged`] past the invocation budget.
    pub fn run(&mut self, startup: Option<NativePayload>) -> Result<RunReport, ExecError> {
        let telemetry = self.config.telemetry.clone();
        if telemetry.is_enabled() {
            telemetry.set_time_unit(TimeUnit::Cycles);
            self.sinks = (0..self.layout.core_count)
                .map(|c| telemetry.worker(c))
                .collect();
        }
        let spec = self.program.spec.clone();
        let startup_inst = self.layout.instances_of(self.graph.startup_group)[0];
        let payload = match &mut self.interp {
            Some(interp) => PayloadSlot::Interp(interp.alloc_raw(spec.startup.class)),
            None => PayloadSlot::Native(startup.unwrap_or_else(|| Box::new(()))),
        };
        let flags = FlagSet::new().with(spec.startup.flag, true);
        let obj = self
            .store
            .alloc(spec.startup.class, flags, vec![], startup_inst, payload);
        self.push_event(0, EventKey::Arrival(obj.0));

        while let Some(Reverse((time, _, key))) = self.events.pop() {
            self.now = time;
            self.makespan = self.makespan.max(time);
            match key {
                EventKey::Arrival(id) => self.handle_arrival(ObjId(id)),
                EventKey::CoreFree(core) => self.handle_core_free(core as usize)?,
            }
            if let Some(msg) = self.trap.take() {
                return Err(ExecError::Trap(msg));
            }
            if self.invocations > self.config.max_invocations {
                return Err(ExecError::Diverged(self.config.max_invocations));
            }
        }
        Ok(self.report(true))
    }

    fn report(&mut self, quiesced: bool) -> RunReport {
        // Hand the event rings back so `config.telemetry.report()` sees
        // this run's events without waiting for the executor to drop.
        for sink in self.sinks.drain(..) {
            sink.submit();
        }
        RunReport {
            makespan: self.makespan,
            invocations: self.invocations,
            body_cycles: self.body_cycles,
            overhead_cycles: self.overhead_cycles,
            transfers: self.transfers,
            quiesced,
            trace: if self.config.collect_trace {
                Some(ExecutionTrace {
                    tasks: std::mem::take(&mut self.trace),
                    makespan: self.makespan,
                })
            } else {
                None
            },
            profile: self.collector.take().map(|mut c| {
                c.record_overhead(self.overhead_cycles);
                c.finish()
            }),
        }
    }

    /// Returns a reference to the interpreter heap (interpreted programs).
    pub fn interp_heap(&self) -> Option<&bamboo_lang::interp::Heap> {
        self.interp.as_ref().map(|i| &i.heap)
    }

    /// Returns captured `print` output (interpreted programs).
    pub fn interp_output(&self) -> Option<&str> {
        self.interp.as_ref().map(|i| i.output.as_str())
    }

    /// Downcasts the payload of `id` (native programs).
    ///
    /// # Panics
    ///
    /// Panics if the payload was taken or is not a `T`.
    pub fn payload<T: 'static>(&self, id: ObjId) -> &T {
        match &self.store.get(id).payload {
            PayloadSlot::Native(p) => p.downcast_ref::<T>().expect("payload type mismatch"),
            other => panic!("payload of {id} unavailable: {other:?}"),
        }
    }

    // ---- dispatch ------------------------------------------------------

    fn handle_arrival(&mut self, obj: ObjId) {
        let home = self.store.get(obj).home;
        let class = self.store.get(obj).class;
        let flags = self.store.get(obj).flags;
        let arrival_core = self.layout.core_of(home).index();
        if !self.sinks.is_empty() {
            let bytes = self.config.payload_words_of(class) * 8;
            let queued = self.ready[arrival_core].len() as u64;
            let sink = &mut self.sinks[arrival_core];
            sink.obj_recv(self.now, bytes, u64::MAX, u64::MAX);
            sink.queue_depth(self.now, queued, 0);
        }
        let mut touched = false;
        for (slot, (task, param)) in self.param_keys[home.index()].iter().enumerate() {
            let pspec = &self.spec().tasks[task.index()].params[param.index()];
            if pspec.class == class && pspec.guard.eval(flags) {
                self.param_sets[home.index()][slot].push_back(obj);
                touched = true;
            }
        }
        let core = self.layout.core_of(home).index();
        if touched {
            self.pending_enqueue[core] += self.config.cost.enqueue;
            self.try_form_invocations(home);
        } else {
            // No slot here matches: the consuming task lives in another
            // group (or nowhere). Forward the object like a transition.
            let hash = self.store.get(obj).tag_hash();
            let spec = self.program.spec.clone();
            if let RouteDecision::Move(dest) = self.router.route_transition(
                &spec,
                self.graph,
                self.layout,
                home,
                class,
                flags,
                hash,
            ) {
                let cost = self.machine.transfer_cycles(
                    self.layout.core_of(home),
                    self.layout.core_of(dest),
                    self.config.payload_words_of(class),
                );
                self.transfers += 1;
                if !self.sinks.is_empty() {
                    let bytes = self.config.payload_words_of(class) * 8;
                    let dest_core = self.layout.core_of(dest).index() as u64;
                    self.sinks[arrival_core].obj_send(self.now, bytes, dest_core, u64::MAX);
                }
                self.store.get_mut(obj).home = dest;
                self.set_arrival(obj, self.now + cost);
                self.push_event(self.now + cost, EventKey::Arrival(obj.0));
            }
        }
        self.maybe_start(core);
    }

    fn try_form_invocations(&mut self, instance: InstanceId) {
        let core = self.layout.core_of(instance).index();
        loop {
            let mut formed = false;
            let tasks: Vec<TaskId> = self.graph.groups
                [self.layout.instances[instance.index()].group.index()]
            .tasks
            .clone();
            for task in tasks {
                if let Some((objs, tag_env)) = self.match_task(instance, task) {
                    self.ready[core].push_back(ReadyInv {
                        task,
                        instance,
                        objs,
                        tag_env,
                    });
                    formed = true;
                }
            }
            if !formed {
                break;
            }
        }
    }

    /// Tries to assemble one invocation of `task` at `instance`:
    /// one live object per parameter with consistent tag bindings. Objects
    /// chosen are removed from all of the task's parameter sets at this
    /// instance (they are "locked" for the invocation — in virtual time
    /// the try-lock always succeeds because reservation is atomic).
    fn match_task(
        &mut self,
        instance: InstanceId,
        task: TaskId,
    ) -> Option<(Vec<ObjId>, Vec<Option<TagInstance>>)> {
        let spec = self.program.spec.clone();
        let tspec = spec.task(task);
        let n = tspec.params.len();
        if n == 0 {
            return None;
        }
        let mut chosen: Vec<ObjId> = Vec::with_capacity(n);
        let mut tag_env: Vec<Option<TagInstance>> = vec![None; tspec.tag_vars.len()];
        for p in 0..n {
            let slot = self.param_keys[instance.index()]
                .iter()
                .position(|(t, pi)| *t == task && pi.index() == p)
                .expect("param slot exists");
            let pspec = &tspec.params[p];
            let mut found = None;
            let mut scan = 0;
            while scan < self.param_sets[instance.index()][slot].len() {
                let cand = self.param_sets[instance.index()][slot][scan];
                let o: &RtObject = self.store.get(cand);
                // Reserved objects are removed too: their invocation's
                // completion re-delivers them, creating fresh entries.
                let stale = o.reserved
                    || !pspec.guard.eval(o.flags)
                    || matches!(o.payload, PayloadSlot::Taken)
                    || o.home != instance;
                if stale {
                    self.param_sets[instance.index()][slot].remove(scan);
                    continue;
                }
                if chosen.contains(&cand) {
                    scan += 1;
                    continue;
                }
                // Tag constraints.
                let mut env_updates: Vec<(usize, TagInstance)> = Vec::new();
                let mut ok = true;
                for tc in &pspec.tags {
                    let bound = env_updates
                        .iter()
                        .find(|(v, _)| *v == tc.var.index())
                        .map(|(_, i)| *i)
                        .or(tag_env[tc.var.index()]);
                    match bound {
                        Some(inst) => {
                            if !o.tags.contains(&(tc.tag_type, inst)) {
                                ok = false;
                                break;
                            }
                        }
                        None => match o.tags.iter().find(|(tt, _)| *tt == tc.tag_type) {
                            Some((_, inst)) => env_updates.push((tc.var.index(), *inst)),
                            None => {
                                ok = false;
                                break;
                            }
                        },
                    }
                }
                if ok {
                    found = Some((scan, cand, env_updates));
                    break;
                }
                scan += 1;
            }
            match found {
                Some((idx, cand, env_updates)) => {
                    self.param_sets[instance.index()][slot].remove(idx);
                    for (v, inst) in env_updates {
                        tag_env[v] = Some(inst);
                    }
                    chosen.push(cand);
                }
                None => {
                    // Put reserved objects back.
                    for (pi, o) in chosen.into_iter().enumerate() {
                        let slot = self.param_keys[instance.index()]
                            .iter()
                            .position(|(t, q)| *t == task && q.index() == pi)
                            .expect("param slot exists");
                        self.param_sets[instance.index()][slot].push_front(o);
                    }
                    return None;
                }
            }
        }
        // Reserve the chosen objects: an object whose state satisfies
        // several task guards sits in several parameter sets, and without
        // the reservation a second invocation could capture it before
        // this one completes (transactional semantics forbid that — in
        // the threaded executor the object's lock plays this role).
        for &obj in &chosen {
            self.store.get_mut(obj).reserved = true;
        }
        Some((chosen, tag_env))
    }

    fn maybe_start(&mut self, core: usize) {
        if self.running[core].is_some() {
            return;
        }
        let Some(mut inv) = self.ready[core].pop_front() else {
            return;
        };
        let spec = self.program.spec.clone();
        let tspec = spec.task(inv.task);

        // Mint fresh tag instances for body-created tag variables.
        for (v, var) in tspec.tag_vars.iter().enumerate() {
            if !var.from_param && inv.tag_env[v].is_none() {
                inv.tag_env[v] = Some(self.store.mint_tag());
            }
        }

        // Execute the body now; effects apply at completion time.
        let (exit, charged, created) = match self.program.native_body(inv.task) {
            Some(body) => {
                let body = body.clone();
                let mut payloads: Vec<NativePayload> = inv
                    .objs
                    .iter()
                    .map(|&o| self.store.take_native(o))
                    .collect();
                let mut ctx =
                    TaskCtx::new(&mut payloads, tspec.alloc_sites.len(), tspec.exits.len());
                let exit_idx = body(&mut ctx);
                let exit = ExitId::new(ctx.check_exit(exit_idx));
                let (charged, created_native) = ctx.finish();
                for (&o, p) in inv.objs.iter().zip(payloads) {
                    self.store.put_native(o, p);
                }
                let created: Vec<CreatedRt> = created_native
                    .into_iter()
                    .map(|(site, payload)| {
                        let site = bamboo_lang::ids::AllocSiteId::new(site);
                        let site_spec = &tspec.alloc_sites[site.index()];
                        let tags = site_spec
                            .bound_tags
                            .iter()
                            .filter_map(|var| {
                                inv.tag_env[var.index()]
                                    .map(|inst| (tspec.tag_vars[var.index()].tag_type, inst))
                            })
                            .collect();
                        CreatedRt {
                            site,
                            payload: PayloadSlot::Native(payload),
                            tags,
                        }
                    })
                    .collect();
                (exit, charged, created)
            }
            None => {
                let interp = self
                    .interp
                    .as_mut()
                    .expect("interpreted program has interp");
                let refs: Vec<bamboo_lang::interp::ObjRef> = inv
                    .objs
                    .iter()
                    .map(|&o| match self.store.get(o).payload {
                        PayloadSlot::Interp(r) => r,
                        _ => unreachable!("interpreted payloads are ObjRefs"),
                    })
                    .collect();
                let outcome = interp
                    .run_task(inv.task, &refs, inv.tag_env.clone())
                    .map_err(|e| e.message.clone());
                let outcome = match outcome {
                    Ok(o) => o,
                    Err(msg) => {
                        // Defer the error to the event loop via a poisoned
                        // running slot; simplest is to panic in debug, but
                        // we surface it as a trap.
                        self.running[core] = None;
                        self.trap = Some(msg);
                        return;
                    }
                };
                inv.tag_env = outcome.tag_env.clone();
                let created = outcome
                    .created
                    .iter()
                    .map(|c| CreatedRt {
                        site: c.site,
                        payload: PayloadSlot::Interp(c.obj),
                        tags: c.tags.clone(),
                    })
                    .collect();
                (outcome.exit, outcome.cycles, created)
            }
        };

        let n_created = created.len();
        let overhead = self.config.cost.invocation_overhead(inv.objs.len())
            + self.config.cost.alloc * n_created as Cycles
            + std::mem::take(&mut self.pending_enqueue[core]);
        let duration = charged + overhead;
        self.body_cycles += charged;
        self.overhead_cycles += overhead;
        self.invocations += 1;

        if let Some(collector) = &mut self.collector {
            let allocs: Vec<(bamboo_lang::ids::AllocSiteId, u64)> = {
                let mut counts = std::collections::HashMap::new();
                for c in &created {
                    *counts.entry(c.site).or_insert(0u64) += 1;
                }
                counts.into_iter().collect()
            };
            collector.record(inv.task, exit, charged, &allocs);
        }

        let trace_id = if self.config.collect_trace {
            let deps = inv
                .objs
                .iter()
                .map(|&o| DataDep {
                    producer: self.producers.get(o.index()).copied().flatten(),
                    arrival: self.arrivals.get(o.index()).copied().unwrap_or(0),
                })
                .collect();
            let id = self.trace.len();
            self.trace.push(TraceTask {
                id,
                task: inv.task,
                instance: inv.instance,
                core: self.layout.core_of(inv.instance),
                start: self.now,
                end: self.now + duration,
                deps,
                prev_on_core: self.last_on_core[core],
            });
            self.last_on_core[core] = Some(id);
            Some(id)
        } else {
            None
        };

        let end = self.now + duration;
        if !self.sinks.is_empty() {
            // Virtual dispatch is transactional with atomic reservation,
            // so lock acquisition always succeeds with zero retries.
            let sink = &mut self.sinks[core];
            sink.lock_acquired(self.now, inv.objs.len() as u64, 0, u64::MAX);
            sink.task_start(
                self.now,
                inv.task.index() as u64,
                inv.instance.index() as u64,
                u64::MAX,
            );
            sink.task_end(
                end,
                inv.task.index() as u64,
                inv.instance.index() as u64,
                u64::MAX,
            );
        }
        self.running[core] = Some(Running {
            inv,
            exit,
            created,
            trace_id,
        });
        self.push_event(end, EventKey::CoreFree(core as u32));
    }

    fn handle_core_free(&mut self, core: usize) -> Result<(), ExecError> {
        if let Some(msg) = self.trap.take() {
            return Err(ExecError::Trap(msg));
        }
        let Some(Running {
            inv,
            exit,
            created,
            trace_id,
        }) = self.running[core].take()
        else {
            return Ok(());
        };
        let spec = self.program.spec.clone();
        let tspec = spec.task(inv.task);
        let exit_spec = tspec.exit(exit);

        // Shared-lock directive: merge lock classes of grouped params.
        for group in &self.locks.lock_plans[inv.task.index()].groups {
            for pair in group.windows(2) {
                self.store
                    .merge_locks(inv.objs[pair[0].index()], inv.objs[pair[1].index()]);
            }
        }

        // Exit actions.
        for (param_idx, actions) in &exit_spec.actions {
            let obj = inv.objs[param_idx.index()];
            for action in actions {
                match action {
                    FlagOrTagAction::SetFlag(flag, value) => {
                        let o = self.store.get_mut(obj);
                        o.flags.set(*flag, *value);
                    }
                    FlagOrTagAction::AddTag(var) => {
                        if let Some(inst) = inv.tag_env[var.index()] {
                            let tt = tspec.tag_vars[var.index()].tag_type;
                            let o = self.store.get_mut(obj);
                            if !o.tags.contains(&(tt, inst)) {
                                o.tags.push((tt, inst));
                            }
                        }
                    }
                    FlagOrTagAction::ClearTag(var) => {
                        if let Some(inst) = inv.tag_env[var.index()] {
                            let tt = tspec.tag_vars[var.index()].tag_type;
                            let o = self.store.get_mut(obj);
                            o.tags.retain(|t| *t != (tt, inst));
                        }
                    }
                }
            }
        }

        // Route parameters (releasing their reservations first).
        for &obj in &inv.objs {
            self.store.get_mut(obj).reserved = false;
            if let Some(id) = trace_id {
                self.set_producer(obj, Some(id));
            }
            let (class, flags, home, hash) = {
                let o = self.store.get(obj);
                (o.class, o.flags, o.home, o.tag_hash())
            };
            match self.router.route_transition(
                &spec,
                self.graph,
                self.layout,
                home,
                class,
                flags,
                hash,
            ) {
                RouteDecision::Stay => {
                    self.set_arrival(obj, self.now);
                    self.push_event(self.now, EventKey::Arrival(obj.0));
                }
                RouteDecision::Move(dest) => {
                    let cost = self.machine.transfer_cycles(
                        self.layout.core_of(home),
                        self.layout.core_of(dest),
                        self.config.payload_words_of(class),
                    );
                    self.transfers += 1;
                    if !self.sinks.is_empty() {
                        let bytes = self.config.payload_words_of(class) * 8;
                        let dest_core = self.layout.core_of(dest).index() as u64;
                        self.sinks[core].obj_send(self.now, bytes, dest_core, u64::MAX);
                    }
                    self.store.get_mut(obj).home = dest;
                    self.set_arrival(obj, self.now + cost);
                    self.push_event(self.now + cost, EventKey::Arrival(obj.0));
                }
                RouteDecision::Dead => {
                    // The object leaves dispatch; its payload stays
                    // available for result extraction.
                }
            }
        }

        // Register created objects.
        for c in created {
            let site_spec = &tspec.alloc_sites[c.site.index()];
            let hash = c.tags.first().map(|(_, i)| i.0);
            let dest = self.router.route_new(
                &spec,
                self.graph,
                self.layout,
                inv.instance,
                inv.task,
                c.site,
                hash,
            );
            let cost = self.machine.transfer_cycles(
                self.layout.core_of(inv.instance),
                self.layout.core_of(dest),
                self.config.payload_words_of(site_spec.class),
            );
            if cost > 0 {
                self.transfers += 1;
                if !self.sinks.is_empty() {
                    let bytes = self.config.payload_words_of(site_spec.class) * 8;
                    let dest_core = self.layout.core_of(dest).index() as u64;
                    self.sinks[core].obj_send(self.now, bytes, dest_core, u64::MAX);
                }
            }
            let obj = self.store.alloc(
                site_spec.class,
                site_spec.initial_flag_set(),
                c.tags,
                dest,
                c.payload,
            );
            self.set_producer(obj, trace_id);
            self.set_arrival(obj, self.now + cost);
            self.push_event(self.now + cost, EventKey::Arrival(obj.0));
        }

        self.maybe_start(core);
        Ok(())
    }

    fn set_producer(&mut self, obj: ObjId, producer: Option<usize>) {
        if self.producers.len() <= obj.index() {
            self.producers.resize(obj.index() + 1, None);
        }
        self.producers[obj.index()] = producer;
    }

    fn set_arrival(&mut self, obj: ObjId, time: Cycles) {
        if self.arrivals.len() <= obj.index() {
            self.arrivals.resize(obj.index() + 1, 0);
        }
        self.arrivals[obj.index()] = time;
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Fixtures shared between the virtual and threaded executor tests.
    use super::*;
    use crate::program::{body, NativeBody};
    use bamboo_analysis::astg::DependenceAnalysis;
    use bamboo_analysis::cstg::Cstg;
    use bamboo_lang::builder::ProgramBuilder;
    use bamboo_lang::spec::FlagExpr;
    use bamboo_machine::CoreId;
    use bamboo_profile::ProfileCollector;
    use bamboo_schedule::transforms::Replication;

    /// A native fan-out/reduce program: startup creates N work items and
    /// one accumulator; `work` squares each item; `reduce` folds items
    /// into the accumulator.
    pub(crate) fn native_program(n: i64) -> Program {
        let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("fanout");
        let s = b.class("StartupObject", &["initialstate"]);
        let w = b.class("Work", &["ready", "done"]);
        let acc = b.class("Acc", &["open", "closed"]);
        let init = b.flag(s, "initialstate");
        let ready = b.flag(w, "ready");
        let done = b.flag(w, "done");
        let open = b.flag(acc, "open");
        let closed = b.flag(acc, "closed");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .alloc(w, &[(ready, true)], &[])
            .alloc(acc, &[(open, true)], &[])
            .exit("", |e| e.set(0, init, false))
            .body(body(move |ctx| {
                for i in 0..n {
                    ctx.create(0, i);
                }
                ctx.create(1, (0i64, 0i64, n));
                ctx.charge(50);
                0
            }))
            .finish();
        b.task("work")
            .param("w", w, FlagExpr::flag(ready))
            .exit("", |e| e.set(0, ready, false).set(0, done, true))
            .body(body(|ctx| {
                let v = ctx.param_mut::<i64>(0);
                *v *= *v;
                ctx.charge(1000);
                0
            }))
            .finish();
        b.task("reduce")
            .param("a", acc, FlagExpr::flag(open))
            .param("w", w, FlagExpr::flag(done))
            .exit("more", |e| e.set(1, done, false))
            .exit("finish", |e| {
                e.set(0, open, false)
                    .set(0, closed, true)
                    .set(1, done, false)
            })
            .body(body(|ctx| {
                let w = *ctx.param::<i64>(1);
                let a = ctx.param_mut::<(i64, i64, i64)>(0);
                a.0 += w;
                a.1 += 1;
                let finished = a.1 == a.2;
                ctx.charge(60);
                if finished {
                    1
                } else {
                    0
                }
            }))
            .finish();
        Program::from_native(b.build().unwrap())
    }

    /// Builds the analyses + a layout spreading the work group over
    /// `cores` cores.
    pub(crate) fn fanout_setup(
        n: i64,
        cores: usize,
    ) -> (
        Program,
        GroupGraph,
        Layout,
        MachineDescription,
        DisjointnessAnalysis,
    ) {
        let program = native_program(n);
        let analysis = DependenceAnalysis::run(&program.spec);
        let cstg = Cstg::build(&program.spec, &analysis);
        let empty_profile = ProfileCollector::new(&program.spec, "bootstrap").finish();
        let graph = GroupGraph::build(&program.spec, &cstg, &empty_profile);
        let layout = if cores == 1 {
            Layout::single_core(&graph)
        } else {
            let mut repl = Replication::serial(&graph);
            let work_group = graph
                .group_of_task(program.spec.task_by_name("work").unwrap())
                .unwrap();
            repl.copies[work_group.index()] = cores;
            let core_lists: Vec<Vec<CoreId>> = graph
                .groups
                .iter()
                .enumerate()
                .map(|(g, _)| {
                    (0..repl.copies[g])
                        .map(|c| {
                            if bamboo_schedule::GroupId(g as u32) == work_group {
                                CoreId::new(c % cores)
                            } else {
                                CoreId::new(0)
                            }
                        })
                        .collect()
                })
                .collect();
            Layout::new(&graph, &repl, cores, &core_lists)
        };
        let machine = MachineDescription::n_cores(cores);
        let locks = DisjointnessAnalysis::all_disjoint(&program.spec);
        (program, graph, layout, machine, locks)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{fanout_setup, native_program};
    use super::*;
    use bamboo_analysis::astg::DependenceAnalysis;
    use bamboo_analysis::cstg::Cstg;
    use bamboo_machine::CoreId;
    use bamboo_profile::ProfileCollector;
    use bamboo_schedule::transforms::Replication;

    fn run_native(cores: usize, n: i64, config: ExecConfig) -> (RunReport, i64) {
        let (program, graph, layout, machine, locks) = fanout_setup(n, cores);
        let mut exec = VirtualExecutor::new(&program, &graph, &layout, &machine, &locks, config);
        let report = exec.run(None).unwrap();
        let acc_class = program.spec.class_by_name("Acc").unwrap();
        let accs = exec.store.live_of_class(acc_class);
        assert_eq!(accs.len(), 1);
        let total = exec.payload::<(i64, i64, i64)>(accs[0]).0;
        (report, total)
    }

    #[test]
    fn native_single_core_computes_correct_result() {
        let (report, total) = run_native(1, 10, ExecConfig::default());
        assert!(report.quiesced);
        // 1 startup + 10 work + 10 reduce.
        assert_eq!(report.invocations, 21);
        // sum of squares 0..10 = 285.
        assert_eq!(total, 285);
    }

    #[test]
    fn native_multi_core_same_result_faster() {
        let (one, t1) = run_native(1, 16, ExecConfig::default());
        let (four, t4) = run_native(4, 16, ExecConfig::default());
        assert_eq!(t1, t4);
        assert!(
            four.makespan < one.makespan,
            "{} !< {}",
            four.makespan,
            one.makespan
        );
        assert!(four.transfers > 0);
    }

    #[test]
    fn overhead_is_separated_from_body_cycles() {
        let (report, _) = run_native(1, 8, ExecConfig::default());
        // bodies: 50 + 8*1000 + 8*60 = 8530.
        assert_eq!(report.body_cycles, 8530);
        assert!(report.overhead_cycles > 0);
        assert_eq!(report.makespan, report.body_cycles + report.overhead_cycles);
    }

    #[test]
    fn free_cost_model_has_zero_overhead() {
        let config = ExecConfig {
            cost: CostModel::FREE,
            ..ExecConfig::default()
        };
        let (report, _) = run_native(1, 8, config);
        assert_eq!(report.overhead_cycles, 0);
        assert_eq!(report.makespan, report.body_cycles);
    }

    #[test]
    fn profile_collection_records_all_tasks() {
        let config = ExecConfig {
            profile_input: Some("original".to_string()),
            ..ExecConfig::default()
        };
        let (report, _) = run_native(1, 10, config);
        let profile = report.profile.unwrap();
        assert_eq!(profile.tasks.len(), 3);
        assert_eq!(profile.tasks[1].invocations(), 10);
        // reduce: 9 "more" exits + 1 "finish" exit.
        assert_eq!(profile.tasks[2].exits[0].count, 9);
        assert_eq!(profile.tasks[2].exits[1].count, 1);
        // startup allocated 10 Work and 1 Acc.
        assert_eq!(profile.tasks[0].exits[0].site_allocs, vec![10, 1]);
    }

    #[test]
    fn virtual_run_records_cycle_accurate_events() {
        use bamboo_telemetry::EventKind;
        let config = ExecConfig {
            collect_trace: true,
            telemetry: Telemetry::enabled(3),
            ..ExecConfig::default()
        };
        let telemetry = config.telemetry.clone();
        let (report, _) = run_native(3, 12, config);
        let t = telemetry.report();
        assert_eq!(t.unit, TimeUnit::Cycles);
        assert_eq!(t.count(EventKind::TaskStart) as u64, report.invocations);
        assert_eq!(t.count(EventKind::TaskEnd) as u64, report.invocations);
        // Every counted transfer shows up as exactly one send event.
        assert_eq!(t.count(EventKind::ObjSend) as u64, report.transfers);
        // Virtual reservation never retries locks.
        assert_eq!(t.count(EventKind::LockAcquired) as u64, report.invocations);
        assert_eq!(t.count(EventKind::LockFailed), 0);
        // Event timestamps live on the same clock as the makespan.
        assert!(t.last_ts() <= report.makespan);
        // The telemetry task slices agree with the collected trace.
        let trace = report.trace.unwrap();
        let trace_busy: u64 = trace.tasks.iter().map(|tt| tt.end - tt.start).sum();
        let mut event_busy = 0;
        let mut open = std::collections::HashMap::new();
        for e in &t.events {
            match e.kind {
                EventKind::TaskStart => {
                    open.insert(e.core, e.ts);
                }
                EventKind::TaskEnd => {
                    event_busy += e.ts - open.remove(&e.core).unwrap();
                }
                _ => {}
            }
        }
        assert_eq!(event_busy, trace_busy);
    }

    #[test]
    fn trace_is_consistent_with_report() {
        let config = ExecConfig {
            collect_trace: true,
            ..ExecConfig::default()
        };
        let (report, _) = run_native(4, 12, config);
        let trace = report.trace.unwrap();
        assert_eq!(trace.tasks.len() as u64, report.invocations);
        for t in &trace.tasks {
            assert!(t.start >= t.data_ready());
        }
        assert_eq!(trace.makespan, report.makespan);
    }

    #[test]
    fn interpreted_program_runs_and_matches_reference_driver() {
        let src = r#"
            class StartupObject { flag initialstate; }
            class Text {
                flag process; flag submit;
                int count; int sectionId;
                Text(int id) { this.sectionId = id; }
                void process() { this.count = this.sectionId * 3 + 1; }
            }
            class Results {
                flag finished;
                int total; int merged; int expected;
                Results(int expected) { this.expected = expected; }
                boolean mergeResult(Text tp) {
                    this.total = this.total + tp.count;
                    this.merged = this.merged + 1;
                    return this.merged == this.expected;
                }
            }
            task startup(StartupObject s in initialstate) {
                for (int i = 0; i < 4; i = i + 1) {
                    Text tp = new Text(i){ process := true };
                }
                Results rp = new Results(4){ finished := false };
                taskexit(s: initialstate := false);
            }
            task processText(Text tp in process) {
                tp.process();
                taskexit(tp: process := false, submit := true);
            }
            task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
                boolean allprocessed = rp.mergeResult(tp);
                if (allprocessed) {
                    taskexit(rp: finished := true; tp: submit := false);
                }
                taskexit(tp: submit := false);
            }
        "#;
        let compiled = bamboo_lang::compile_source("kc", src).unwrap();
        // Reference result.
        let mut driver = bamboo_lang::interp::ReferenceDriver::new(&compiled);
        driver.run(1000).unwrap();
        let results_class = compiled.spec.class_by_name("Results").unwrap();
        let ref_obj = driver.objects_of(results_class)[0];
        let ref_total = driver.interp.heap.field(ref_obj, 0).clone();

        // Virtual executor on 1 and 3 cores.
        for cores in [1usize, 3] {
            let locks = DisjointnessAnalysis::run(&compiled.spec, &compiled.ir);
            let program = Program::from_compiled(compiled.clone());
            let analysis = DependenceAnalysis::run(&program.spec);
            let cstg = Cstg::build(&program.spec, &analysis);
            let empty = ProfileCollector::new(&program.spec, "bootstrap").finish();
            let graph = GroupGraph::build(&program.spec, &cstg, &empty);
            let layout = if cores == 1 {
                Layout::single_core(&graph)
            } else {
                let mut repl = Replication::serial(&graph);
                let g = graph
                    .group_of_task(program.spec.task_by_name("processText").unwrap())
                    .unwrap();
                repl.copies[g.index()] = cores;
                let core_lists: Vec<Vec<CoreId>> = graph
                    .groups
                    .iter()
                    .enumerate()
                    .map(|(gi, _)| {
                        (0..repl.copies[gi])
                            .map(|c| {
                                if bamboo_schedule::GroupId(gi as u32) == g {
                                    CoreId::new(c % cores)
                                } else {
                                    CoreId::new(0)
                                }
                            })
                            .collect()
                    })
                    .collect();
                Layout::new(&graph, &repl, cores, &core_lists)
            };
            let machine = MachineDescription::n_cores(cores);
            let mut exec = VirtualExecutor::new(
                &program,
                &graph,
                &layout,
                &machine,
                &locks,
                ExecConfig::default(),
            );
            let report = exec.run(None).unwrap();
            assert!(report.quiesced);
            assert_eq!(report.invocations, 9);
            let results = exec.store.live_of_class(results_class);
            assert_eq!(results.len(), 1);
            let r = match exec.store.get(results[0]).payload {
                PayloadSlot::Interp(r) => r,
                _ => unreachable!(),
            };
            let total = exec.interp_heap().unwrap().field(r, 0).clone();
            assert_eq!(total, ref_total);
        }
    }

    #[test]
    fn lock_classes_merge_for_sharing_tasks() {
        // Build a native program where reduce stores references (declared
        // via with_shared) and check the lock classes merged.
        let (program, graph, layout, machine, locks) = fanout_setup(4, 1);
        let _ = native_program; // fixture also exercised directly elsewhere
        let reduce = program.spec.task_by_name("reduce").unwrap();
        let locks = locks.with_shared(reduce, &[ParamIdx::new(0), ParamIdx::new(1)]);
        let mut exec = VirtualExecutor::new(
            &program,
            &graph,
            &layout,
            &machine,
            &locks,
            ExecConfig::default(),
        );
        exec.run(None).unwrap();
        let acc_class = program.spec.class_by_name("Acc").unwrap();
        let work_class = program.spec.class_by_name("Work").unwrap();
        let acc = exec.store.live_of_class(acc_class)[0];
        let works = exec.store.live_of_class(work_class);
        let acc_lock = exec.store.lock_of(acc);
        for w in works {
            assert_eq!(exec.store.lock_of(w), acc_lock);
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::tests_support::fanout_setup;
    use super::*;
    use crate::program::{body, NativeBody};
    use bamboo_analysis::astg::DependenceAnalysis;
    use bamboo_analysis::cstg::Cstg;
    use bamboo_lang::builder::ProgramBuilder;
    use bamboo_lang::spec::FlagExpr;
    use bamboo_profile::ProfileCollector;

    /// A task that re-enables itself forever.
    fn livelock_program() -> Program {
        let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("livelock");
        let s = b.class("StartupObject", &["initialstate"]);
        let init = b.flag(s, "initialstate");
        b.task("spin")
            .param("s", s, FlagExpr::flag(init))
            .exit("again", |e| e.set(0, init, true))
            .body(body(|ctx| {
                ctx.charge(1);
                0
            }))
            .finish();
        Program::from_native(b.build().expect("valid"))
    }

    #[test]
    fn divergent_program_hits_the_invocation_budget() {
        let program = livelock_program();
        let analysis = DependenceAnalysis::run(&program.spec);
        let cstg = Cstg::build(&program.spec, &analysis);
        let empty = ProfileCollector::new(&program.spec, "x").finish();
        let graph = GroupGraph::build(&program.spec, &cstg, &empty);
        let layout = Layout::single_core(&graph);
        let machine = MachineDescription::n_cores(1);
        let locks = DisjointnessAnalysis::all_disjoint(&program.spec);
        let config = ExecConfig {
            max_invocations: 500,
            ..ExecConfig::default()
        };
        let mut exec = VirtualExecutor::new(&program, &graph, &layout, &machine, &locks, config);
        let err = exec.run(None).unwrap_err();
        assert_eq!(err, ExecError::Diverged(500));
    }

    #[test]
    fn interpreted_trap_surfaces_as_exec_error() {
        let compiled = bamboo_lang::compile_source(
            "trap",
            r#"
            class StartupObject { flag initialstate; }
            task boom(StartupObject s in initialstate) {
                int zero = 0;
                int x = 1 / zero;
                taskexit(s: initialstate := false);
            }
            "#,
        )
        .expect("compiles");
        let locks = DisjointnessAnalysis::run(&compiled.spec, &compiled.ir);
        let program = Program::from_compiled(compiled);
        let analysis = DependenceAnalysis::run(&program.spec);
        let cstg = Cstg::build(&program.spec, &analysis);
        let empty = ProfileCollector::new(&program.spec, "x").finish();
        let graph = GroupGraph::build(&program.spec, &cstg, &empty);
        let layout = Layout::single_core(&graph);
        let machine = MachineDescription::n_cores(1);
        let mut exec = VirtualExecutor::new(
            &program,
            &graph,
            &layout,
            &machine,
            &locks,
            ExecConfig::default(),
        );
        match exec.run(None) {
            Err(ExecError::Trap(msg)) => assert!(msg.contains("division by zero"), "{msg}"),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn exec_error_display_is_informative() {
        assert!(ExecError::Diverged(7).to_string().contains('7'));
        assert!(ExecError::Trap("x".into()).to_string().contains("trap"));
        assert!(ExecError::NativeOnly.to_string().contains("native"));
    }

    #[test]
    fn cost_model_free_vs_default_changes_only_overhead() {
        let (program, graph, layout, machine, locks) = fanout_setup(6, 1);
        let run = |cost| {
            let config = ExecConfig {
                cost,
                ..ExecConfig::default()
            };
            let mut exec =
                VirtualExecutor::new(&program, &graph, &layout, &machine, &locks, config);
            exec.run(None).expect("runs")
        };
        let free = run(CostModel::FREE);
        let paid = run(CostModel::DEFAULT);
        assert_eq!(free.body_cycles, paid.body_cycles);
        assert_eq!(free.invocations, paid.invocations);
        assert!(paid.makespan > free.makespan);
    }
}

#[cfg(test)]
mod payload_tests {
    use super::tests_support::fanout_setup;
    use super::*;

    #[test]
    fn heavier_per_class_payloads_slow_transfers() {
        let (program, graph, layout, machine, locks) = fanout_setup(12, 4);
        let run = |config: ExecConfig| {
            let mut exec =
                VirtualExecutor::new(&program, &graph, &layout, &machine, &locks, config);
            exec.run(None).expect("runs").makespan
        };
        let light = run(ExecConfig::default());
        let work_class = program.spec.class_by_name("Work").expect("exists");
        let mut heavy_cfg = ExecConfig::default();
        heavy_cfg
            .payload_words_per_class
            .insert(work_class, 100_000);
        let heavy = run(heavy_cfg);
        assert!(
            heavy > light,
            "heavy payloads must cost time: {heavy} !> {light}"
        );
    }
}
