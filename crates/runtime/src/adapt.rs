//! Online adaptive re-layout: the doctor→DSA loop closed at runtime.
//!
//! The synthesis pipeline places groups on cores using a *profiled*
//! Markov model. When the live workload drifts from that profile — a
//! serving mix shifts, a phase change alters exit rates — the static
//! layout's load balance decays. This module closes the loop while the
//! deployment keeps running:
//!
//! 1. a [`LiveEstimator`] (fed by the executor on every invocation)
//!    re-estimates the Markov model — exit rates, per-exit cycles,
//!    allocation counts — from live telemetry;
//! 2. the [`AdaptiveController`] periodically snapshots that estimate,
//!    re-runs incremental DSA against it (reusing its [`SimCache`]
//!    across ticks while the estimated profile is unchanged), and
//! 3. when the predicted improvement clears a hysteresis threshold,
//!    commits a *hot migration* of the diverging instances through
//!    [`RelayoutHandle::migrate`](crate::threaded::RelayoutHandle::migrate)
//!    — queues drain, router stripes transfer, the layout epoch bumps,
//!    and not a single in-flight request is lost or double-counted.
//!
//! The controller is deliberately passive: it only acts when [`tick`]
//! is called. Stepped-pacing serving drivers tick synchronously between
//! micro-batches (deterministic decisions at any worker-thread count);
//! wall-pacing drivers tick from a background thread.
//!
//! [`tick`]: AdaptiveController::tick

use crate::threaded::RelayoutHandle;
use bamboo_machine::MachineDescription;
use bamboo_profile::Profile;
use bamboo_schedule::{optimize_with_cache, simulate, DsaOptions, GroupId, InstanceId, SimCache};
use bamboo_telemetry::analyze::{profile_fingerprint, rate_divergence};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// A hot-relayout commit was rejected. The batch is validated before
/// anything mutates, so a failed commit leaves the run exactly as it
/// was.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelayoutError {
    /// A move named an instance the layout does not contain.
    UnknownInstance {
        /// The out-of-range instance index.
        instance: usize,
    },
    /// A move named a destination core outside the deployment.
    UnknownCore {
        /// The out-of-range core index.
        core: usize,
    },
    /// A move targeted a core killed by fault injection.
    DeadCore {
        /// The dead destination core.
        core: usize,
    },
}

impl fmt::Display for RelayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayoutError::UnknownInstance { instance } => {
                write!(f, "relayout names unknown instance {instance}")
            }
            RelayoutError::UnknownCore { core } => {
                write!(f, "relayout names unknown core {core}")
            }
            RelayoutError::DeadCore { core } => {
                write!(f, "relayout targets dead core {core}")
            }
        }
    }
}

impl Error for RelayoutError {}

/// How many recently departed/adopted layout fingerprints the
/// controller remembers to suppress flapping (A→B→A→B oscillation
/// under an alternating workload mix).
const FLAP_MEMORY: usize = 4;

/// Configuration of the adaptive re-layout controller. Sits alongside
/// [`StealPolicy`](crate::deploy::StealPolicy) and
/// [`QuiescencePolicy`](crate::deploy::QuiescencePolicy) in
/// [`RunOptions`](crate::deploy::RunOptions): pass one via
/// [`with_adapt`](crate::deploy::RunOptions::with_adapt) to arm the
/// live estimator, then drive an [`AdaptiveController`] against the
/// run's relayout handle (the serving front-end does this
/// automatically).
#[derive(Clone, Debug)]
pub struct AdaptPolicy {
    /// Minimum time between controller decisions; ticks arriving early
    /// return immediately. `ZERO` decides on every tick.
    pub interval: Duration,
    /// Fractional predicted-makespan improvement a candidate layout
    /// must clear before a migration commits (the hysteresis
    /// threshold). `0.05` = 5%.
    pub min_improvement: f64,
    /// Relayout budget per [`window`](Self::window): further decisions
    /// in the same window are skipped, bounding migration churn.
    pub max_relayouts_per_window: u32,
    /// The budget window.
    pub window: Duration,
    /// Groups pinned to their current cores: instances of these groups
    /// are never migrated.
    pub freeze: Vec<GroupId>,
    /// Seed of the controller's DSA search (decision determinism).
    pub seed: u64,
    /// Invocations the estimator must have observed before the first
    /// decision; below this the model is noise.
    pub min_invocations: u64,
    /// The machine model the controller simulates against (normally
    /// the deployment's synthesis machine).
    pub machine: MachineDescription,
    /// Static profile completing the live estimate for tasks not yet
    /// observed, and the reference for divergence reporting.
    pub baseline: Option<Profile>,
    /// Input label stamped on snapshot profiles.
    pub input: String,
    /// The incremental DSA search configuration. Defaults are cut down
    /// from the offline synthesis defaults (12 iterations, 6 moves per
    /// layout, 16 candidates, serial evaluation) — a controller tick
    /// shares the machine with the workload it is optimizing. Replay is
    /// forced off at tick time: estimated profiles carry aggregate
    /// rates, not sequences.
    pub dsa: DsaOptions,
}

impl AdaptPolicy {
    /// A policy with adaptive defaults for `machine`: decide on every
    /// tick (the serving driver provides the cadence), 5% improvement
    /// threshold, at most 2 relayouts per second, no frozen groups,
    /// 64-invocation warmup.
    pub fn new(machine: MachineDescription) -> Self {
        AdaptPolicy {
            interval: Duration::ZERO,
            min_improvement: 0.05,
            max_relayouts_per_window: 2,
            window: Duration::from_secs(1),
            freeze: Vec::new(),
            seed: 0xB00,
            min_invocations: 64,
            machine,
            baseline: None,
            input: "live".to_string(),
            dsa: DsaOptions {
                max_iterations: 12,
                moves_per_layout: 6,
                max_candidates: 16,
                threads: 1,
                ..DsaOptions::default()
            },
        }
    }

    /// Sets the minimum time between decisions.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the hysteresis improvement threshold (fractional).
    #[must_use]
    pub fn with_min_improvement(mut self, min_improvement: f64) -> Self {
        self.min_improvement = min_improvement;
        self
    }

    /// Sets the relayout budget: at most `relayouts` commits per
    /// `window`.
    #[must_use]
    pub fn with_budget(mut self, relayouts: u32, window: Duration) -> Self {
        self.max_relayouts_per_window = relayouts;
        self.window = window;
        self
    }

    /// Pins `groups` to their current cores.
    #[must_use]
    pub fn with_freeze(mut self, groups: Vec<GroupId>) -> Self {
        self.freeze = groups;
        self
    }

    /// Seeds the controller's DSA search.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the estimator warmup (invocations before the first
    /// decision).
    #[must_use]
    pub fn with_min_invocations(mut self, min_invocations: u64) -> Self {
        self.min_invocations = min_invocations;
        self
    }

    /// Completes the live estimate with a static profile (tasks not
    /// yet observed take its statistics) and enables divergence
    /// reporting against it.
    #[must_use]
    pub fn with_baseline(mut self, baseline: Profile) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Overrides the incremental DSA configuration.
    #[must_use]
    pub fn with_dsa(mut self, dsa: DsaOptions) -> Self {
        self.dsa = dsa;
        self
    }
}

/// What the controller did over its lifetime, for reports and the
/// doctor's `adapt-improves-or-holds` check.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdaptReport {
    /// Ticks received (including interval-gated and warmup ones).
    pub ticks: u64,
    /// Ticks that ran a full estimate→simulate→optimize decision.
    pub decisions: u64,
    /// Relayout batches committed.
    pub relayouts: u64,
    /// Decisions whose winning layout was suppressed because it was
    /// recently departed or adopted (anti-flap memory).
    pub skipped_hysteresis: u64,
    /// Last observed↔baseline exit-rate divergence measured *before*
    /// the first committed relayout ([`rate_divergence`]).
    pub pre_divergence: Option<f64>,
    /// Last divergence measured *after* the first committed relayout.
    pub post_divergence: Option<f64>,
    /// Epochs the committed batches published, in commit order.
    pub epochs: Vec<u64>,
}

/// The adaptive re-layout controller. Owns a [`RelayoutHandle`] onto a
/// live resident run plus the cross-tick search state (persistent
/// [`SimCache`], seeded RNG, anti-flap memory, relayout budget window).
/// See the module docs for the loop it closes.
pub struct AdaptiveController {
    policy: AdaptPolicy,
    handle: RelayoutHandle,
    cache: SimCache,
    /// Fingerprint of the estimated profile the cache was filled
    /// under; when the estimate moves, the cache is invalid (results
    /// are a function of the profile) and is dropped.
    profile_fp: u64,
    /// Fingerprints of recently departed/adopted layouts; a winning
    /// candidate matching one is suppressed (flap damping).
    recent: VecDeque<u64>,
    window_start: Option<Duration>,
    window_count: u32,
    last_decision: Option<Duration>,
    rng: StdRng,
    report: AdaptReport,
}

impl AdaptiveController {
    /// A controller driving `handle` under `policy`. Replay is forced
    /// off in the search's simulator: estimated profiles carry
    /// aggregate rates only.
    pub fn new(policy: AdaptPolicy, handle: RelayoutHandle) -> Self {
        let mut policy = policy;
        policy.dsa.sim.replay = false;
        let rng = StdRng::seed_from_u64(policy.seed);
        AdaptiveController {
            policy,
            handle,
            cache: SimCache::new(),
            profile_fp: 0,
            recent: VecDeque::new(),
            window_start: None,
            window_count: 0,
            last_decision: None,
            rng,
            report: AdaptReport::default(),
        }
    }

    /// The policy the controller runs under.
    pub fn policy(&self) -> &AdaptPolicy {
        &self.policy
    }

    /// The controller's activity so far.
    pub fn report(&self) -> &AdaptReport {
        &self.report
    }

    /// Consumes the controller, returning its final report.
    pub fn into_report(self) -> AdaptReport {
        self.report
    }

    /// One controller step at run-relative time `now` (the caller's
    /// clock: wall time for background drivers, virtual step time for
    /// stepped-pacing drivers — determinism follows from the caller's
    /// clock, the seeded search, and the estimator's drained-queue
    /// snapshot points). Runs the estimate→simulate→optimize decision
    /// when the interval, warmup, and budget gates pass; commits a hot
    /// migration when the winning layout clears the improvement
    /// threshold and the anti-flap memory.
    ///
    /// Returns the committed epoch, or `None` when no migration was
    /// warranted.
    ///
    /// # Errors
    ///
    /// Propagates [`RelayoutError`] from a rejected commit (e.g. a
    /// destination core died between the decision and the commit).
    pub fn tick(&mut self, now: Duration) -> Result<Option<u64>, RelayoutError> {
        self.report.ticks += 1;
        let Some(estimator) = self.handle.estimator() else {
            return Ok(None);
        };
        if let Some(last) = self.last_decision {
            if now < last + self.policy.interval {
                return Ok(None);
            }
        }
        if estimator.invocations() < self.policy.min_invocations {
            return Ok(None);
        }
        self.last_decision = Some(now);
        self.report.decisions += 1;

        // 1. Re-estimate the Markov model from live telemetry.
        let profile = estimator.snapshot(&self.policy.input, self.policy.baseline.as_ref());
        if let Some(baseline) = &self.policy.baseline {
            let divergence = rate_divergence(&profile, baseline);
            if self.report.relayouts == 0 {
                self.report.pre_divergence = Some(divergence);
            } else {
                self.report.post_divergence = Some(divergence);
            }
        }
        let fp = profile_fingerprint(&profile);
        if fp != self.profile_fp {
            // Memoized results are a function of the profile.
            self.cache = SimCache::new();
            self.profile_fp = fp;
        }

        // 2. Incremental DSA from the live layout under the estimate.
        let spec = self.handle.spec().clone();
        let graph = self.handle.graph().clone();
        let current = self.handle.current_layout();
        let here = simulate(
            &spec,
            &graph,
            &current,
            &profile,
            &self.policy.machine,
            &self.policy.dsa.sim,
        );
        let current_fp = current.fingerprint(&graph);
        let (best, best_result, _stats) = optimize_with_cache(
            &spec,
            &graph,
            &profile,
            &self.policy.machine,
            vec![current.clone()],
            &self.policy.dsa,
            &mut self.rng,
            &mut self.cache,
        );

        // 3. Hysteresis: only a clear predicted win is worth churn.
        if here.makespan == 0 {
            return Ok(None);
        }
        let improvement =
            (here.makespan as f64 - best_result.makespan as f64) / here.makespan as f64;
        if improvement < self.policy.min_improvement {
            return Ok(None);
        }

        // 4. Diff the winner against the live assignment.
        let mut moves: Vec<(InstanceId, usize)> = Vec::new();
        for (i, inst) in best.instances.iter().enumerate() {
            let live = current.instances[i].core.index();
            let target = inst.core.index();
            if target == live
                || self.policy.freeze.contains(&inst.group)
                || self.handle.is_core_dead(target)
            {
                continue;
            }
            moves.push((InstanceId(i as u32), target));
        }
        if moves.is_empty() {
            return Ok(None);
        }

        // 5. Anti-flap: suppress a winner we recently departed or
        // adopted (an alternating mix would otherwise bounce the same
        // instances back and forth every window).
        let best_fp = best.fingerprint(&graph);
        if self.recent.contains(&best_fp) {
            self.report.skipped_hysteresis += 1;
            return Ok(None);
        }

        // 6. Budget: bounded churn per window.
        match self.window_start {
            Some(start) if now < start + self.policy.window => {
                if self.window_count >= self.policy.max_relayouts_per_window {
                    return Ok(None);
                }
            }
            _ => {
                self.window_start = Some(now);
                self.window_count = 0;
            }
        }

        // 7. Commit.
        let epoch = self.handle.migrate(&moves)?;
        self.window_count += 1;
        self.report.relayouts += 1;
        self.report.epochs.push(epoch);
        for fp in [current_fp, best_fp] {
            if !self.recent.contains(&fp) {
                self.recent.push_back(fp);
                if self.recent.len() > FLAP_MEMORY {
                    self.recent.pop_front();
                }
            }
        }
        Ok(Some(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relayout_error_displays() {
        assert_eq!(
            RelayoutError::UnknownInstance { instance: 7 }.to_string(),
            "relayout names unknown instance 7"
        );
        assert_eq!(
            RelayoutError::UnknownCore { core: 9 }.to_string(),
            "relayout names unknown core 9"
        );
        assert_eq!(
            RelayoutError::DeadCore { core: 3 }.to_string(),
            "relayout targets dead core 3"
        );
    }

    #[test]
    fn policy_builders_compose() {
        let machine = bamboo_machine::MachineDescription::tilepro64();
        let policy = AdaptPolicy::new(machine)
            .with_interval(Duration::from_millis(10))
            .with_min_improvement(0.2)
            .with_budget(1, Duration::from_millis(500))
            .with_freeze(vec![GroupId(0)])
            .with_seed(42)
            .with_min_invocations(8);
        assert_eq!(policy.interval, Duration::from_millis(10));
        assert_eq!(policy.min_improvement, 0.2);
        assert_eq!(policy.max_relayouts_per_window, 1);
        assert_eq!(policy.window, Duration::from_millis(500));
        assert_eq!(policy.freeze, vec![GroupId(0)]);
        assert_eq!(policy.seed, 42);
        assert_eq!(policy.min_invocations, 8);
    }
}
