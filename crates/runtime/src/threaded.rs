//! The threaded executor: real OS threads, real locks.
//!
//! One worker thread per core of the layout. Objects are owned by
//! messages: a worker holds the objects currently enqueued in its
//! parameter sets and forwards objects to other workers over crossbeam
//! channels, exactly as the paper's runtime sends objects between tiles
//! (§4.7). Before executing an invocation the worker *try-locks* every
//! parameter object's lock class in a global lock table (sorted order, no
//! deadlock); on failure it releases everything and tries a different
//! invocation — Bamboo's transactional task semantics, with no aborts and
//! no rollback. Lock classes merge per the disjointness analysis's
//! [`bamboo_analysis::LockPlan`]s.
//!
//! The dispatch hot path (see DESIGN.md "The threaded hot path"):
//!
//! - **Sharded routing** — routing state is striped per core in a
//!   [`ShardedRouter`]; concurrent sends from different cores never
//!   contend.
//! - **Work stealing** — formed invocations sit in per-core bounded run
//!   queues; an idle core may steal an invocation whose group also has
//!   an instance on it (replicas are interchangeable by the paper's
//!   data-parallelization rule).
//! - **Event-driven quiescence** — the worker that drops the activity
//!   count to zero signals the driver thread through a condvar; no
//!   sleep-polling latency floor.
//!
//! This executor demonstrates genuine concurrent semantics; performance
//! numbers come from the virtual-time executor (see DESIGN.md §2 — the
//! host machine's core count is unrelated to the modeled TILEPro64).

use crate::chaos::FaultPlan;
use crate::cost::CostModel;
use crate::deploy::{Deployment, QuiescencePolicy, RunOptions, StealPolicy};
use crate::ledger::{Completion, RequestLedger};
use crate::program::{NativePayload, Program, TaskCtx};
use crate::router::ShardedRouter;
use bamboo_analysis::{DisjointnessAnalysis, UnionFind};
use bamboo_lang::ids::{ClassId, ExitId, ParamIdx, TagTypeId, TaskId};
use bamboo_lang::interp::TagInstance;
use bamboo_lang::spec::{FlagOrTagAction, FlagSet, ProgramSpec};
use bamboo_profile::Cycles;
use bamboo_schedule::{GroupGraph, InstanceId, Layout, RouteDecision};
use bamboo_telemetry::analyze::LiveEstimator;
use bamboo_telemetry::event::{fault_code, recover_code};
use bamboo_telemetry::{Counter, Telemetry, TimeUnit, WorkerSink, NO_ID};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

use crate::adapt::{AdaptPolicy, RelayoutError};

use crate::virtual_exec::ExecError;

/// An object in flight or enqueued at a worker.
struct TObject {
    class: ClassId,
    flags: FlagSet,
    tags: Vec<(TagTypeId, TagInstance)>,
    payload: NativePayload,
    lock: usize,
    /// Invocation that released or created this object ([`NO_ID`] for
    /// the driver-injected startup object). Carried with the object so
    /// the consuming invocation's causal edge survives forwarding and
    /// work stealing.
    producer: u64,
    /// Message id minted by the send currently carrying the object.
    msg: u64,
    /// Core that performed that send ([`NO_ID`] for the driver).
    src_core: u64,
    /// The serving request this object belongs to. Every object
    /// descends from exactly one injected root object and inherits its
    /// request id through release, creation, forwarding, and stealing
    /// (request isolation — see `form_all`). Batch runs use a single
    /// request for the whole run.
    request: u64,
    /// Instance the carrying send targeted (the object's buffering
    /// home). Re-read on delivery so an object that raced a hot
    /// relayout chases its instance to the instance's current core.
    instance: InstanceId,
}

enum Message {
    Deliver(Box<TObject>),
    /// Wakes a blocked worker so it re-checks its run queue and its
    /// steal peers. Carries no activity.
    Poke,
    /// A request completed: evict its leftover buffered objects to the
    /// graveyard. Safe because a request's ledger count reaching zero
    /// is final — no new work for it can appear. Carries no activity.
    Sweep(u64),
    /// A hot relayout moved `instance` off this core: drain its
    /// buffered parameter-set objects by re-sending them (the live
    /// assignment already points at the new host, so `send` routes them
    /// there). Carries no activity; the drain mints fresh units before
    /// each hand-off, exactly like the failover drain.
    Migrate(InstanceId),
    Shutdown,
}

/// Global lock table: per-object lock classes with union-find merging.
struct LockTable {
    uf: Mutex<UnionFind>,
    mutexes: Mutex<Vec<Arc<Mutex<()>>>>,
}

impl LockTable {
    fn new() -> Self {
        LockTable {
            uf: Mutex::new(UnionFind::new(0)),
            mutexes: Mutex::new(Vec::new()),
        }
    }

    fn fresh(&self) -> usize {
        // Both pushes happen under the union-find lock: two interleaved
        // allocations would otherwise let the second caller return an id
        // whose mutex slot is not pushed yet, and a concurrent
        // `try_lock_all` on that id would index past the table. (Safe
        // lock order: `try_lock_all` never holds `uf` while taking
        // `mutexes`.)
        let mut uf = self.uf.lock();
        let id = uf.push();
        self.mutexes.lock().push(Arc::new(Mutex::new(())));
        drop(uf);
        id
    }

    fn merge(&self, a: usize, b: usize) {
        self.uf.lock().union(a, b);
    }

    /// Try-locks the lock classes of `ids` in sorted order; returns guards
    /// or `None` if any class is contended (everything acquired is
    /// released by dropping).
    fn try_lock_all(
        &self,
        ids: &[usize],
    ) -> Option<Vec<parking_lot::ArcMutexGuard<parking_lot::RawMutex, ()>>> {
        let mut reps: Vec<usize> = {
            let mut uf = self.uf.lock();
            ids.iter().map(|&i| uf.find(i)).collect()
        };
        reps.sort_unstable();
        reps.dedup();
        let mutexes = self.mutexes.lock();
        let handles: Vec<Arc<Mutex<()>>> = reps.iter().map(|&r| mutexes[r].clone()).collect();
        drop(mutexes);
        let mut guards = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.try_lock_arc() {
                Some(guard) => guards.push(guard),
                None => return None,
            }
        }
        Some(guards)
    }
}

struct Shared {
    program: Program,
    graph: GroupGraph,
    layout: Layout,
    /// Live instance→core assignment, indexed by instance id. `layout`
    /// stays the immutable synthesis artifact (group membership, slot
    /// shapes); a hot relayout mutates only this table, and every send
    /// resolves its destination core through it.
    assignment: Vec<AtomicUsize>,
    /// Bumped once per committed relayout. Workers compare it against
    /// their cached assigned-instance list on each delivery and rebuild
    /// the cache when it moved (one atomic load on the hot path).
    epoch: AtomicU64,
    /// Serializes relayout commits so each batch's stripe transfers and
    /// assignment swaps land atomically with respect to other commits.
    relayout_lock: Mutex<()>,
    /// Instances migrated by hot relayouts. Mirrors the
    /// `relayout.migrations` counter.
    relayout_tally: AtomicU64,
    /// Live profile estimator feeding the adaptive controller (`None`
    /// unless the run was started with an [`AdaptPolicy`]).
    estimator: Option<Arc<LiveEstimator>>,
    locks_analysis: DisjointnessAnalysis,
    lock_table: LockTable,
    router: ShardedRouter,
    /// Messages in flight + formed-but-incomplete invocations. Zero means
    /// quiescence: every increment happens *before* the matching work is
    /// handed off, and every decrement *after* all follow-on work was
    /// counted, so the count never transiently dips to zero.
    activity: AtomicI64,
    /// Lock + condvar the driver thread parks on; the worker that drops
    /// `activity` to zero notifies under the lock (no lost wakeups).
    quiesce: StdMutex<()>,
    quiesce_cv: Condvar,
    /// Per-request mirror of `activity`: outstanding-invocation
    /// refcounts keyed by request id, so a resident deployment detects
    /// each request's completion without waiting for global quiescence.
    ledger: RequestLedger,
    /// Whether a completed request's leftover buffered objects are
    /// swept to the graveyard (resident mode; batch runs keep the
    /// legacy drain-at-shutdown semantics).
    sweep_on_complete: bool,
    invocations: AtomicU64,
    body_cycles: AtomicU64,
    next_tag: AtomicU64,
    /// Invocation-id mint (ids start at 1; 0 is never issued so
    /// [`NO_ID`] and "unset" stay unambiguous in event streams).
    next_inv: AtomicU64,
    /// Message-id mint (ids start at 1).
    next_msg: AtomicU64,
    steal_tally: AtomicU64,
    retry_tally: AtomicU64,
    /// Run-queue overflow sheds: invocations that entered `enqueue_ready`
    /// past the owner's soft queue bound and were handed to the
    /// least-loaded live same-group core. Mirrors the `router.shed`
    /// counter.
    shed_tally: AtomicU64,
    senders: Vec<Sender<Message>>,
    /// Per-core run queues of formed invocations (bounded softly by
    /// `queue_cap`; owners push/pop the front, thieves take the back).
    ready: Vec<Mutex<VecDeque<PendingInv>>>,
    /// Whether each worker is parked in `recv` (set before blocking,
    /// cleared on wake); `poke` swaps it to decide whether to send.
    idle: Vec<AtomicBool>,
    /// Cores hosting an instance of each group (deduped). Groups with
    /// ≥ 2 entries are stealable across those cores.
    group_cores: Vec<Vec<usize>>,
    /// `hosted[core][group]`: whether `core` hosts an instance of
    /// `group` (steal legality check).
    hosted: Vec<Vec<bool>>,
    /// Per-core steal victims: cores sharing at least one multi-core
    /// group with this core.
    steal_peers: Vec<Vec<usize>>,
    steal_enabled: bool,
    queue_cap: usize,
    /// Collects objects that left dispatch (for result extraction).
    graveyard: Sender<Box<TObject>>,
    /// Compiled fault-injection plan (`None` = fault-free run).
    chaos: Option<FaultPlan>,
    /// First unrecoverable fault, if any. Setting it wakes the
    /// quiescence waiter, so a run that loses a core errors out instead
    /// of hanging on activity that will never drain.
    failure: StdMutex<Option<ExecError>>,
    /// Injected faults that fired (kills, stalls, drops, delays,
    /// slowdowns). Mirrors the `chaos.faults` counter.
    faults_injected: AtomicU64,
    /// Completed recovery actions (redeliveries, reroutes, failover
    /// drains). Mirrors the `chaos.recoveries` counter.
    recovery_tally: AtomicU64,
    telemetry: Telemetry,
    dispatches: Counter,
    lock_retries: Counter,
    bytes_sent: Counter,
    steals: Counter,
    shed_counter: Counter,
    fault_counter: Counter,
    recover_counter: Counter,
    relayout_counter: Counter,
}

/// Estimated wire size of one object, matching the virtual executor's
/// default of 16 payload words (the threaded executor moves `Box`ed
/// payloads, so this is an estimate for telemetry, not a transfer cost).
const OBJ_BYTES_ESTIMATE: u64 = 16 * 8;

impl Shared {
    fn spec(&self) -> &ProgramSpec {
        &self.program.spec
    }

    fn mint_tag(&self) -> TagInstance {
        TagInstance(self.next_tag.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Sends `obj` to the worker owning `instance`, stamping it with a
    /// fresh message id and the sending core (`src`, [`NO_ID`] for the
    /// driver). Returns the destination core and the minted message id
    /// so callers can record the transfer.
    ///
    /// Under a fault plan this is the wire: the message id decides (as
    /// a pure hash of the plan's seed) whether the message is dropped —
    /// redelivered with exponential backoff, charged to the sender — or
    /// delayed in flight. A destination on a dead core is re-striped to
    /// a live host of the same group; with none left the run fails with
    /// [`ExecError::CoreLost`] (the object retires to the graveyard and
    /// no activity is counted, so quiescence still resolves).
    fn send(
        &self,
        src: u64,
        instance: InstanceId,
        obj: Box<TObject>,
        sink: &mut WorkerSink,
    ) -> (usize, u64) {
        self.send_impl(src, instance, obj, sink, false)
    }

    /// [`Self::send`] for *adopted* objects — buffered leftovers
    /// re-sent by a hot-migration or failover drain. Identical wire
    /// semantics, except the ledger unit is only counted when the
    /// request is still open: a completed request's leftovers travel
    /// under global activity alone, so the completion never fires
    /// twice ([`RequestLedger::inc_if_open`]).
    fn send_adopted(
        &self,
        src: u64,
        instance: InstanceId,
        obj: Box<TObject>,
        sink: &mut WorkerSink,
    ) -> (usize, u64) {
        self.send_impl(src, instance, obj, sink, true)
    }

    fn send_impl(
        &self,
        src: u64,
        instance: InstanceId,
        mut obj: Box<TObject>,
        sink: &mut WorkerSink,
        adopt: bool,
    ) -> (usize, u64) {
        let msg = self.next_msg.fetch_add(1, Ordering::Relaxed) + 1;
        obj.msg = msg;
        obj.src_core = src;
        obj.instance = instance;
        let request = obj.request;
        // Simulated wire faults apply to worker sends only; the driver's
        // startup injection is exempt so every run has work to lose.
        if src != NO_ID {
            if let Some(plan) = &self.chaos {
                let drops = plan.drop_attempts(msg);
                if drops > 0 {
                    self.faults_injected
                        .fetch_add(u64::from(drops), Ordering::Relaxed);
                    self.fault_counter.add(u64::from(drops));
                    sink.fault(sink.now(), fault_code::MSG_DROP, u64::from(drops), msg);
                    let mut lost = drops >= plan.max_redeliveries();
                    let mut waited = Duration::ZERO;
                    for attempt in 0..drops {
                        let pause = plan.backoff(attempt);
                        if waited + pause > plan.message_deadline() {
                            lost = true;
                            break;
                        }
                        waited += pause;
                        std::thread::sleep(pause);
                    }
                    if lost {
                        self.fail(ExecError::MessageLost { msg });
                        let core = self.core_of(instance);
                        let _ = self.graveyard.send(obj);
                        return (core, msg);
                    }
                    self.recovery_tally.fetch_add(1, Ordering::Relaxed);
                    self.recover_counter.inc();
                    sink.recover(sink.now(), recover_code::REDELIVER, u64::from(drops), msg);
                }
                if let Some(delay) = plan.delay_of(msg) {
                    self.faults_injected.fetch_add(1, Ordering::Relaxed);
                    self.fault_counter.inc();
                    sink.fault(
                        sink.now(),
                        fault_code::MSG_DELAY,
                        delay.as_nanos() as u64,
                        msg,
                    );
                    std::thread::sleep(delay);
                }
            }
        }
        let mut core = self.core_of(instance);
        if self.router.is_dead(core) {
            match self.failover_core(instance, msg) {
                Some(live) => {
                    self.recovery_tally.fetch_add(1, Ordering::Relaxed);
                    self.recover_counter.inc();
                    sink.recover(sink.now(), recover_code::REROUTE, live as u64, msg);
                    core = live;
                }
                None => {
                    self.fail(ExecError::CoreLost { core });
                    let _ = self.graveyard.send(obj);
                    return (core, msg);
                }
            }
        }
        self.activity.fetch_add(1, Ordering::SeqCst);
        if adopt {
            self.ledger.inc_if_open(request);
        } else {
            self.ledger.inc(request);
        }
        match self.senders[core].send(Message::Deliver(obj)) {
            Ok(()) => self.bytes_sent.add(OBJ_BYTES_ESTIMATE),
            Err(returned) => {
                // Reachable only through a dead core's forwarder racing
                // shutdown: the destination worker already exited. Retire
                // the object so results stay extractable (the graveyard
                // is drained after the join).
                assert!(self.chaos.is_some(), "worker channel open during execution");
                if let Message::Deliver(obj) = returned.into_inner() {
                    let _ = self.graveyard.send(obj);
                }
                self.release_activity(request, sink);
            }
        }
        (core, msg)
    }

    /// Picks a live same-group host for an instance whose home core is
    /// dead, keyed deterministically by the message id. `None` when
    /// recovery is off, stealing is off (replica interchangeability is
    /// the correctness argument for both), or no live host remains.
    fn failover_core(&self, instance: InstanceId, key: u64) -> Option<usize> {
        let recoverable = self.chaos.as_ref().is_some_and(|p| p.recovery_enabled());
        if !recoverable || !self.steal_enabled {
            return None;
        }
        let group = self.group_of_instance(instance);
        self.router.restripe(&self.group_cores[group], key)
    }

    /// Records the first unrecoverable fault and wakes the quiescence
    /// waiter so the driver stops waiting on activity that will never
    /// drain. Later failures are ignored (first error wins).
    fn fail(&self, err: ExecError) {
        let mut slot = self.failure.lock().expect("failure mutex");
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        let _guard = self.quiesce.lock().expect("quiescence mutex");
        self.quiesce_cv.notify_all();
    }

    /// Whether an unrecoverable fault has been recorded.
    fn failed(&self) -> bool {
        self.failure.lock().expect("failure mutex").is_some()
    }

    /// Releases one unit of activity for `request`; mirrors the global
    /// decrement into the request ledger. The release that drains a
    /// request records its completion event (and broadcasts a sweep in
    /// resident mode); the release that reaches global zero wakes the
    /// quiescence waiter.
    fn release_activity(&self, request: u64, sink: &mut WorkerSink) {
        if let Some(done) = self.ledger.dec(request) {
            sink.req_complete(sink.now(), done.request, done.invocations);
            if self.sweep_on_complete {
                for tx in &self.senders {
                    let _ = tx.send(Message::Sweep(request));
                }
            }
        }
        if self.activity.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.quiesce.lock().expect("quiescence mutex");
            self.quiesce_cv.notify_all();
        }
    }

    /// Wakes `core` if it is parked; the idle-flag swap guarantees at
    /// most one poke per park and none to running workers.
    fn poke(&self, core: usize) {
        if self.idle[core].swap(false, Ordering::SeqCst) {
            let _ = self.senders[core].send(Message::Poke);
        }
    }

    fn group_of_instance(&self, inst: InstanceId) -> usize {
        self.layout.instances[inst.index()].group.index()
    }

    /// The core currently hosting `inst` per the live assignment table
    /// (the layout's static `core_of` is only the epoch-0 placement).
    fn core_of(&self, inst: InstanceId) -> usize {
        self.assignment[inst.index()].load(Ordering::Acquire)
    }

    /// The live layout artifact: the synthesis layout's group topology
    /// with every instance's core overwritten from the assignment
    /// table. This is what epoch `n` actually routes with.
    fn current_layout(&self) -> Layout {
        let mut layout = self.layout.clone();
        for (i, inst) in layout.instances.iter_mut().enumerate() {
            inst.core = bamboo_machine::CoreId::new(self.assignment[i].load(Ordering::Acquire));
        }
        layout
    }

    /// Enqueues a formed invocation. The owner's queue is preferred;
    /// past the soft bound the invocation is shed to the least-loaded
    /// core hosting the same group (stealing must be enabled — the same
    /// interchangeability argument makes both legal). Idle same-group
    /// peers are poked whenever the queue holds more work than the
    /// owner can start immediately.
    fn enqueue_ready(&self, core: usize, inv: PendingInv) {
        let group = self.group_of_instance(inv.instance);
        let stealable = self.steal_enabled && self.group_cores[group].len() > 1;
        if !stealable {
            self.ready[core].lock().push_back(inv);
            return;
        }
        let mut queue = self.ready[core].lock();
        if queue.len() < self.queue_cap {
            queue.push_back(inv);
            let surplus = queue.len() > 1;
            drop(queue);
            if surplus {
                for &peer in &self.group_cores[group] {
                    if peer != core {
                        self.poke(peer);
                    }
                }
            }
            return;
        }
        drop(queue);
        // Shed: the owner's queue is full; hand the invocation to the
        // least-loaded *live* same-group core (never holding two queue
        // locks). Counted in `router.shed` so overload is visible
        // instead of silently rebalanced.
        self.shed_tally.fetch_add(1, Ordering::Relaxed);
        self.shed_counter.inc();
        let target = self.group_cores[group]
            .iter()
            .copied()
            .filter(|&c| c != core && !self.router.is_dead(c))
            .min_by_key(|&c| self.ready[c].lock().len())
            .unwrap_or(core);
        self.ready[target].lock().push_back(inv);
        if target != core {
            self.poke(target);
        }
    }

    /// Attempts to steal one invocation for `thief`: scans its peers'
    /// queues from the back (owners work the front) for an invocation
    /// whose group also has an instance on the thief. `rotation`
    /// staggers the scan order so thieves spread across victims. A
    /// successful theft is recorded into `sink` with the victim core,
    /// keeping the stolen invocation causally attributable.
    fn try_steal(
        &self,
        thief: usize,
        rotation: usize,
        sink: &mut WorkerSink,
    ) -> Option<PendingInv> {
        let peers = &self.steal_peers[thief];
        if peers.is_empty() {
            return None;
        }
        for i in 0..peers.len() {
            let victim = peers[(i + rotation) % peers.len()];
            // A contended victim queue is being worked; move on rather
            // than serialize behind it.
            let Some(mut queue) = self.ready[victim].try_lock() else {
                continue;
            };
            let eligible = queue
                .iter()
                .rposition(|inv| self.hosted[thief][self.group_of_instance(inv.instance)]);
            if let Some(idx) = eligible {
                let inv = queue.remove(idx).expect("index from rposition");
                drop(queue);
                self.steal_tally.fetch_add(1, Ordering::Relaxed);
                self.steals.inc();
                sink.steal(sink.now(), inv.id, victim as u64);
                return Some(inv);
            }
        }
        None
    }
}

/// A finished-object payload failed to downcast to the requested type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PayloadTypeError {
    /// The class whose payloads were requested.
    pub class: ClassId,
    /// Position of the offending object within that class's finished
    /// objects.
    pub index: usize,
    /// The requested Rust type.
    pub expected: &'static str,
}

impl fmt::Display for PayloadTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "payload {} of class {:?} is not a {}",
            self.index, self.class, self.expected
        )
    }
}

impl Error for PayloadTypeError {}

/// A completed run of the threaded executor.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Invocations executed across all workers.
    pub invocations: u64,
    /// Total body cycles charged.
    pub body_cycles: Cycles,
    /// Invocations executed by a core other than the one that formed
    /// them (work stealing). Mirrors the `threaded.steals` counter.
    pub steals: u64,
    /// Failed try-lock-all attempts across the run. Mirrors the
    /// `threaded.lock_retries` counter.
    pub lock_retries: u64,
    /// Route calls that found their router stripe locked. Mirrors the
    /// `threaded.router_contention` counter (reported here even when
    /// telemetry is disabled).
    pub router_contention: u64,
    /// Invocations shed off their forming core's full run queue to a
    /// same-group peer (`enqueue_ready`'s overflow path). Zero in any
    /// clean under-capacity run. Mirrors the `router.shed` counter.
    pub router_shed: u64,
    /// Final objects' class and payload, for result extraction.
    pub finished: Vec<(ClassId, NativePayload)>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Injected faults that fired during the run (kills, stalls, drops,
    /// delays, lock slowdowns). Zero on fault-free runs. Mirrors the
    /// `chaos.faults` counter.
    pub faults_injected: u64,
    /// Recovery actions completed (redeliveries, reroutes, failover
    /// drains). Mirrors the `chaos.recoveries` counter.
    pub recovery_actions: u64,
    /// Instances migrated by hot relayouts during the run. Zero unless
    /// an adaptive controller committed at least one relayout. Mirrors
    /// the `relayout.migrations` counter.
    pub relayouts: u64,
    /// The layout epoch at shutdown (0 = the synthesized layout ran
    /// unchanged; each committed relayout batch bumps it once).
    pub layout_epoch: u64,
    /// Rendered fault schedule of the run's compiled plan (`None` on
    /// fault-free runs). Byte-identical for identical
    /// [`crate::chaos::FaultSpec`] + deployment topology — the
    /// determinism contract CI's chaos gate checks.
    pub fault_schedule: Option<String>,
}

impl ThreadedReport {
    /// Returns the payloads of finished objects of `class`, downcast to
    /// `T`.
    ///
    /// # Errors
    ///
    /// Returns [`PayloadTypeError`] if a payload of that class is not a
    /// `T`.
    pub fn try_payloads_of<T: 'static>(&self, class: ClassId) -> Result<Vec<&T>, PayloadTypeError> {
        self.finished
            .iter()
            .filter(|(c, _)| *c == class)
            .enumerate()
            .map(|(index, (_, p))| {
                p.downcast_ref::<T>().ok_or(PayloadTypeError {
                    class,
                    index,
                    expected: std::any::type_name::<T>(),
                })
            })
            .collect()
    }

    /// Like [`Self::try_payloads_of`], panicking on a type mismatch.
    ///
    /// # Panics
    ///
    /// Panics if a payload of that class is not a `T`.
    pub fn payloads_of<T: 'static>(&self, class: ClassId) -> Vec<&T> {
        self.try_payloads_of(class)
            .unwrap_or_else(|e| panic!("payload type mismatch: {e}"))
    }
}

/// Executes native programs on real threads. See the module docs.
#[derive(Debug)]
pub struct ThreadedExecutor {
    _cost: CostModel,
}

impl ThreadedExecutor {
    /// Creates an executor. The cost model is accepted for interface
    /// symmetry with the virtual executor; the threaded executor reports
    /// real wall time plus body-charged cycles.
    #[deprecated(
        since = "0.7.0",
        note = "the cost model is unused here; go through the `DeploymentHandle` \
                lifecycle in the `bamboo` crate, or use `ThreadedExecutor::default()`"
    )]
    pub fn new(cost: CostModel) -> Self {
        ThreadedExecutor { _cost: cost }
    }

    /// Runs `deployment` with one thread per core, configured by
    /// `options` (startup payload, telemetry session, steal policy,
    /// quiescence protocol).
    ///
    /// With an enabled [`Telemetry`] session the run records dispatch,
    /// contention, traffic, and channel-occupancy events (timestamps in
    /// nanoseconds since the session's creation) plus the
    /// `threaded.steals` / `threaded.lock_retries` /
    /// `threaded.router_contention` counters. With
    /// [`Telemetry::disabled`] every recording site is a no-op and the
    /// dispatch hot path performs no telemetry allocations.
    ///
    /// With [`RunOptions::with_faults`] the run compiles the spec into a
    /// deterministic [`FaultPlan`] and injects it: core kills, stalls,
    /// message drops/delays, and lock slowdowns, each recorded as
    /// `fault.*` / `recover.*` telemetry. Recoverable faults leave the
    /// result identical to a fault-free run; unrecoverable ones fail
    /// fast instead of hanging.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NativeOnly`] for interpreted programs,
    /// [`ExecError::CoreLost`] when a killed core's work has no live
    /// same-group host (or recovery/stealing is disabled), and
    /// [`ExecError::MessageLost`] when a message exhausts its
    /// redelivery budget.
    pub fn run(
        &self,
        deployment: &Deployment,
        mut options: RunOptions,
    ) -> Result<ThreadedReport, ExecError> {
        let payload = options.startup.take().unwrap_or_else(|| Box::new(()));
        // Batch mode: one request for the whole run, no sweeping —
        // leftover buffered objects drain at shutdown exactly as
        // before the request-ledger refactor.
        let mut run = self.start_with(deployment, options, false)?;
        run.inject(payload);
        run.shutdown()
    }

    /// Starts `deployment` resident: workers spawn and wait for work,
    /// and the returned [`ResidentRun`] injects root objects on demand
    /// ([`ResidentRun::inject`]), each as its own *request* whose
    /// completion is detected individually through the request ledger
    /// (see [`crate::ledger::RequestLedger`]) instead of by global
    /// quiescence. Completed requests have their leftover buffered
    /// objects swept to the result graveyard immediately, so a
    /// long-running server's parameter sets do not accumulate garbage.
    ///
    /// `options.startup` is ignored — payloads arrive per injection.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NativeOnly`] for interpreted programs.
    pub fn start(
        &self,
        deployment: &Deployment,
        options: RunOptions,
    ) -> Result<ResidentRun, ExecError> {
        self.start_with(deployment, options, true)
    }

    fn start_with(
        &self,
        deployment: &Deployment,
        options: RunOptions,
        sweep_on_complete: bool,
    ) -> Result<ResidentRun, ExecError> {
        let Deployment {
            program,
            graph,
            layout,
            locks,
        } = deployment;
        if !program.is_native() {
            return Err(ExecError::NativeOnly);
        }
        let telemetry = &options.telemetry;
        telemetry.set_time_unit(TimeUnit::Nanos);
        let start = std::time::Instant::now();
        let core_count = layout.core_count;
        let mut senders = Vec::with_capacity(core_count);
        let mut receivers = Vec::with_capacity(core_count);
        for _ in 0..core_count {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(rx);
        }
        let (grave_tx, grave_rx) = unbounded::<Box<TObject>>();

        // Steal topology: which cores host which groups.
        let group_count = graph.groups.len();
        let mut hosted = vec![vec![false; group_count]; core_count];
        for inst in &layout.instances {
            hosted[inst.core.index()][inst.group.index()] = true;
        }
        let group_cores: Vec<Vec<usize>> = (0..group_count)
            .map(|g| (0..core_count).filter(|&c| hosted[c][g]).collect())
            .collect();
        let steal_peers: Vec<Vec<usize>> = (0..core_count)
            .map(|c| {
                (0..core_count)
                    .filter(|&peer| {
                        peer != c
                            && (0..group_count).any(|g| {
                                hosted[c][g] && hosted[peer][g] && group_cores[g].len() > 1
                            })
                    })
                    .collect()
            })
            .collect();

        let router_shards = match options.router {
            crate::deploy::RouterPolicy::Sharded => core_count,
            crate::deploy::RouterPolicy::Global => 1,
        };
        // Compile the fault plan against the steal topology so kill
        // targeting can prove every victim's groups survive elsewhere.
        let chaos = options
            .faults
            .as_ref()
            .map(|fspec| FaultPlan::compile(fspec, &group_cores, &hosted));
        let (ledger, completions) = RequestLedger::new();
        let queue_cap = options.queue_capacity();
        let adapt = options.adapt;
        let estimator = adapt
            .as_ref()
            .map(|_| Arc::new(LiveEstimator::new(&program.spec)));
        let shared = Arc::new(Shared {
            program: program.clone(),
            graph: graph.clone(),
            layout: layout.clone(),
            assignment: layout
                .instances
                .iter()
                .map(|inst| AtomicUsize::new(inst.core.index()))
                .collect(),
            epoch: AtomicU64::new(0),
            relayout_lock: Mutex::new(()),
            relayout_tally: AtomicU64::new(0),
            estimator,
            locks_analysis: locks.clone(),
            lock_table: LockTable::new(),
            router: ShardedRouter::new(
                router_shards,
                core_count,
                telemetry.counter("threaded.router_contention"),
            ),
            activity: AtomicI64::new(0),
            quiesce: StdMutex::new(()),
            quiesce_cv: Condvar::new(),
            ledger,
            sweep_on_complete,
            invocations: AtomicU64::new(0),
            body_cycles: AtomicU64::new(0),
            next_tag: AtomicU64::new(0),
            next_inv: AtomicU64::new(0),
            next_msg: AtomicU64::new(0),
            steal_tally: AtomicU64::new(0),
            retry_tally: AtomicU64::new(0),
            shed_tally: AtomicU64::new(0),
            senders,
            ready: (0..core_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            idle: (0..core_count).map(|_| AtomicBool::new(false)).collect(),
            group_cores,
            hosted,
            steal_peers,
            steal_enabled: options.steal == StealPolicy::SameGroup,
            queue_cap,
            graveyard: grave_tx,
            chaos,
            failure: StdMutex::new(None),
            faults_injected: AtomicU64::new(0),
            recovery_tally: AtomicU64::new(0),
            telemetry: telemetry.clone(),
            dispatches: telemetry.counter("threaded.dispatches"),
            lock_retries: telemetry.counter("threaded.lock_retries"),
            bytes_sent: telemetry.counter("threaded.bytes_sent"),
            steals: telemetry.counter("threaded.steals"),
            shed_counter: telemetry.counter("router.shed"),
            fault_counter: telemetry.counter("chaos.faults"),
            recover_counter: telemetry.counter("chaos.recoveries"),
            relayout_counter: telemetry.counter("relayout.migrations"),
        });

        // Spawn workers.
        let mut handles = Vec::with_capacity(core_count);
        for (core, rx) in receivers.into_iter().enumerate() {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || worker_loop(core, rx, shared)));
        }

        // In resident mode the driver records its ingress events
        // (admissions, injections) on a pseudo-core one past the last
        // worker. Batch mode keeps the pre-ledger telemetry shape: the
        // single startup injection is not an ingress event, so the
        // per-core ledger still partitions over exactly the worker
        // cores.
        let driver_sink = if sweep_on_complete {
            telemetry.worker(core_count)
        } else {
            WorkerSink::disabled()
        };
        Ok(ResidentRun {
            shared,
            handles,
            grave_rx,
            completions,
            driver_sink,
            next_request: 1,
            quiescence: options.quiescence,
            quiescence_settle: options.quiescence_settle,
            start,
            adapt,
        })
    }
}

/// A resident threaded deployment: workers are live and waiting; root
/// objects are injected per request and completions surface through
/// [`ResidentRun::try_completions`]. Obtained from
/// [`ThreadedExecutor::start`]; consumed by [`ResidentRun::shutdown`].
pub struct ResidentRun {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    grave_rx: Receiver<Box<TObject>>,
    completions: Receiver<Completion>,
    driver_sink: WorkerSink,
    next_request: u64,
    quiescence: QuiescencePolicy,
    quiescence_settle: Duration,
    start: std::time::Instant,
    /// The adapt policy the run was started with, parked here for the
    /// serving front-end to claim ([`Self::take_adapt_policy`]).
    adapt: Option<AdaptPolicy>,
}

impl ResidentRun {
    /// Number of worker cores.
    pub fn core_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// The request id the next injection will receive (ids start at 1
    /// and increase by injection order). The serving front-end peeks
    /// this to stamp arrival events with the id an arrival will get if
    /// admitted.
    pub fn next_request_id(&self) -> u64 {
        self.next_request
    }

    /// Injects one root object as a fresh request and returns its
    /// request id (ids start at 1 and increase by injection order).
    pub fn inject(&mut self, payload: NativePayload) -> u64 {
        self.inject_batch(vec![payload])[0]
    }

    /// Injects a micro-batch of root objects — one request each, all
    /// stamped with the same batch size — and returns their request
    /// ids. Requests round-robin across the startup group's instances
    /// (request 1 lands on instance 0, matching batch mode).
    pub fn inject_batch(&mut self, payloads: Vec<NativePayload>) -> Vec<u64> {
        let batch = payloads.len() as u64;
        let spec = self.shared.spec().clone();
        let instances = self
            .shared
            .layout
            .instances_of(self.shared.graph.startup_group)
            .to_vec();
        let mut ids = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let request = self.next_request;
            self.next_request += 1;
            let inst = instances[((request - 1) as usize) % instances.len()];
            let obj = Box::new(TObject {
                class: spec.startup.class,
                flags: FlagSet::new().with(spec.startup.flag, true),
                tags: Vec::new(),
                payload,
                lock: self.shared.lock_table.fresh(),
                producer: NO_ID,
                msg: NO_ID,
                src_core: NO_ID,
                request,
                instance: inst,
            });
            let ts = self.driver_sink.now();
            self.driver_sink.req_admit(ts, request, batch);
            let (dest_core, msg) = self.shared.send(NO_ID, inst, obj, &mut self.driver_sink);
            self.driver_sink
                .obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
            ids.push(request);
        }
        ids
    }

    /// Drains every completion detected so far without blocking.
    pub fn try_completions(&mut self) -> Vec<Completion> {
        self.completions.try_iter().collect()
    }

    /// Waits up to `timeout` for the next completion.
    pub fn next_completion(&mut self, timeout: Duration) -> Option<Completion> {
        self.completions.recv_timeout(timeout).ok()
    }

    /// Requests currently holding outstanding work.
    pub fn outstanding(&self) -> usize {
        self.shared.ledger.outstanding()
    }

    /// Whether the request ledger is fully drained (the no-leak
    /// invariant: nothing outstanding, no residual entries).
    pub fn ledger_is_empty(&self) -> bool {
        self.shared.ledger.is_empty()
    }

    /// The deepest ingress backlog across the startup group's host
    /// cores: pending channel messages plus ready-queue length. The
    /// admission layer sheds against this depth. Host cores are read
    /// from the live assignment, so a relayout that moves the startup
    /// group re-targets backpressure with it.
    pub fn ingress_depth(&self) -> usize {
        let mut cores: Vec<usize> = self
            .shared
            .layout
            .instances_of(self.shared.graph.startup_group)
            .iter()
            .map(|&inst| self.shared.core_of(inst))
            .collect();
        cores.sort_unstable();
        cores.dedup();
        cores
            .iter()
            .map(|&c| self.shared.senders[c].len() + self.shared.ready[c].lock().len())
            .max()
            .unwrap_or(0)
    }

    /// Instances migrated by hot relayouts so far.
    pub fn relayouts(&self) -> u64 {
        self.shared.relayout_tally.load(Ordering::Relaxed)
    }

    /// The current layout epoch (0 until the first relayout commits;
    /// bumped once per committed relayout batch).
    pub fn layout_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The live layout: the deployment's synthesis layout with every
    /// instance's core read from the current assignment table.
    pub fn current_layout(&self) -> Layout {
        self.shared.current_layout()
    }

    /// A cloneable handle the adaptive controller uses to observe the
    /// run (live estimator, current layout, epoch) and commit hot
    /// relayouts against it.
    pub fn relayout_handle(&self) -> RelayoutHandle {
        RelayoutHandle {
            shared: self.shared.clone(),
        }
    }

    /// Claims the [`AdaptPolicy`] the run was started with, if any
    /// (the serving front-end takes it to drive the controller).
    pub fn take_adapt_policy(&mut self) -> Option<AdaptPolicy> {
        self.adapt.take()
    }

    /// The configured soft bound on each worker's run queue.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_cap
    }

    /// The first unrecoverable fault, if one has been recorded.
    pub fn failure(&self) -> Option<ExecError> {
        self.shared.failure.lock().expect("failure mutex").clone()
    }

    /// Records a serving-layer event (arrival, shed) into the driver's
    /// pseudo-core sink; the serving front-end uses this so its events
    /// interleave with the executor's in one ring.
    pub fn driver_sink(&mut self) -> &mut WorkerSink {
        &mut self.driver_sink
    }

    /// Blocks until global activity drains (all injected requests
    /// complete) or an unrecoverable fault fires.
    ///
    /// # Errors
    ///
    /// Returns the run's first unrecoverable fault.
    pub fn drain(&mut self) -> Result<(), ExecError> {
        let shared = &self.shared;
        match self.quiescence {
            QuiescencePolicy::EventDriven => {
                let mut guard = shared.quiesce.lock().expect("quiescence mutex");
                while shared.activity.load(Ordering::SeqCst) != 0 && !shared.failed() {
                    guard = shared.quiesce_cv.wait(guard).expect("quiescence mutex");
                }
                drop(guard);
            }
            QuiescencePolicy::Polling { interval } => loop {
                if shared.failed() {
                    break;
                }
                std::thread::sleep(interval);
                if shared.failed() {
                    break;
                }
                if shared.activity.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(interval);
                    if shared.activity.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                }
            },
        }
        if !self.quiescence_settle.is_zero() && !shared.failed() {
            // Optional paranoia window: activity is transfer-ordered so
            // zero is already final, but a caller may ask for a settle
            // confirmation anyway.
            loop {
                std::thread::sleep(self.quiescence_settle);
                if shared.activity.load(Ordering::SeqCst) == 0 || shared.failed() {
                    break;
                }
            }
        }
        match self.failure() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Drains outstanding work, stops the workers, and builds the final
    /// report (finished objects include everything swept or left
    /// buffered).
    ///
    /// # Errors
    ///
    /// Surfaces the run's first unrecoverable fault, matching batch
    /// `run` semantics.
    pub fn shutdown(mut self) -> Result<ThreadedReport, ExecError> {
        let drained = self.drain();
        let shared = &self.shared;
        for tx in &shared.senders {
            let _ = tx.send(Message::Shutdown);
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
        // Submit the driver's ring before the caller snapshots the
        // telemetry session.
        self.driver_sink = WorkerSink::disabled();
        drained?;

        let mut finished = Vec::new();
        while let Ok(obj) = self.grave_rx.try_recv() {
            finished.push((obj.class, obj.payload));
        }
        Ok(ThreadedReport {
            invocations: shared.invocations.load(Ordering::SeqCst),
            body_cycles: shared.body_cycles.load(Ordering::SeqCst),
            steals: shared.steal_tally.load(Ordering::SeqCst),
            lock_retries: shared.retry_tally.load(Ordering::SeqCst),
            router_contention: shared.router.contention_count(),
            router_shed: shared.shed_tally.load(Ordering::SeqCst),
            finished,
            wall: self.start.elapsed(),
            faults_injected: shared.faults_injected.load(Ordering::SeqCst),
            recovery_actions: shared.recovery_tally.load(Ordering::SeqCst),
            relayouts: shared.relayout_tally.load(Ordering::SeqCst),
            layout_epoch: shared.epoch.load(Ordering::SeqCst),
            fault_schedule: shared.chaos.as_ref().map(|p| p.schedule().to_string()),
        })
    }
}

impl Default for ThreadedExecutor {
    fn default() -> Self {
        #[allow(deprecated)]
        ThreadedExecutor::new(CostModel::DEFAULT)
    }
}

/// A cloneable handle onto a live resident run, through which the
/// adaptive controller (or a test) observes the run and commits hot
/// relayouts. Obtained from [`ResidentRun::relayout_handle`]; remains
/// valid until the run shuts down (commits against a shut-down run are
/// harmless — the drain messages land on closed channels and the final
/// graveyard drain already collects every buffered object).
#[derive(Clone)]
pub struct RelayoutHandle {
    shared: Arc<Shared>,
}

impl RelayoutHandle {
    /// The running program's spec.
    pub fn spec(&self) -> &ProgramSpec {
        self.shared.spec()
    }

    /// The deployment's group graph.
    pub fn graph(&self) -> &GroupGraph {
        &self.shared.graph
    }

    /// Number of worker cores.
    pub fn core_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// The live layout (synthesis topology + current assignment).
    pub fn current_layout(&self) -> Layout {
        self.shared.current_layout()
    }

    /// The current layout epoch.
    pub fn layout_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Instances migrated by hot relayouts so far.
    pub fn relayouts(&self) -> u64 {
        self.shared.relayout_tally.load(Ordering::Relaxed)
    }

    /// Invocations executed so far (across all epochs).
    pub fn invocations(&self) -> u64 {
        self.shared.invocations.load(Ordering::Relaxed)
    }

    /// Whether `core` was killed by fault injection.
    pub fn is_core_dead(&self, core: usize) -> bool {
        self.shared.router.is_dead(core)
    }

    /// The run's live profile estimator (`None` unless the run was
    /// started with an [`AdaptPolicy`]).
    pub fn estimator(&self) -> Option<Arc<LiveEstimator>> {
        self.shared.estimator.clone()
    }

    /// Commits one batch of hot migrations: each `(instance, core)`
    /// pair re-homes that instance onto that core *while the run is
    /// live*. The whole batch is validated first (typed errors, nothing
    /// mutated on failure), then per move the instance's router-stripe
    /// state transfers to the destination and the live assignment is
    /// swapped; one epoch bump publishes the batch, and each source
    /// core is told to drain the moved instance's buffered objects to
    /// its new host ([`Message::Migrate`]). Requests in flight are
    /// never lost or double-counted — drained objects travel as
    /// *adopted* sends (see [`RequestLedger::inc_if_open`]).
    ///
    /// Returns the epoch the batch committed as (the pre-commit epoch
    /// when every move was already in place).
    ///
    /// # Errors
    ///
    /// [`RelayoutError::UnknownInstance`] / [`RelayoutError::UnknownCore`]
    /// for out-of-range ids, [`RelayoutError::DeadCore`] when a
    /// destination was killed by fault injection.
    pub fn migrate(&self, moves: &[(InstanceId, usize)]) -> Result<u64, RelayoutError> {
        let shared = &self.shared;
        let _commit = shared.relayout_lock.lock();
        let cores = shared.senders.len();
        for &(inst, to) in moves {
            if inst.index() >= shared.assignment.len() {
                return Err(RelayoutError::UnknownInstance {
                    instance: inst.index(),
                });
            }
            if to >= cores {
                return Err(RelayoutError::UnknownCore { core: to });
            }
            if shared.router.is_dead(to) {
                return Err(RelayoutError::DeadCore { core: to });
            }
        }
        let mut sources: Vec<(usize, InstanceId)> = Vec::new();
        for &(inst, to) in moves {
            let from = shared.assignment[inst.index()].load(Ordering::Acquire);
            if from == to {
                continue;
            }
            shared.router.transfer_instance(from, to, inst);
            shared.assignment[inst.index()].store(to, Ordering::Release);
            sources.push((from, inst));
        }
        if sources.is_empty() {
            return Ok(shared.epoch.load(Ordering::Acquire));
        }
        let migrated = sources.len() as u64;
        let epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        shared.relayout_tally.fetch_add(migrated, Ordering::Relaxed);
        shared.relayout_counter.add(migrated);
        for (from, inst) in sources {
            // A closed channel means the worker already exited
            // (shutdown race); its leftovers drain at the join.
            let _ = shared.senders[from].send(Message::Migrate(inst));
        }
        Ok(epoch)
    }
}

/// A formed invocation held in a run queue.
#[allow(clippy::vec_box)] // objects stay boxed so routing re-sends them without moving
struct PendingInv {
    /// Run-unique invocation id minted at formation; every telemetry
    /// event about this invocation carries it.
    id: u64,
    task: TaskId,
    instance: InstanceId,
    objs: Vec<Box<TObject>>,
    tag_env: Vec<Option<TagInstance>>,
    /// Failed try-lock-all attempts this invocation has survived.
    retries: u64,
    /// The request all parameter objects belong to (request isolation:
    /// `form_all` never mixes requests in one invocation).
    request: u64,
}

/// A worker's per-instance buffering state: the parameter-set queues of
/// every instance currently (or formerly) hosted by the core.
///
/// `assigned` caches the worker's slice of the live assignment table
/// and is rebuilt whenever the relayout epoch moves — one atomic load
/// per delivery otherwise. `sets`/`slots` keep entries for
/// migrated-away instances until their `Migrate` drain empties them
/// (and for failover guests, which are handled through the same maps).
struct WorkerSets {
    assigned: Vec<InstanceId>,
    slots: HashMap<InstanceId, Vec<(TaskId, ParamIdx)>>,
    sets: HashMap<InstanceId, Vec<VecDeque<Box<TObject>>>>,
    epoch: u64,
}

impl WorkerSets {
    fn new() -> Self {
        WorkerSets {
            assigned: Vec::new(),
            slots: HashMap::new(),
            sets: HashMap::new(),
            // Forces the first `refresh` to build the epoch-0 cache.
            epoch: u64::MAX,
        }
    }

    /// Rebuilds the assigned-instance cache when the relayout epoch has
    /// moved since the last call; a cheap no-op otherwise. Assigned
    /// instances are kept in ascending id order, matching the epoch-0
    /// `Layout::instances_on` order, so an adapt-free run is
    /// byte-identical to the pre-adapt executor.
    fn refresh(&mut self, core: usize, shared: &Shared, spec: &ProgramSpec) {
        let epoch = shared.epoch.load(Ordering::Acquire);
        if epoch == self.epoch {
            return;
        }
        self.epoch = epoch;
        self.assigned = (0..shared.assignment.len())
            .filter(|&i| shared.assignment[i].load(Ordering::Acquire) == core)
            .map(|i| InstanceId(i as u32))
            .collect();
        for i in 0..self.assigned.len() {
            let inst = self.assigned[i];
            self.ensure(shared, spec, inst);
        }
    }

    /// Creates the (task, param) slot keys and empty queues for `inst`
    /// if this worker has never buffered for it.
    fn ensure(&mut self, shared: &Shared, spec: &ProgramSpec, inst: InstanceId) {
        if self.slots.contains_key(&inst) {
            return;
        }
        let group = &shared.graph.groups[shared.layout.instances[inst.index()].group.index()];
        let mut keys = Vec::new();
        for task in &group.tasks {
            for p in 0..spec.task(*task).params.len() {
                keys.push((*task, ParamIdx::new(p)));
            }
        }
        self.sets
            .insert(inst, (0..keys.len()).map(|_| VecDeque::new()).collect());
        self.slots.insert(inst, keys);
    }
}

fn worker_loop(core: usize, rx: Receiver<Message>, shared: Arc<Shared>) {
    let spec = shared.spec().clone();
    let mut sink = shared.telemetry.worker(core);
    let mut state = WorkerSets::new();
    state.refresh(core, &shared, &spec);
    let mut steal_rotation = core;
    // Chaos bookkeeping: faults are scheduled at exact dispatch counts,
    // so the tick runs once per count — at count 0 before any work, then
    // after every completed dispatch.
    let mut dispatched: u64 = 0;
    if chaos_tick(core, &shared, dispatched, &mut sink) {
        die_and_forward(core, &rx, &shared, &spec, &mut state, &mut sink);
        return;
    }

    'outer: loop {
        // 1. Drain a pending message without blocking.
        match rx.try_recv() {
            Ok(Message::Deliver(obj)) => {
                on_deliver(core, &shared, &spec, &mut state, obj, &mut sink);
                continue;
            }
            Ok(Message::Poke) => {}
            Ok(Message::Sweep(request)) => {
                sweep_sets(shared.as_ref(), &mut state, request);
                continue;
            }
            Ok(Message::Migrate(inst)) => {
                migrate_drain(core, &shared, &spec, &mut state, inst, &mut sink);
                continue;
            }
            Ok(Message::Shutdown) => break,
            Err(_) => {}
        }
        // 2. Work the local run queue.
        let local = shared.ready[core].lock().pop_front();
        if let Some(inv) = local {
            dispatch(core, &shared, &spec, inv, &mut sink);
            dispatched += 1;
            if chaos_tick(core, &shared, dispatched, &mut sink) {
                die_and_forward(core, &rx, &shared, &spec, &mut state, &mut sink);
                return;
            }
            continue;
        }
        // 3. Steal from a same-group peer.
        if shared.steal_enabled {
            steal_rotation = steal_rotation.wrapping_add(1);
            if let Some(inv) = shared.try_steal(core, steal_rotation, &mut sink) {
                dispatch(core, &shared, &spec, inv, &mut sink);
                dispatched += 1;
                if chaos_tick(core, &shared, dispatched, &mut sink) {
                    die_and_forward(core, &rx, &shared, &spec, &mut state, &mut sink);
                    return;
                }
                continue;
            }
        }
        // 4. Nothing to do: publish idleness, re-check (an enqueue may
        // have raced the empty check), then park in `recv`.
        shared.idle[core].store(true, Ordering::SeqCst);
        if !shared.ready[core].lock().is_empty() {
            shared.idle[core].store(false, Ordering::SeqCst);
            continue;
        }
        match rx.recv() {
            Ok(msg) => {
                shared.idle[core].store(false, Ordering::SeqCst);
                match msg {
                    Message::Deliver(obj) => {
                        on_deliver(core, &shared, &spec, &mut state, obj, &mut sink);
                    }
                    Message::Poke => {}
                    Message::Sweep(request) => sweep_sets(shared.as_ref(), &mut state, request),
                    Message::Migrate(inst) => {
                        migrate_drain(core, &shared, &spec, &mut state, inst, &mut sink)
                    }
                    Message::Shutdown => break 'outer,
                }
            }
            Err(_) => break,
        }
    }
    // Drain remaining parameter-set objects so results are extractable
    // (including leftovers of instances that migrated away mid-run).
    for (_, inst_sets) in state.sets {
        for mut set in inst_sets {
            while let Some(obj) = set.pop_front() {
                let _ = shared.graveyard.send(obj);
            }
        }
    }
}

/// Drains a migrated-away instance's buffered objects by re-sending
/// them: the live assignment already points at the new host, so `send`
/// routes each object there, minting fresh activity before the hand-off
/// — buffered objects hold none, the same transfer-order argument as
/// the failover drain. Objects of completed requests travel as adopted
/// (no ledger resurrection). Emits one `Relayout` event carrying the
/// epoch, the instance, and the number of objects moved.
fn migrate_drain(
    core: usize,
    shared: &Shared,
    spec: &ProgramSpec,
    state: &mut WorkerSets,
    inst: InstanceId,
    sink: &mut WorkerSink,
) {
    // Pick up the new epoch first so the drained instance leaves the
    // assigned cache before any follow-on delivery is handled.
    state.refresh(core, shared, spec);
    let mut moved = 0u64;
    if let Some(mut inst_sets) = state.sets.remove(&inst) {
        for set in inst_sets.iter_mut() {
            while let Some(obj) = set.pop_front() {
                let ts = sink.now();
                let (dest_core, msg) = shared.send_adopted(core as u64, inst, obj, sink);
                sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
                moved += 1;
            }
        }
    }
    state.slots.remove(&inst);
    sink.relayout(
        sink.now(),
        shared.epoch.load(Ordering::Acquire),
        inst.index() as u64,
        moved,
    );
}

/// Evicts every buffered object of a completed request to the
/// graveyard. Safe because the request's ledger count reaching zero is
/// final: no invocation of that request can form afterwards, so the
/// leftovers are exactly the run's finished objects for that request.
fn sweep_sets(shared: &Shared, state: &mut WorkerSets, request: u64) {
    for inst_sets in state.sets.values_mut() {
        for set in inst_sets.iter_mut() {
            let mut kept = VecDeque::with_capacity(set.len());
            while let Some(obj) = set.pop_front() {
                if obj.request == request {
                    let _ = shared.graveyard.send(obj);
                } else {
                    kept.push_back(obj);
                }
            }
            *set = kept;
        }
    }
}

/// Runs this core's scheduled faults for the current dispatch count:
/// injects a stall if one is due, and returns `true` when the kill
/// threshold has been reached (the caller must run the die sequence).
fn chaos_tick(core: usize, shared: &Shared, dispatched: u64, sink: &mut WorkerSink) -> bool {
    let Some(plan) = &shared.chaos else {
        return false;
    };
    if let Some(stall) = plan.stall_at(core, dispatched) {
        shared.faults_injected.fetch_add(1, Ordering::Relaxed);
        shared.fault_counter.inc();
        sink.fault(
            sink.now(),
            fault_code::CORE_STALL,
            stall.as_nanos() as u64,
            NO_ID,
        );
        std::thread::sleep(stall);
    }
    plan.kill_after(core).is_some_and(|k| dispatched >= k)
}

/// The die sequence for a killed core. The worker stops dispatching
/// forever; its queued invocations drain through peers' steal path and
/// its buffered parameter-set objects are re-sent to live same-group
/// hosts. The thread then lingers as a forwarder — late arrivals are
/// re-routed, never processed — until shutdown.
///
/// With recovery (or stealing) disabled, or when any queued invocation's
/// group has no live host left, the run fails with
/// [`ExecError::CoreLost`] instead: typed, immediate, no hang.
fn die_and_forward(
    core: usize,
    rx: &Receiver<Message>,
    shared: &Shared,
    spec: &ProgramSpec,
    state: &mut WorkerSets,
    sink: &mut WorkerSink,
) {
    shared.faults_injected.fetch_add(1, Ordering::Relaxed);
    shared.fault_counter.inc();
    sink.fault(sink.now(), fault_code::CORE_KILL, core as u64, NO_ID);
    shared.router.mark_dead(core);
    let recoverable =
        shared.chaos.as_ref().is_some_and(|p| p.recovery_enabled()) && shared.steal_enabled;
    // Every queued invocation needs a live same-group host to steal it;
    // a stranded group means the work is genuinely unrecoverable.
    let stranded = shared.ready[core].lock().iter().any(|inv| {
        let group = shared.group_of_instance(inv.instance);
        !shared.group_cores[group]
            .iter()
            .any(|&c| !shared.router.is_dead(c))
    });
    if !recoverable || stranded {
        shared.fail(ExecError::CoreLost { core });
    } else {
        // Hand buffered parameter-set objects to live same-group hosts;
        // `send` performs the dead-destination failover since this core
        // is already marked dead.
        let mut moved = 0u64;
        for (&inst, inst_sets) in state.sets.iter_mut() {
            for set in inst_sets.iter_mut() {
                while let Some(obj) = set.pop_front() {
                    // Buffered objects hold no activity (their delivery
                    // units were released on arrival); the re-send mints
                    // a fresh unit inside `send` before the handoff. A
                    // completed request's leftovers travel adopted so
                    // its ledger entry is never resurrected.
                    let ts = sink.now();
                    let (dest_core, msg) = shared.send_adopted(core as u64, inst, obj, sink);
                    sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
                    moved += 1;
                }
            }
        }
        shared.recovery_tally.fetch_add(1, Ordering::Relaxed);
        shared.recover_counter.inc();
        sink.recover(sink.now(), recover_code::FAILOVER_DRAIN, moved, NO_ID);
    }
    // Forward until shutdown. The timeout re-pokes peers while our run
    // queue holds work: a peer that was mid-park when the first poke
    // fired would otherwise sleep through the steal it owes us.
    loop {
        for &peer in &shared.steal_peers[core] {
            if !shared.router.is_dead(peer) {
                shared.poke(peer);
            }
        }
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(Message::Deliver(obj)) => {
                // Late arrival: re-route it (activity stays
                // transfer-ordered — the re-send is counted before this
                // message's unit is released).
                let request = obj.request;
                forward_obj(core, shared, spec, state, obj, sink);
                shared.release_activity(request, sink);
            }
            Ok(Message::Poke) => {}
            // This core's sets were already drained in the failover;
            // nothing left to sweep or migrate here.
            Ok(Message::Sweep(_)) | Ok(Message::Migrate(_)) => {}
            Ok(Message::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {
                if shared.ready[core].lock().is_empty() && !shared.failed() {
                    // Queue drained and nothing to forward: park longer.
                    std::thread::yield_now();
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Re-routes an object that reached a dead core: sends it to the local
/// instance whose slot would have buffered it (the dead-destination
/// failover in `send` redirects to a live same-group host), or forwards
/// it along the route a live worker would have used.
fn forward_obj(
    core: usize,
    shared: &Shared,
    spec: &ProgramSpec,
    state: &WorkerSets,
    obj: Box<TObject>,
    sink: &mut WorkerSink,
) {
    let target = state.assigned.iter().find_map(|inst| {
        state.slots[inst]
            .iter()
            .any(|(task, param)| {
                let pspec = &spec.task(*task).params[param.index()];
                pspec.class == obj.class && pspec.guard.eval(obj.flags)
            })
            .then_some(*inst)
    });
    if let Some(inst) = target {
        let ts = sink.now();
        let (dest_core, msg) = shared.send(core as u64, inst, obj, sink);
        sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
        return;
    }
    let inst = state.assigned.first().copied().unwrap_or(InstanceId(0));
    let hash = obj.tags.first().map(|(_, i)| i.0);
    let decision = shared.router.route_transition(
        core,
        spec,
        &shared.graph,
        &shared.layout,
        inst,
        obj.class,
        obj.flags,
        hash,
    );
    match decision {
        RouteDecision::Move(dest) => {
            let ts = sink.now();
            let (dest_core, msg) = shared.send(core as u64, dest, obj, sink);
            sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
        }
        _ => {
            let _ = shared.graveyard.send(obj);
        }
    }
}

/// Handles one delivered object: enqueue or forward it, form every
/// invocation it completes, then release the message's activity (the
/// formed invocations carry their own, counted in `form_all` first).
fn on_deliver(
    core: usize,
    shared: &Shared,
    spec: &ProgramSpec,
    state: &mut WorkerSets,
    obj: Box<TObject>,
    sink: &mut WorkerSink,
) {
    // Pick up any relayout that committed since the last delivery
    // *before* matching slots: a freshly adopted instance must already
    // be in the assigned cache when its first object arrives.
    state.refresh(core, shared, spec);
    if sink.is_enabled() {
        let ts = sink.now();
        sink.obj_recv(ts, OBJ_BYTES_ESTIMATE, obj.src_core, obj.msg);
        let ready = shared.ready[core].lock().len() as u64;
        sink.queue_depth(ts, shared.senders[core].len() as u64, ready);
    }
    let request = obj.request;
    deliver(core, shared, spec, state, obj, sink);
    form_all(core, shared, spec, state, sink);
    shared.release_activity(request, sink);
}

/// Pops, locks, and executes one invocation; on lock failure the
/// invocation re-queues at the back of this core's run queue.
fn dispatch(
    core: usize,
    shared: &Shared,
    spec: &ProgramSpec,
    mut inv: PendingInv,
    sink: &mut WorkerSink,
) {
    // Lock slowdown: holds the invocation at the acquisition point once
    // (first attempt only — retries must not compound the injection).
    if inv.retries == 0 {
        if let Some(plan) = &shared.chaos {
            if let Some(slow) = plan.lock_slowdown_of(inv.id) {
                shared.faults_injected.fetch_add(1, Ordering::Relaxed);
                shared.fault_counter.inc();
                sink.fault(
                    sink.now(),
                    fault_code::LOCK_SLOW,
                    slow.as_nanos() as u64,
                    inv.id,
                );
                std::thread::sleep(slow);
            }
        }
    }
    let lock_ids: Vec<usize> = inv.objs.iter().map(|o| o.lock).collect();
    match shared.lock_table.try_lock_all(&lock_ids) {
        Some(guards) => {
            sink.lock_acquired(sink.now(), lock_ids.len() as u64, inv.retries, inv.id);
            execute(shared, spec, inv, sink);
            drop(guards);
        }
        None => {
            // Transactional retry: nothing held; try a different
            // invocation later.
            shared.lock_retries.inc();
            shared.retry_tally.fetch_add(1, Ordering::Relaxed);
            sink.lock_failed(
                sink.now(),
                lock_ids.len() as u64,
                inv.task.index() as u64,
                inv.id,
            );
            inv.retries += 1;
            shared.ready[core].lock().push_back(inv);
            std::thread::yield_now();
        }
    }
}

fn deliver(
    core: usize,
    shared: &Shared,
    spec: &ProgramSpec,
    state: &mut WorkerSets,
    obj: Box<TObject>,
    sink: &mut WorkerSink,
) {
    // Redirect-first: an object that raced a hot relayout chases its
    // instance to the instance's current core. Only when that core is
    // live — a dead assigned core keeps the failover semantics (the
    // object was deliberately re-striped here; handle it locally).
    let assigned = shared.core_of(obj.instance);
    if assigned != core && !shared.router.is_dead(assigned) {
        let ts = sink.now();
        let instance = obj.instance;
        let (dest_core, msg) = shared.send(core as u64, instance, obj, sink);
        sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
        return;
    }
    // Enqueue at the first instance on this core with a matching slot.
    // (With several same-group instances per core this coarsens the
    // round-robin split; correctness is unaffected because any matching
    // instance may process the object.) Unlike the virtual executor,
    // which enqueues an object into every matching parameter set and
    // reserves it at invocation formation, workers *own* their objects:
    // single-slot delivery makes double capture impossible by
    // construction, at the cost of possible starvation when two tasks'
    // guards overlap and only the second can make progress — the
    // synthesis pipeline never produces such programs, and the virtual
    // executor handles them.
    for idx in 0..state.assigned.len() {
        let inst = state.assigned[idx];
        let keys = &state.slots[&inst];
        let mut matched = None;
        for (slot, (task, param)) in keys.iter().enumerate() {
            let pspec = &spec.task(*task).params[param.index()];
            if pspec.class == obj.class && pspec.guard.eval(obj.flags) {
                matched = Some(slot);
                break;
            }
        }
        if let Some(slot) = matched {
            state.sets.get_mut(&inst).expect("ensured with slots")[slot].push_back(obj);
            return;
        }
    }
    // No local slot matches: forward to the consuming group, or retire
    // the object if no task can ever consume it.
    let inst = state.assigned.first().copied().unwrap_or(InstanceId(0));
    let hash = obj.tags.first().map(|(_, i)| i.0);
    let decision = shared.router.route_transition(
        core,
        spec,
        &shared.graph,
        &shared.layout,
        inst,
        obj.class,
        obj.flags,
        hash,
    );
    match decision {
        RouteDecision::Move(dest) => {
            // Forwarding keeps the object's original producer: the
            // eventual consumer's causal edge must point at whoever
            // released the object, not at the hop that relayed it.
            // Timestamp taken before the channel push so the send never
            // postdates the matching receive.
            let ts = sink.now();
            let (dest_core, msg) = shared.send(core as u64, dest, obj, sink);
            sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
        }
        _ => {
            let _ = shared.graveyard.send(obj);
        }
    }
}

fn form_all(
    core: usize,
    shared: &Shared,
    spec: &ProgramSpec,
    state: &mut WorkerSets,
    sink: &mut WorkerSink,
) {
    for i in 0..state.assigned.len() {
        let inst = state.assigned[i];
        let group = &shared.graph.groups[shared.layout.instances[inst.index()].group.index()];
        for &task in &group.tasks {
            'again: loop {
                let tspec = spec.task(task);
                let n = tspec.params.len();
                if n == 0 {
                    break;
                }
                // Request isolation: an invocation only combines
                // objects of one request. Try each distinct request
                // present in the first parameter's slot (FIFO order, so
                // older requests are not starved by newer arrivals)
                // until one can complete a full parameter pick. A
                // single-request (batch) run degenerates to exactly the
                // pre-ledger formation order.
                let slots = &state.slots[&inst];
                let sets = &state.sets[&inst];
                let slot0 = slots
                    .iter()
                    .position(|(t, pi)| *t == task && pi.index() == 0)
                    .expect("slot exists");
                let mut tried: Vec<u64> = Vec::new();
                let mut formed = None;
                for idx0 in 0..sets[slot0].len() {
                    let request = sets[slot0][idx0].request;
                    if tried.contains(&request) {
                        continue;
                    }
                    tried.push(request);
                    if let Some((picks, tag_env)) = try_form(spec, task, slots, sets, request) {
                        formed = Some((picks, tag_env, request));
                        break;
                    }
                }
                let Some((picks, tag_env, request)) = formed else {
                    break 'again;
                };
                // Extract picked objects; each param has its own slot, so
                // earlier removals do not shift later picks.
                let sets = state.sets.get_mut(&inst).expect("ensured with slots");
                let mut objs = Vec::with_capacity(n);
                for (slot, idx) in picks {
                    let obj = sets[slot].remove(idx).expect("picked index valid");
                    objs.push(obj);
                }
                // Mint the invocation id and record formation (the
                // queue-enter timestamp) plus one causal edge per
                // consumed object before the invocation becomes
                // stealable — after that, another core may execute it.
                let id = shared.next_inv.fetch_add(1, Ordering::Relaxed) + 1;
                if sink.is_enabled() {
                    let ts = sink.now();
                    sink.inv_queued(ts, id, inst.index() as u64, task.index() as u64, request);
                    for obj in &objs {
                        sink.inv_link(ts, id, obj.producer, obj.msg);
                    }
                }
                // Count the invocation's activity *before* it becomes
                // visible to this core's queue (and to thieves).
                shared.activity.fetch_add(1, Ordering::SeqCst);
                shared.ledger.inc(request);
                shared.enqueue_ready(
                    core,
                    PendingInv {
                        id,
                        task,
                        instance: inst,
                        objs,
                        tag_env,
                        retries: 0,
                        request,
                    },
                );
            }
        }
    }
}

/// A completed parameter-set pick: the `(slot, idx)` positions of the
/// chosen objects plus the tag environment they bound.
type FormedSet = (Vec<(usize, usize)>, Vec<Option<TagInstance>>);

/// Attempts to pick one object per parameter of `task` from one
/// instance's slot keys and queues, restricted to objects of `request`.
/// Returns the picked `(slot, idx)` positions and the bound tag
/// environment, or `None` when the request cannot complete a full
/// parameter set yet.
fn try_form(
    spec: &ProgramSpec,
    task: TaskId,
    slots: &[(TaskId, ParamIdx)],
    sets: &[VecDeque<Box<TObject>>],
    request: u64,
) -> Option<FormedSet> {
    let tspec = spec.task(task);
    let n = tspec.params.len();
    let mut tag_env: Vec<Option<TagInstance>> = vec![None; tspec.tag_vars.len()];
    let mut picks: Vec<(usize, usize)> = Vec::new(); // (slot, idx)
    for p in 0..n {
        let slot = slots
            .iter()
            .position(|(t, pi)| *t == task && pi.index() == p)
            .expect("slot exists");
        let pspec = &tspec.params[p];
        let mut found = None;
        for (idx, cand) in sets[slot].iter().enumerate() {
            if picks.contains(&(slot, idx)) {
                continue;
            }
            if cand.request != request {
                continue;
            }
            if !pspec.guard.eval(cand.flags) {
                continue;
            }
            let mut ok = true;
            let mut updates = Vec::new();
            for tc in &pspec.tags {
                let bound = updates
                    .iter()
                    .find(|(v, _)| *v == tc.var.index())
                    .map(|(_, inst)| *inst)
                    .or(tag_env[tc.var.index()]);
                match bound {
                    Some(instn) => {
                        if !cand.tags.contains(&(tc.tag_type, instn)) {
                            ok = false;
                            break;
                        }
                    }
                    None => match cand.tags.iter().find(|(tt, _)| *tt == tc.tag_type) {
                        Some((_, instn)) => updates.push((tc.var.index(), *instn)),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if ok {
                for (v, instn) in updates {
                    tag_env[v] = Some(instn);
                }
                found = Some((slot, idx));
                break;
            }
        }
        match found {
            Some(pick) => picks.push(pick),
            None => return None,
        }
    }
    if picks.is_empty() {
        return None;
    }
    Some((picks, tag_env))
}

fn execute(shared: &Shared, spec: &ProgramSpec, mut inv: PendingInv, sink: &mut WorkerSink) {
    sink.task_start(
        sink.now(),
        inv.task.index() as u64,
        inv.instance.index() as u64,
        inv.id,
    );
    let tspec = spec.task(inv.task);
    // Routing state stays striped by the invocation's *home* core, so a
    // stolen invocation continues the victim instance's round-robin
    // sequences. The home core is the *live* assignment's host: after a
    // hot relayout the moved instance's stripe state moved with it.
    let home_core = shared.core_of(inv.instance);
    // Mint body-created tag variables.
    for (v, var) in tspec.tag_vars.iter().enumerate() {
        if !var.from_param && inv.tag_env[v].is_none() {
            inv.tag_env[v] = Some(shared.mint_tag());
        }
    }
    // Run the body.
    let body = shared
        .program
        .native_body(inv.task)
        .expect("threaded executor only runs native programs")
        .clone();
    let mut payloads: Vec<NativePayload> = Vec::with_capacity(inv.objs.len());
    for obj in &mut inv.objs {
        payloads.push(std::mem::replace(&mut obj.payload, Box::new(())));
    }
    let mut ctx = TaskCtx::new(&mut payloads, tspec.alloc_sites.len(), tspec.exits.len());
    let exit_idx = body(&mut ctx);
    let exit = ExitId::new(ctx.check_exit(exit_idx));
    let (charged, created) = ctx.finish();
    for (obj, payload) in inv.objs.iter_mut().zip(payloads) {
        obj.payload = payload;
    }
    shared.body_cycles.fetch_add(charged, Ordering::Relaxed);
    shared.invocations.fetch_add(1, Ordering::Relaxed);
    shared.ledger.charge_invocation(inv.request);
    shared.dispatches.inc();

    // Feed the live Markov-model estimate (and the `TaskExit` /
    // `TaskAlloc` event stream) before routing consumes `created`. One
    // record per invocation: which exit fired, the cycles it charged,
    // and how many objects each alloc site produced.
    if shared.estimator.is_some() || sink.is_enabled() {
        let mut site_counts = vec![0u64; tspec.alloc_sites.len()];
        for (site_idx, _) in &created {
            site_counts[*site_idx] += 1;
        }
        if let Some(estimator) = &shared.estimator {
            estimator.record(inv.task.index(), exit.index(), charged, &site_counts);
        }
        if sink.is_enabled() {
            let ts = sink.now();
            sink.task_exit(
                ts,
                inv.task.index() as u64,
                exit.index() as u64,
                charged,
                inv.id,
            );
            for (site, &count) in site_counts.iter().enumerate() {
                if count > 0 {
                    sink.task_alloc(
                        ts,
                        inv.task.index() as u64,
                        exit.index() as u64,
                        site as u64,
                        count,
                    );
                }
            }
        }
    }

    // Shared-lock directive.
    for group in &shared.locks_analysis.lock_plans[inv.task.index()].groups {
        for pair in group.windows(2) {
            shared.lock_table.merge(
                inv.objs[pair[0].index()].lock,
                inv.objs[pair[1].index()].lock,
            );
        }
    }

    // Exit actions.
    let exit_spec = tspec.exit(exit);
    for (param_idx, actions) in &exit_spec.actions {
        let obj = &mut inv.objs[param_idx.index()];
        for action in actions {
            match action {
                FlagOrTagAction::SetFlag(flag, value) => obj.flags.set(*flag, *value),
                FlagOrTagAction::AddTag(var) => {
                    if let Some(instn) = inv.tag_env[var.index()] {
                        let tt = tspec.tag_vars[var.index()].tag_type;
                        if !obj.tags.contains(&(tt, instn)) {
                            obj.tags.push((tt, instn));
                        }
                    }
                }
                FlagOrTagAction::ClearTag(var) => {
                    if let Some(instn) = inv.tag_env[var.index()] {
                        let tt = tspec.tag_vars[var.index()].tag_type;
                        obj.tags.retain(|t| *t != (tt, instn));
                    }
                }
            }
        }
    }

    // Route parameters. Released objects are re-stamped with this
    // invocation as their producer: whoever consumes them next links
    // back here.
    for mut obj in inv.objs {
        obj.producer = inv.id;
        let hash = obj.tags.first().map(|(_, i)| i.0);
        let decision = shared.router.route_transition(
            home_core,
            spec,
            &shared.graph,
            &shared.layout,
            inv.instance,
            obj.class,
            obj.flags,
            hash,
        );
        match decision {
            RouteDecision::Stay => {
                let ts = sink.now();
                let (dest_core, msg) = shared.send(home_core as u64, inv.instance, obj, sink);
                sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
            }
            RouteDecision::Move(dest) => {
                let ts = sink.now();
                let (dest_core, msg) = shared.send(home_core as u64, dest, obj, sink);
                sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
            }
            RouteDecision::Dead => {
                let _ = shared.graveyard.send(obj);
            }
        }
    }

    // Created objects.
    for (site_idx, payload) in created {
        let site = bamboo_lang::ids::AllocSiteId::new(site_idx);
        let site_spec = &tspec.alloc_sites[site.index()];
        let tags: Vec<(TagTypeId, TagInstance)> = site_spec
            .bound_tags
            .iter()
            .filter_map(|var| {
                inv.tag_env[var.index()].map(|instn| (tspec.tag_vars[var.index()].tag_type, instn))
            })
            .collect();
        let hash = tags.first().map(|(_, i)| i.0);
        let dest = shared.router.route_new(
            home_core,
            spec,
            &shared.graph,
            &shared.layout,
            inv.instance,
            inv.task,
            site,
            hash,
        );
        let obj = Box::new(TObject {
            class: site_spec.class,
            flags: site_spec.initial_flag_set(),
            tags,
            payload,
            lock: shared.lock_table.fresh(),
            producer: inv.id,
            msg: NO_ID,
            src_core: NO_ID,
            request: inv.request,
            instance: dest,
        });
        let ts = sink.now();
        let (dest_core, msg) = shared.send(home_core as u64, dest, obj, sink);
        sink.obj_send(ts, OBJ_BYTES_ESTIMATE, dest_core as u64, msg);
    }

    // Invocation complete.
    sink.task_end(
        sink.now(),
        inv.task.index() as u64,
        inv.instance.index() as u64,
        inv.id,
    );
    shared.release_activity(inv.request, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::RouterPolicy;
    use crate::virtual_exec::tests_support::fanout_setup;

    fn deployment(
        (program, graph, layout, _machine, locks): (
            Program,
            GroupGraph,
            Layout,
            bamboo_machine::MachineDescription,
            DisjointnessAnalysis,
        ),
    ) -> Deployment {
        Deployment::new(program, graph, layout, locks)
    }

    #[test]
    fn threaded_matches_virtual_result() {
        let deploy = deployment(fanout_setup(24, 3));
        let report = ThreadedExecutor::default()
            .run(&deploy, RunOptions::default())
            .unwrap();
        // 1 startup + 24 work + 24 reduce.
        assert_eq!(report.invocations, 49);
        let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
        let accs = report.payloads_of::<(i64, i64, i64)>(acc_class);
        assert_eq!(accs.len(), 1);
        // Sum of squares 0..24.
        let expected: i64 = (0..24).map(|i| i * i).sum();
        assert_eq!(accs[0].0, expected);
    }

    #[test]
    fn threaded_single_core_works() {
        let deploy = deployment(fanout_setup(8, 1));
        let report = ThreadedExecutor::default()
            .run(&deploy, RunOptions::default())
            .unwrap();
        assert_eq!(report.invocations, 17);
        assert!(report.body_cycles > 0);
        // One core: nothing to steal from.
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn baseline_options_still_compute_the_same_result() {
        let deploy = deployment(fanout_setup(16, 4));
        let report = ThreadedExecutor::default()
            .run(&deploy, RunOptions::baseline())
            .unwrap();
        assert_eq!(report.invocations, 33);
        assert_eq!(report.steals, 0, "baseline disables stealing");
        let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
        let expected: i64 = (0..16).map(|i| i * i).sum();
        assert_eq!(
            report.payloads_of::<(i64, i64, i64)>(acc_class)[0].0,
            expected
        );
    }

    #[test]
    fn interpreted_program_is_rejected() {
        let compiled = bamboo_lang::compile_source(
            "t",
            r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) { taskexit(s: initialstate := false); }
            "#,
        )
        .unwrap();
        let locks = DisjointnessAnalysis::all_disjoint(&compiled.spec);
        let program = Program::from_compiled(compiled);
        let deploy = Deployment::single_core(&program, &locks);
        let err = ThreadedExecutor::default()
            .run(&deploy, RunOptions::default())
            .unwrap_err();
        assert_eq!(err, ExecError::NativeOnly);
    }

    #[test]
    fn lock_contention_retries_preserve_correctness() {
        // Force all objects into one lock class by marking every task's
        // parameters shared: heavy contention, same result.
        let (program, graph, layout, _machine, locks) = fanout_setup(16, 4);
        let reduce = program.spec.task_by_name("reduce").unwrap();
        let locks = locks.with_shared(
            reduce,
            &[
                bamboo_lang::ids::ParamIdx::new(0),
                bamboo_lang::ids::ParamIdx::new(1),
            ],
        );
        let deploy = Deployment::new(program, graph, layout, locks);
        let report = ThreadedExecutor::default()
            .run(&deploy, RunOptions::default())
            .unwrap();
        let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
        let accs = report.payloads_of::<(i64, i64, i64)>(acc_class);
        let expected: i64 = (0..16).map(|i| i * i).sum();
        assert_eq!(accs[0].0, expected);
    }

    #[test]
    fn try_payloads_of_reports_type_mismatch() {
        let deploy = deployment(fanout_setup(4, 1));
        let report = ThreadedExecutor::default()
            .run(&deploy, RunOptions::default())
            .unwrap();
        let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
        // The Acc payload is (i64, i64, i64), not String.
        let err = report.try_payloads_of::<String>(acc_class).unwrap_err();
        assert_eq!(err.class, acc_class);
        assert!(err.to_string().contains("String"), "{err}");
        // And the fallible accessor succeeds on the right type.
        let ok = report
            .try_payloads_of::<(i64, i64, i64)>(acc_class)
            .unwrap();
        assert_eq!(ok.len(), 1);
    }

    /// ≥ 8 producer instances hammering the sharded router from
    /// distinct cores at once: the result must stay exact, with or
    /// without stealing, under both router policies.
    #[test]
    fn sharded_router_stress_with_many_producers() {
        for (router, steal) in [
            (RouterPolicy::Sharded, StealPolicy::SameGroup),
            (RouterPolicy::Sharded, StealPolicy::Disabled),
            (RouterPolicy::Global, StealPolicy::SameGroup),
        ] {
            let deploy = deployment(fanout_setup(96, 8));
            assert!(
                deploy.layout.instances.len() >= 8,
                "need ≥ 8 producer instances, got {}",
                deploy.layout.instances.len()
            );
            let telemetry = Telemetry::enabled(8);
            let opts = RunOptions::default()
                .with_router(router)
                .with_steal(steal)
                .with_telemetry(telemetry.clone());
            let report = ThreadedExecutor::default().run(&deploy, opts).unwrap();
            assert_eq!(report.invocations, 1 + 2 * 96, "{router:?}/{steal:?}");
            let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
            let expected: i64 = (0..96).map(|i| i * i).sum();
            assert_eq!(
                report.payloads_of::<(i64, i64, i64)>(acc_class)[0].0,
                expected,
                "{router:?}/{steal:?}"
            );
            let t = telemetry.report();
            assert_eq!(t.metrics.counters["threaded.dispatches"], 1 + 2 * 96);
            assert_eq!(t.metrics.counters["threaded.steals"], report.steals);
        }
    }

    /// A startup task that allocates nothing: the run must still reach
    /// quiescence through the event-driven protocol (one invocation,
    /// zero follow-on messages) rather than hanging in the condvar wait.
    #[test]
    fn quiescence_terminates_under_zero_allocation_startup() {
        use crate::program::{body, NativeBody};
        use bamboo_lang::builder::ProgramBuilder;
        use bamboo_lang::spec::FlagExpr;
        let mut b: ProgramBuilder<NativeBody> = ProgramBuilder::new("noalloc");
        let s = b.class("StartupObject", &["initialstate"]);
        let init = b.flag(s, "initialstate");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .exit("", |e| e.set(0, init, false))
            .body(body(|ctx| {
                ctx.charge(1);
                0
            }))
            .finish();
        let program = Program::from_native(b.build().unwrap());
        let locks = DisjointnessAnalysis::all_disjoint(&program.spec);
        let deploy = Deployment::single_core(&program, &locks);
        let start = std::time::Instant::now();
        let report = ThreadedExecutor::default()
            .run(&deploy, RunOptions::default())
            .unwrap();
        assert_eq!(report.invocations, 1);
        // No polling floor: even on a loaded machine this finishes far
        // below the old 600µs double-sleep (allow generous slack).
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    /// Stealing must not change results: the threaded run with stealing
    /// agrees with the deterministic virtual executor on the same
    /// deployment, run-to-run.
    #[test]
    fn steal_policy_is_result_deterministic_and_matches_virtual() {
        use crate::virtual_exec::{ExecConfig, VirtualExecutor};
        let (program, graph, layout, machine, locks) = fanout_setup(48, 6);
        let deploy = Deployment::new(program, graph, layout, locks);
        let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
        // Virtual reference over the same deployment artifact.
        let mut virt = VirtualExecutor::over(&deploy, &machine, ExecConfig::default());
        let vreport = virt.run(None).unwrap();
        let vacc = virt.store.live_of_class(acc_class)[0];
        let expected = virt.payload::<(i64, i64, i64)>(vacc).0;
        for round in 0..3 {
            let report = ThreadedExecutor::default()
                .run(
                    &deploy,
                    RunOptions::default().with_steal(StealPolicy::SameGroup),
                )
                .unwrap();
            assert_eq!(report.invocations, vreport.invocations, "round {round}");
            assert_eq!(
                report.payloads_of::<(i64, i64, i64)>(acc_class)[0].0,
                expected,
                "round {round}"
            );
        }
    }

    /// Overhead guard: with `Telemetry::disabled()` the dispatch hot
    /// path must perform **zero** telemetry heap allocations — asserted
    /// through the telemetry allocation-counter hook, not wall clock.
    #[test]
    fn disabled_telemetry_allocates_nothing_under_contention() {
        let (program, graph, layout, _machine, locks) = fanout_setup(16, 4);
        let reduce = program.spec.task_by_name("reduce").unwrap();
        let locks = locks.with_shared(
            reduce,
            &[
                bamboo_lang::ids::ParamIdx::new(0),
                bamboo_lang::ids::ParamIdx::new(1),
            ],
        );
        let deploy = Deployment::new(program, graph, layout, locks);
        let telemetry = Telemetry::disabled();
        let report = ThreadedExecutor::default()
            .run(
                &deploy,
                RunOptions::default().with_telemetry(telemetry.clone()),
            )
            .unwrap();
        // Same correctness as the plain contention test…
        let acc_class = deploy.program.spec.class_by_name("Acc").unwrap();
        let accs = report.payloads_of::<(i64, i64, i64)>(acc_class);
        let expected: i64 = (0..16).map(|i| i * i).sum();
        assert_eq!(accs[0].0, expected);
        // …and not a single telemetry allocation across 33 invocations.
        assert_eq!(telemetry.heap_allocations(), 0);
        assert!(telemetry.report().events.is_empty());
    }

    /// Enabled telemetry allocates only at setup (rings + counter
    /// registrations): the count is independent of how many tasks run.
    #[test]
    fn enabled_telemetry_allocations_do_not_scale_with_tasks() {
        let allocs_for = |n: i64| {
            let deploy = deployment(fanout_setup(n, 2));
            let telemetry = Telemetry::enabled(2);
            telemetry.set_time_unit(TimeUnit::Nanos);
            ThreadedExecutor::default()
                .run(
                    &deploy,
                    RunOptions::default().with_telemetry(telemetry.clone()),
                )
                .unwrap();
            telemetry.heap_allocations()
        };
        let small = allocs_for(4);
        let large = allocs_for(32);
        assert!(small > 0);
        assert_eq!(small, large, "telemetry allocations must be setup-only");
    }

    #[test]
    fn threaded_run_records_dispatch_and_traffic_events() {
        use bamboo_telemetry::EventKind;
        let deploy = deployment(fanout_setup(12, 3));
        let telemetry = Telemetry::enabled(3);
        let report = ThreadedExecutor::default()
            .run(
                &deploy,
                RunOptions::default().with_telemetry(telemetry.clone()),
            )
            .unwrap();
        // 1 startup + 12 work + 12 reduce.
        assert_eq!(report.invocations, 25);
        let t = telemetry.report();
        assert_eq!(t.unit, TimeUnit::Nanos);
        assert_eq!(t.count(EventKind::TaskStart), 25);
        assert_eq!(t.count(EventKind::TaskEnd), 25);
        assert_eq!(t.count(EventKind::LockAcquired), 25);
        assert!(t.count(EventKind::ObjRecv) > 0);
        assert!(t.count(EventKind::QueueDepth) > 0);
        assert_eq!(t.metrics.counters["threaded.dispatches"], 25);
        // Timestamps are monotone within each core's event stream.
        for core in t.active_cores() {
            let ts: Vec<u64> = t.events_on(core).map(|e| e.ts).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
