//! The threaded executor: real OS threads, real locks.
//!
//! One worker thread per core of the layout. Objects are owned by
//! messages: a worker holds the objects currently enqueued in its
//! parameter sets and forwards objects to other workers over crossbeam
//! channels, exactly as the paper's runtime sends objects between tiles
//! (§4.7). Before executing an invocation the worker *try-locks* every
//! parameter object's lock class in a global lock table (sorted order, no
//! deadlock); on failure it releases everything and tries a different
//! invocation — Bamboo's transactional task semantics, with no aborts and
//! no rollback. Lock classes merge per the disjointness analysis's
//! [`bamboo_analysis::LockPlan`]s.
//!
//! This executor demonstrates genuine concurrent semantics; performance
//! numbers come from the virtual-time executor (see DESIGN.md §2 — the
//! host machine's core count is unrelated to the modeled TILEPro64).

use crate::cost::CostModel;
use crate::program::{NativePayload, Program, TaskCtx};
use bamboo_analysis::{DisjointnessAnalysis, UnionFind};
use bamboo_lang::ids::{ClassId, ExitId, ParamIdx, TagTypeId, TaskId};
use bamboo_lang::interp::TagInstance;
use bamboo_lang::spec::{FlagOrTagAction, FlagSet, ProgramSpec};
use bamboo_profile::Cycles;
use bamboo_schedule::{GroupGraph, InstanceId, Layout, RouteDecision, Router};
use bamboo_telemetry::{Counter, Telemetry, TimeUnit, WorkerSink};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::virtual_exec::ExecError;

/// An object in flight or enqueued at a worker.
struct TObject {
    class: ClassId,
    flags: FlagSet,
    tags: Vec<(TagTypeId, TagInstance)>,
    payload: NativePayload,
    lock: usize,
}

enum Message {
    Deliver(Box<TObject>),
    Shutdown,
}

/// Global lock table: per-object lock classes with union-find merging.
struct LockTable {
    uf: Mutex<UnionFind>,
    mutexes: Mutex<Vec<Arc<Mutex<()>>>>,
}

impl LockTable {
    fn new() -> Self {
        LockTable { uf: Mutex::new(UnionFind::new(0)), mutexes: Mutex::new(Vec::new()) }
    }

    fn fresh(&self) -> usize {
        let id = self.uf.lock().push();
        self.mutexes.lock().push(Arc::new(Mutex::new(())));
        id
    }

    fn merge(&self, a: usize, b: usize) {
        self.uf.lock().union(a, b);
    }

    /// Try-locks the lock classes of `ids` in sorted order; returns guards
    /// or `None` if any class is contended (everything acquired is
    /// released by dropping).
    fn try_lock_all(
        &self,
        ids: &[usize],
    ) -> Option<Vec<parking_lot::ArcMutexGuard<parking_lot::RawMutex, ()>>> {
        let mut reps: Vec<usize> = {
            let mut uf = self.uf.lock();
            ids.iter().map(|&i| uf.find(i)).collect()
        };
        reps.sort_unstable();
        reps.dedup();
        let mutexes = self.mutexes.lock();
        let handles: Vec<Arc<Mutex<()>>> = reps.iter().map(|&r| mutexes[r].clone()).collect();
        drop(mutexes);
        let mut guards = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.try_lock_arc() {
                Some(guard) => guards.push(guard),
                None => return None,
            }
        }
        Some(guards)
    }
}

struct Shared {
    program: Program,
    graph: GroupGraph,
    layout: Layout,
    locks_analysis: DisjointnessAnalysis,
    lock_table: LockTable,
    router: Mutex<Router>,
    /// Messages in flight + formed-but-incomplete invocations. Zero means
    /// quiescence.
    activity: AtomicI64,
    invocations: AtomicU64,
    body_cycles: AtomicU64,
    next_tag: AtomicU64,
    senders: Vec<Sender<Message>>,
    /// Collects objects that left dispatch (for result extraction).
    graveyard: Sender<Box<TObject>>,
    telemetry: Telemetry,
    dispatches: Counter,
    lock_retries: Counter,
    bytes_sent: Counter,
}

/// Estimated wire size of one object, matching the virtual executor's
/// default of 16 payload words (the threaded executor moves `Box`ed
/// payloads, so this is an estimate for telemetry, not a transfer cost).
const OBJ_BYTES_ESTIMATE: u64 = 16 * 8;

impl Shared {
    fn spec(&self) -> &ProgramSpec {
        &self.program.spec
    }

    fn mint_tag(&self) -> TagInstance {
        TagInstance(self.next_tag.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Sends `obj` to the worker owning `instance`; returns the
    /// destination core so callers can record the transfer.
    fn send(&self, instance: InstanceId, obj: Box<TObject>) -> usize {
        self.activity.fetch_add(1, Ordering::SeqCst);
        let core = self.layout.core_of(instance).index();
        self.senders[core]
            .send(Message::Deliver(obj))
            .expect("worker channel open during execution");
        self.bytes_sent.add(OBJ_BYTES_ESTIMATE);
        core
    }
}

/// A completed run of the threaded executor.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Invocations executed across all workers.
    pub invocations: u64,
    /// Total body cycles charged.
    pub body_cycles: Cycles,
    /// Final objects' class and payload, for result extraction.
    pub finished: Vec<(ClassId, NativePayload)>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl ThreadedReport {
    /// Returns the payloads of finished objects of `class`, downcast to
    /// `T`.
    ///
    /// # Panics
    ///
    /// Panics if a payload of that class is not a `T`.
    pub fn payloads_of<T: 'static>(&self, class: ClassId) -> Vec<&T> {
        self.finished
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, p)| p.downcast_ref::<T>().expect("payload type mismatch"))
            .collect()
    }
}

/// Executes native programs on real threads. See the module docs.
#[derive(Debug)]
pub struct ThreadedExecutor {
    _cost: CostModel,
}

impl ThreadedExecutor {
    /// Creates an executor. The cost model is accepted for interface
    /// symmetry with the virtual executor; the threaded executor reports
    /// real wall time plus body-charged cycles.
    pub fn new(cost: CostModel) -> Self {
        ThreadedExecutor { _cost: cost }
    }

    /// Runs `program` under `layout` with one thread per core.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NativeOnly`] for interpreted programs.
    pub fn run(
        &self,
        program: &Program,
        graph: &GroupGraph,
        layout: &Layout,
        locks: &DisjointnessAnalysis,
        startup: Option<NativePayload>,
    ) -> Result<ThreadedReport, ExecError> {
        self.run_with_telemetry(program, graph, layout, locks, startup, &Telemetry::disabled())
    }

    /// Like [`Self::run`], recording dispatch, contention, traffic, and
    /// channel-occupancy events into `telemetry` (timestamps in
    /// nanoseconds since the telemetry session's creation). With
    /// [`Telemetry::disabled`] every recording site is a no-op and the
    /// dispatch hot path performs no telemetry allocations.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NativeOnly`] for interpreted programs.
    pub fn run_with_telemetry(
        &self,
        program: &Program,
        graph: &GroupGraph,
        layout: &Layout,
        locks: &DisjointnessAnalysis,
        startup: Option<NativePayload>,
        telemetry: &Telemetry,
    ) -> Result<ThreadedReport, ExecError> {
        if !program.is_native() {
            return Err(ExecError::NativeOnly);
        }
        telemetry.set_time_unit(TimeUnit::Nanos);
        let start = std::time::Instant::now();
        let core_count = layout.core_count;
        let mut senders = Vec::with_capacity(core_count);
        let mut receivers = Vec::with_capacity(core_count);
        for _ in 0..core_count {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(rx);
        }
        let (grave_tx, grave_rx) = unbounded::<Box<TObject>>();
        let shared = Arc::new(Shared {
            program: program.clone(),
            graph: graph.clone(),
            layout: layout.clone(),
            locks_analysis: locks.clone(),
            lock_table: LockTable::new(),
            router: Mutex::new(Router::new()),
            activity: AtomicI64::new(0),
            invocations: AtomicU64::new(0),
            body_cycles: AtomicU64::new(0),
            next_tag: AtomicU64::new(0),
            senders,
            graveyard: grave_tx,
            telemetry: telemetry.clone(),
            dispatches: telemetry.counter("threaded.dispatches"),
            lock_retries: telemetry.counter("threaded.lock_retries"),
            bytes_sent: telemetry.counter("threaded.bytes_sent"),
        });

        // Inject the startup object.
        let spec = shared.spec().clone();
        let startup_obj = Box::new(TObject {
            class: spec.startup.class,
            flags: FlagSet::new().with(spec.startup.flag, true),
            tags: Vec::new(),
            payload: startup.unwrap_or_else(|| Box::new(())),
            lock: shared.lock_table.fresh(),
        });
        let startup_inst = layout.instances_of(graph.startup_group)[0];
        shared.send(startup_inst, startup_obj);

        // Spawn workers.
        let mut handles = Vec::with_capacity(core_count);
        for (core, rx) in receivers.into_iter().enumerate() {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || worker_loop(core, rx, shared)));
        }

        // Quiescence: activity stays at zero across a settle delay.
        loop {
            std::thread::sleep(Duration::from_micros(300));
            if shared.activity.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_micros(300));
                if shared.activity.load(Ordering::SeqCst) == 0 {
                    break;
                }
            }
        }
        for tx in &shared.senders {
            let _ = tx.send(Message::Shutdown);
        }
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }

        let mut finished = Vec::new();
        while let Ok(obj) = grave_rx.try_recv() {
            finished.push((obj.class, obj.payload));
        }
        Ok(ThreadedReport {
            invocations: shared.invocations.load(Ordering::SeqCst),
            body_cycles: shared.body_cycles.load(Ordering::SeqCst),
            finished,
            wall: start.elapsed(),
        })
    }
}

impl Default for ThreadedExecutor {
    fn default() -> Self {
        ThreadedExecutor::new(CostModel::DEFAULT)
    }
}

/// A formed invocation held by a worker.
#[allow(clippy::vec_box)] // objects stay boxed so routing re-sends them without moving
struct PendingInv {
    task: TaskId,
    instance: InstanceId,
    objs: Vec<Box<TObject>>,
    tag_env: Vec<Option<TagInstance>>,
    /// Failed try-lock-all attempts this invocation has survived.
    retries: u64,
}

fn worker_loop(core: usize, rx: Receiver<Message>, shared: Arc<Shared>) {
    let spec = shared.spec().clone();
    let mut sink = shared.telemetry.worker(core);
    // Instances on this core, with their (task, param) slots.
    let instances = shared.layout.instances_on(bamboo_machine::CoreId::new(core));
    let mut slots: Vec<Vec<(TaskId, ParamIdx)>> = Vec::new();
    let mut sets: Vec<Vec<VecDeque<Box<TObject>>>> = Vec::new();
    for inst in &instances {
        let group = &shared.graph.groups[shared.layout.instances[inst.index()].group.index()];
        let mut keys = Vec::new();
        for task in &group.tasks {
            for p in 0..spec.task(*task).params.len() {
                keys.push((*task, ParamIdx::new(p)));
            }
        }
        sets.push((0..keys.len()).map(|_| VecDeque::new()).collect());
        slots.push(keys);
    }
    let mut ready: VecDeque<PendingInv> = VecDeque::new();

    loop {
        // Drain incoming messages (block only when nothing is ready).
        let msg = if ready.is_empty() { rx.recv().ok() } else { rx.try_recv().ok() };
        match msg {
            Some(Message::Deliver(obj)) => {
                if sink.is_enabled() {
                    let ts = sink.now();
                    sink.obj_recv(ts, OBJ_BYTES_ESTIMATE, u64::MAX);
                    sink.queue_depth(ts, rx.len() as u64, ready.len() as u64);
                }
                deliver(&shared, &spec, &instances, &slots, &mut sets, obj, &mut sink);
                form_all(&shared, &spec, &instances, &slots, &mut sets, &mut ready);
                // The message's activity transfers to any invocations it
                // formed (counted in form_all); release the message's own.
                shared.activity.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            Some(Message::Shutdown) => break,
            None => {}
        }
        if let Some(mut inv) = ready.pop_front() {
            let lock_ids: Vec<usize> = inv.objs.iter().map(|o| o.lock).collect();
            match shared.lock_table.try_lock_all(&lock_ids) {
                Some(guards) => {
                    sink.lock_acquired(sink.now(), lock_ids.len() as u64, inv.retries);
                    execute(&shared, &spec, inv, &mut sink);
                    drop(guards);
                }
                None => {
                    // Transactional retry: nothing held; try a different
                    // invocation later.
                    shared.lock_retries.inc();
                    sink.lock_failed(sink.now(), lock_ids.len() as u64, inv.task.index() as u64);
                    inv.retries += 1;
                    ready.push_back(inv);
                    std::thread::yield_now();
                }
            }
        }
    }
    // Drain remaining parameter-set objects so results are extractable.
    for inst_sets in sets {
        for mut set in inst_sets {
            while let Some(obj) = set.pop_front() {
                let _ = shared.graveyard.send(obj);
            }
        }
    }
}

fn deliver(
    shared: &Shared,
    spec: &ProgramSpec,
    instances: &[InstanceId],
    slots: &[Vec<(TaskId, ParamIdx)>],
    sets: &mut [Vec<VecDeque<Box<TObject>>>],
    obj: Box<TObject>,
    sink: &mut WorkerSink,
) {
    // Enqueue at the first instance on this core with a matching slot.
    // (With several same-group instances per core this coarsens the
    // round-robin split; correctness is unaffected because any matching
    // instance may process the object.) Unlike the virtual executor,
    // which enqueues an object into every matching parameter set and
    // reserves it at invocation formation, workers *own* their objects:
    // single-slot delivery makes double capture impossible by
    // construction, at the cost of possible starvation when two tasks'
    // guards overlap and only the second can make progress — the
    // synthesis pipeline never produces such programs, and the virtual
    // executor handles them.
    for (i, _inst) in instances.iter().enumerate() {
        for (slot, (task, param)) in slots[i].iter().enumerate() {
            let pspec = &spec.task(*task).params[param.index()];
            if pspec.class == obj.class && pspec.guard.eval(obj.flags) {
                sets[i][slot].push_back(obj);
                return;
            }
        }
    }
    // No local slot matches: forward to the consuming group, or retire
    // the object if no task can ever consume it.
    let inst = instances.first().copied().unwrap_or(InstanceId(0));
    let hash = obj.tags.first().map(|(_, i)| i.0);
    let decision = shared.router.lock().route_transition(
        spec,
        &shared.graph,
        &shared.layout,
        inst,
        obj.class,
        obj.flags,
        hash,
    );
    match decision {
        RouteDecision::Move(dest) => {
            let core = shared.send(dest, obj);
            sink.obj_send(sink.now(), OBJ_BYTES_ESTIMATE, core as u64);
        }
        _ => {
            let _ = shared.graveyard.send(obj);
        }
    }
}

fn form_all(
    shared: &Shared,
    spec: &ProgramSpec,
    instances: &[InstanceId],
    slots: &[Vec<(TaskId, ParamIdx)>],
    sets: &mut [Vec<VecDeque<Box<TObject>>>],
    ready: &mut VecDeque<PendingInv>,
) {
    for (i, inst) in instances.iter().enumerate() {
        let group = &shared.graph.groups[shared.layout.instances[inst.index()].group.index()];
        for &task in &group.tasks {
            'again: loop {
                let tspec = spec.task(task);
                let n = tspec.params.len();
                let mut tag_env: Vec<Option<TagInstance>> = vec![None; tspec.tag_vars.len()];
                let mut picks: Vec<(usize, usize)> = Vec::new(); // (slot, idx)
                for p in 0..n {
                    let slot = slots[i]
                        .iter()
                        .position(|(t, pi)| *t == task && pi.index() == p)
                        .expect("slot exists");
                    let pspec = &tspec.params[p];
                    let mut found = None;
                    for (idx, cand) in sets[i][slot].iter().enumerate() {
                        if picks.contains(&(slot, idx)) {
                            continue;
                        }
                        if !pspec.guard.eval(cand.flags) {
                            continue;
                        }
                        let mut ok = true;
                        let mut updates = Vec::new();
                        for tc in &pspec.tags {
                            let bound = updates
                                .iter()
                                .find(|(v, _)| *v == tc.var.index())
                                .map(|(_, inst)| *inst)
                                .or(tag_env[tc.var.index()]);
                            match bound {
                                Some(instn) => {
                                    if !cand.tags.contains(&(tc.tag_type, instn)) {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    match cand.tags.iter().find(|(tt, _)| *tt == tc.tag_type) {
                                        Some((_, instn)) => {
                                            updates.push((tc.var.index(), *instn))
                                        }
                                        None => {
                                            ok = false;
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                        if ok {
                            for (v, instn) in updates {
                                tag_env[v] = Some(instn);
                            }
                            found = Some((slot, idx));
                            break;
                        }
                    }
                    match found {
                        Some(pick) => picks.push(pick),
                        None => break 'again,
                    }
                }
                if picks.is_empty() {
                    break;
                }
                // Extract picked objects; each param has its own slot, so
                // earlier removals do not shift later picks.
                let mut objs = Vec::with_capacity(n);
                for (slot, idx) in picks {
                    let obj = sets[i][slot].remove(idx).expect("picked index valid");
                    objs.push(obj);
                }
                shared.activity.fetch_add(1, Ordering::SeqCst);
                ready.push_back(PendingInv { task, instance: *inst, objs, tag_env, retries: 0 });
            }
        }
    }
}

fn execute(shared: &Shared, spec: &ProgramSpec, mut inv: PendingInv, sink: &mut WorkerSink) {
    sink.task_start(sink.now(), inv.task.index() as u64, inv.instance.index() as u64);
    let tspec = spec.task(inv.task);
    // Mint body-created tag variables.
    for (v, var) in tspec.tag_vars.iter().enumerate() {
        if !var.from_param && inv.tag_env[v].is_none() {
            inv.tag_env[v] = Some(shared.mint_tag());
        }
    }
    // Run the body.
    let body = shared
        .program
        .native_body(inv.task)
        .expect("threaded executor only runs native programs")
        .clone();
    let mut payloads: Vec<NativePayload> = Vec::with_capacity(inv.objs.len());
    for obj in &mut inv.objs {
        payloads.push(std::mem::replace(&mut obj.payload, Box::new(())));
    }
    let mut ctx = TaskCtx::new(&mut payloads, tspec.alloc_sites.len(), tspec.exits.len());
    let exit_idx = body(&mut ctx);
    let exit = ExitId::new(ctx.check_exit(exit_idx));
    let (charged, created) = ctx.finish();
    for (obj, payload) in inv.objs.iter_mut().zip(payloads) {
        obj.payload = payload;
    }
    shared.body_cycles.fetch_add(charged, Ordering::Relaxed);
    shared.invocations.fetch_add(1, Ordering::Relaxed);
    shared.dispatches.inc();

    // Shared-lock directive.
    for group in &shared.locks_analysis.lock_plans[inv.task.index()].groups {
        for pair in group.windows(2) {
            shared
                .lock_table
                .merge(inv.objs[pair[0].index()].lock, inv.objs[pair[1].index()].lock);
        }
    }

    // Exit actions.
    let exit_spec = tspec.exit(exit);
    for (param_idx, actions) in &exit_spec.actions {
        let obj = &mut inv.objs[param_idx.index()];
        for action in actions {
            match action {
                FlagOrTagAction::SetFlag(flag, value) => obj.flags.set(*flag, *value),
                FlagOrTagAction::AddTag(var) => {
                    if let Some(instn) = inv.tag_env[var.index()] {
                        let tt = tspec.tag_vars[var.index()].tag_type;
                        if !obj.tags.contains(&(tt, instn)) {
                            obj.tags.push((tt, instn));
                        }
                    }
                }
                FlagOrTagAction::ClearTag(var) => {
                    if let Some(instn) = inv.tag_env[var.index()] {
                        let tt = tspec.tag_vars[var.index()].tag_type;
                        obj.tags.retain(|t| *t != (tt, instn));
                    }
                }
            }
        }
    }

    // Route parameters.
    for obj in inv.objs {
        let hash = obj.tags.first().map(|(_, i)| i.0);
        let decision = shared.router.lock().route_transition(
            spec,
            &shared.graph,
            &shared.layout,
            inv.instance,
            obj.class,
            obj.flags,
            hash,
        );
        match decision {
            RouteDecision::Stay => {
                let core = shared.send(inv.instance, obj);
                sink.obj_send(sink.now(), OBJ_BYTES_ESTIMATE, core as u64);
            }
            RouteDecision::Move(dest) => {
                let core = shared.send(dest, obj);
                sink.obj_send(sink.now(), OBJ_BYTES_ESTIMATE, core as u64);
            }
            RouteDecision::Dead => {
                let _ = shared.graveyard.send(obj);
            }
        }
    }

    // Created objects.
    for (site_idx, payload) in created {
        let site = bamboo_lang::ids::AllocSiteId::new(site_idx);
        let site_spec = &tspec.alloc_sites[site.index()];
        let tags: Vec<(TagTypeId, TagInstance)> = site_spec
            .bound_tags
            .iter()
            .filter_map(|var| {
                inv.tag_env[var.index()].map(|instn| (tspec.tag_vars[var.index()].tag_type, instn))
            })
            .collect();
        let hash = tags.first().map(|(_, i)| i.0);
        let dest = shared.router.lock().route_new(
            spec,
            &shared.graph,
            &shared.layout,
            inv.instance,
            inv.task,
            site,
            hash,
        );
        let obj = Box::new(TObject {
            class: site_spec.class,
            flags: site_spec.initial_flag_set(),
            tags,
            payload,
            lock: shared.lock_table.fresh(),
        });
        let core = shared.send(dest, obj);
        sink.obj_send(sink.now(), OBJ_BYTES_ESTIMATE, core as u64);
    }

    // Invocation complete.
    sink.task_end(sink.now(), inv.task.index() as u64, inv.instance.index() as u64);
    shared.activity.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtual_exec::tests_support::fanout_setup;

    #[test]
    fn threaded_matches_virtual_result() {
        let (program, graph, layout, _machine, locks) = fanout_setup(24, 3);
        let report = ThreadedExecutor::default()
            .run(&program, &graph, &layout, &locks, None)
            .unwrap();
        // 1 startup + 24 work + 24 reduce.
        assert_eq!(report.invocations, 49);
        let acc_class = program.spec.class_by_name("Acc").unwrap();
        let accs = report.payloads_of::<(i64, i64, i64)>(acc_class);
        assert_eq!(accs.len(), 1);
        // Sum of squares 0..24.
        let expected: i64 = (0..24).map(|i| i * i).sum();
        assert_eq!(accs[0].0, expected);
    }

    #[test]
    fn threaded_single_core_works() {
        let (program, graph, layout, _machine, locks) = fanout_setup(8, 1);
        let report = ThreadedExecutor::default()
            .run(&program, &graph, &layout, &locks, None)
            .unwrap();
        assert_eq!(report.invocations, 17);
        assert!(report.body_cycles > 0);
    }

    #[test]
    fn interpreted_program_is_rejected() {
        let compiled = bamboo_lang::compile_source(
            "t",
            r#"
            class StartupObject { flag initialstate; }
            task t(StartupObject s in initialstate) { taskexit(s: initialstate := false); }
            "#,
        )
        .unwrap();
        let locks = DisjointnessAnalysis::all_disjoint(&compiled.spec);
        let program = Program::from_compiled(compiled);
        let analysis = bamboo_analysis::DependenceAnalysis::run(&program.spec);
        let cstg = bamboo_analysis::Cstg::build(&program.spec, &analysis);
        let empty = bamboo_profile::ProfileCollector::new(&program.spec, "x").finish();
        let graph = GroupGraph::build(&program.spec, &cstg, &empty);
        let layout = Layout::single_core(&graph);
        let err = ThreadedExecutor::default()
            .run(&program, &graph, &layout, &locks, None)
            .unwrap_err();
        assert_eq!(err, ExecError::NativeOnly);
    }

    #[test]
    fn lock_contention_retries_preserve_correctness() {
        // Force all objects into one lock class by marking every task's
        // parameters shared: heavy contention, same result.
        let (program, graph, layout, _machine, locks) = fanout_setup(16, 4);
        let reduce = program.spec.task_by_name("reduce").unwrap();
        let locks = locks.with_shared(
            reduce,
            &[bamboo_lang::ids::ParamIdx::new(0), bamboo_lang::ids::ParamIdx::new(1)],
        );
        let report = ThreadedExecutor::default()
            .run(&program, &graph, &layout, &locks, None)
            .unwrap();
        let acc_class = program.spec.class_by_name("Acc").unwrap();
        let accs = report.payloads_of::<(i64, i64, i64)>(acc_class);
        let expected: i64 = (0..16).map(|i| i * i).sum();
        assert_eq!(accs[0].0, expected);
    }

    /// Overhead guard: with `Telemetry::disabled()` the dispatch hot
    /// path must perform **zero** telemetry heap allocations — asserted
    /// through the telemetry allocation-counter hook, not wall clock.
    #[test]
    fn disabled_telemetry_allocates_nothing_under_contention() {
        let (program, graph, layout, _machine, locks) = fanout_setup(16, 4);
        let reduce = program.spec.task_by_name("reduce").unwrap();
        let locks = locks.with_shared(
            reduce,
            &[bamboo_lang::ids::ParamIdx::new(0), bamboo_lang::ids::ParamIdx::new(1)],
        );
        let telemetry = Telemetry::disabled();
        let report = ThreadedExecutor::default()
            .run_with_telemetry(&program, &graph, &layout, &locks, None, &telemetry)
            .unwrap();
        // Same correctness as the plain contention test…
        let acc_class = program.spec.class_by_name("Acc").unwrap();
        let accs = report.payloads_of::<(i64, i64, i64)>(acc_class);
        let expected: i64 = (0..16).map(|i| i * i).sum();
        assert_eq!(accs[0].0, expected);
        // …and not a single telemetry allocation across 33 invocations.
        assert_eq!(telemetry.heap_allocations(), 0);
        assert!(telemetry.report().events.is_empty());
    }

    /// Enabled telemetry allocates only at setup (rings + counter
    /// registrations): the count is independent of how many tasks run.
    #[test]
    fn enabled_telemetry_allocations_do_not_scale_with_tasks() {
        let allocs_for = |n: i64| {
            let (program, graph, layout, _machine, locks) = fanout_setup(n, 2);
            let telemetry = Telemetry::enabled(2);
            telemetry.set_time_unit(TimeUnit::Nanos);
            ThreadedExecutor::default()
                .run_with_telemetry(&program, &graph, &layout, &locks, None, &telemetry)
                .unwrap();
            telemetry.heap_allocations()
        };
        let small = allocs_for(4);
        let large = allocs_for(32);
        assert!(small > 0);
        assert_eq!(small, large, "telemetry allocations must be setup-only");
    }

    #[test]
    fn threaded_run_records_dispatch_and_traffic_events() {
        use bamboo_telemetry::EventKind;
        let (program, graph, layout, _machine, locks) = fanout_setup(12, 3);
        let telemetry = Telemetry::enabled(3);
        let report = ThreadedExecutor::default()
            .run_with_telemetry(&program, &graph, &layout, &locks, None, &telemetry)
            .unwrap();
        // 1 startup + 12 work + 12 reduce.
        assert_eq!(report.invocations, 25);
        let t = telemetry.report();
        assert_eq!(t.unit, TimeUnit::Nanos);
        assert_eq!(t.count(EventKind::TaskStart), 25);
        assert_eq!(t.count(EventKind::TaskEnd), 25);
        assert_eq!(t.count(EventKind::LockAcquired), 25);
        assert!(t.count(EventKind::ObjRecv) > 0);
        assert!(t.count(EventKind::QueueDepth) > 0);
        assert_eq!(t.metrics.counters["threaded.dispatches"], 25);
        // Timestamps are monotone within each core's event stream.
        for core in t.active_cores() {
            let ts: Vec<u64> = t.events_on(core).map(|e| e.ts).collect();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
