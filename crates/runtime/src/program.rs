//! Executable programs: a [`ProgramSpec`] plus task bodies.
//!
//! Two body kinds exist, mirroring the two frontends:
//!
//! - **Native** bodies are Rust closures over a [`TaskCtx`] — the analog
//!   of the paper's compiler-generated C code. They downcast their
//!   parameter payloads, charge compute cycles explicitly, create objects
//!   at declared allocation sites, and return the index of the exit they
//!   take.
//! - **Interpreted** bodies are DSL IR executed by
//!   [`bamboo_lang::interp::Interp`]; cycle charges come from the
//!   interpreter's own operation counting.

use bamboo_lang::builder::BuiltProgram;
use bamboo_lang::ids::TaskId;
use bamboo_lang::spec::ProgramSpec;
use bamboo_lang::CompiledProgram;
use bamboo_profile::Cycles;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A payload a native task body operates on.
pub type NativePayload = Box<dyn Any + Send>;

/// A native task body: runs over a [`TaskCtx`], returns the taken exit's
/// index.
pub type NativeBody = Arc<dyn Fn(&mut TaskCtx<'_>) -> usize + Send + Sync>;

/// Convenience constructor for [`NativeBody`] values.
pub fn body(f: impl Fn(&mut TaskCtx<'_>) -> usize + Send + Sync + 'static) -> NativeBody {
    Arc::new(f)
}

/// An executable Bamboo program.
#[derive(Clone)]
pub struct Program {
    /// The declarative model.
    pub spec: Arc<ProgramSpec>,
    kind: Kind,
}

#[derive(Clone)]
enum Kind {
    Native(Vec<NativeBody>),
    Interpreted(Arc<CompiledProgram>),
}

impl Program {
    /// Wraps a natively built program.
    ///
    /// # Panics
    ///
    /// Panics if the body count does not match the task count (cannot
    /// happen for [`BuiltProgram`] values from the builder).
    pub fn from_native(built: BuiltProgram<NativeBody>) -> Self {
        assert_eq!(built.bodies.len(), built.spec.tasks.len());
        Program {
            spec: Arc::new(built.spec),
            kind: Kind::Native(built.bodies),
        }
    }

    /// Wraps a compiled DSL program.
    pub fn from_compiled(compiled: CompiledProgram) -> Self {
        Program {
            spec: Arc::new(compiled.spec.clone()),
            kind: Kind::Interpreted(Arc::new(compiled)),
        }
    }

    /// Returns the native body of `task`, or `None` for interpreted
    /// programs.
    pub fn native_body(&self, task: TaskId) -> Option<&NativeBody> {
        match &self.kind {
            Kind::Native(bodies) => Some(&bodies[task.index()]),
            Kind::Interpreted(_) => None,
        }
    }

    /// Returns the compiled DSL program, or `None` for native programs.
    pub fn compiled(&self) -> Option<&Arc<CompiledProgram>> {
        match &self.kind {
            Kind::Interpreted(c) => Some(c),
            Kind::Native(_) => None,
        }
    }

    /// Whether this program has native bodies (required by the threaded
    /// executor).
    pub fn is_native(&self) -> bool {
        matches!(self.kind, Kind::Native(_))
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program({}, {}, {} tasks)",
            self.spec.name,
            if self.is_native() {
                "native"
            } else {
                "interpreted"
            },
            self.spec.tasks.len()
        )
    }
}

/// Execution context handed to a native task body.
///
/// Parameter payloads are moved out of the object store for the duration
/// of the invocation (the locks are held), so the body has exclusive
/// access.
pub struct TaskCtx<'a> {
    /// Parameter payloads, in parameter order.
    params: &'a mut [NativePayload],
    /// Cycles charged so far.
    charged: Cycles,
    /// Objects created at allocation sites: `(site index, payload)`.
    created: Vec<(usize, NativePayload)>,
    /// Number of allocation sites the task declares.
    n_sites: usize,
    /// Number of exits the task declares.
    n_exits: usize,
}

impl<'a> TaskCtx<'a> {
    /// Creates a context (used by executors).
    pub(crate) fn new(params: &'a mut [NativePayload], n_sites: usize, n_exits: usize) -> Self {
        TaskCtx {
            params,
            charged: 0,
            created: Vec::new(),
            n_sites,
            n_exits,
        }
    }

    /// Charges `cycles` of compute work to this invocation.
    pub fn charge(&mut self, cycles: Cycles) {
        self.charged += cycles;
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Borrows parameter `i`'s payload.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the payload is not a `T`.
    pub fn param<T: 'static>(&self, i: usize) -> &T {
        self.params[i]
            .downcast_ref::<T>()
            .expect("parameter payload type mismatch")
    }

    /// Mutably borrows parameter `i`'s payload.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the payload is not a `T`.
    pub fn param_mut<T: 'static>(&mut self, i: usize) -> &mut T {
        self.params[i]
            .downcast_mut::<T>()
            .expect("parameter payload type mismatch")
    }

    /// Mutably borrows two distinct parameters at once (the common
    /// reduce-into pattern).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`, either index is out of range, or a payload has
    /// the wrong type.
    pub fn param_pair_mut<A: 'static, B: 'static>(
        &mut self,
        i: usize,
        j: usize,
    ) -> (&mut A, &mut B) {
        assert_ne!(i, j, "param_pair_mut needs two distinct parameters");
        let (lo, hi, swap) = if i < j { (i, j, false) } else { (j, i, true) };
        let (left, right) = self.params.split_at_mut(hi);
        let a_slot = &mut left[lo];
        let b_slot = &mut right[0];
        if swap {
            let b = a_slot
                .downcast_mut::<B>()
                .expect("parameter payload type mismatch");
            let a = b_slot
                .downcast_mut::<A>()
                .expect("parameter payload type mismatch");
            (a, b)
        } else {
            let a = a_slot
                .downcast_mut::<A>()
                .expect("parameter payload type mismatch");
            let b = b_slot
                .downcast_mut::<B>()
                .expect("parameter payload type mismatch");
            (a, b)
        }
    }

    /// Creates an object at declared allocation site `site` with the given
    /// payload; the runtime applies the site's initial flags and tag
    /// bindings and routes the object.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for the task.
    pub fn create<T: Send + 'static>(&mut self, site: usize, value: T) {
        assert!(site < self.n_sites, "allocation site {site} out of range");
        self.created.push((site, Box::new(value)));
    }

    /// Number of objects created so far in this invocation.
    pub fn created_count(&self) -> usize {
        self.created.len()
    }

    /// Validates an exit index (helper for executors).
    pub(crate) fn check_exit(&self, exit: usize) -> usize {
        assert!(exit < self.n_exits, "exit {exit} out of range");
        exit
    }

    /// Consumes the context, returning `(charged, created)`.
    pub(crate) fn finish(self) -> (Cycles, Vec<(usize, NativePayload)>) {
        (self.charged, self.created)
    }
}

impl fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TaskCtx({} params, {} charged, {} created)",
            self.params.len(),
            self.charged,
            self.created.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_param_access_and_charge() {
        let mut payloads: Vec<NativePayload> = vec![Box::new(41i64), Box::new("x".to_string())];
        let mut ctx = TaskCtx::new(&mut payloads, 1, 2);
        *ctx.param_mut::<i64>(0) += 1;
        assert_eq!(*ctx.param::<i64>(0), 42);
        assert_eq!(ctx.param::<String>(1), "x");
        ctx.charge(100);
        ctx.create(0, 7u32);
        let (charged, created) = ctx.finish();
        assert_eq!(charged, 100);
        assert_eq!(created.len(), 1);
    }

    #[test]
    fn ctx_pair_access_both_orders() {
        let mut payloads: Vec<NativePayload> = vec![Box::new(1i64), Box::new(2.5f64)];
        let mut ctx = TaskCtx::new(&mut payloads, 0, 1);
        {
            let (a, b) = ctx.param_pair_mut::<i64, f64>(0, 1);
            *a += 1;
            *b += 0.5;
        }
        let (b, a) = ctx.param_pair_mut::<f64, i64>(1, 0);
        assert_eq!(*b, 3.0);
        assert_eq!(*a, 2);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_downcast_panics() {
        let mut payloads: Vec<NativePayload> = vec![Box::new(1i64)];
        let ctx = TaskCtx::new(&mut payloads, 0, 1);
        ctx.param::<String>(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_site_panics() {
        let mut payloads: Vec<NativePayload> = vec![];
        let mut ctx = TaskCtx::new(&mut payloads, 0, 1);
        ctx.create(0, ());
    }
}
