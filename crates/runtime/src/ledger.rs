//! The request ledger: per-request outstanding-invocation refcounts.
//!
//! The threaded executor's quiescence protocol counts *global* activity
//! (messages in flight + formed-but-incomplete invocations) in one
//! transfer-ordered atomic. Serving mode needs the same signal per
//! request: a resident deployment completes request 17 when *its*
//! activity drains, regardless of what requests 18 and 19 are doing.
//!
//! The ledger mirrors every global activity increment/decrement into a
//! per-request count, keyed by the request id stamped on each object
//! and invocation. Because every unit of work inherits the request of
//! the work that spawned it (request isolation: an invocation only
//! combines objects of one request, and everything it releases or
//! creates carries that request), the per-request count obeys the same
//! transfer-ordered invariant as the global counter — every increment
//! happens before the matching hand-off and every decrement after all
//! follow-on work was counted — so a count reaching zero is a
//! *definitive* completion signal, never a transient dip.
//!
//! Completions are pushed to an unbounded channel the driver (or the
//! serving front-end) drains; each carries the request's executed
//! invocation tally so per-request exactness can be cross-checked
//! against the virtual executor's causal graph.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Stripes for the per-request count maps (request id modulo).
const STRIPES: usize = 16;

/// A request whose outstanding work drained to zero.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The completed request's id.
    pub request: u64,
    /// Task invocations the request executed (transitively, from its
    /// root object to quiescence).
    pub invocations: u64,
    /// When the last unit of the request's activity was released.
    pub completed_at: Instant,
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    count: i64,
    invocations: u64,
}

/// Striped per-request activity counts with a completion channel. See
/// the module docs for the correctness argument.
#[derive(Debug)]
pub struct RequestLedger {
    stripes: Vec<Mutex<HashMap<u64, Entry>>>,
    open: AtomicUsize,
    completions: Sender<Completion>,
}

impl RequestLedger {
    /// Creates a ledger and the receiving end of its completion
    /// channel.
    pub fn new() -> (Self, Receiver<Completion>) {
        let (tx, rx) = unbounded();
        let ledger = RequestLedger {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            open: AtomicUsize::new(0),
            completions: tx,
        };
        (ledger, rx)
    }

    fn stripe(&self, request: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.stripes[(request % STRIPES as u64) as usize]
    }

    /// Counts one unit of activity against `request` (mirror of the
    /// global `activity.fetch_add`). The first unit opens the request.
    pub fn inc(&self, request: u64) {
        let mut map = self.stripe(request).lock();
        let entry = map.entry(request).or_default();
        if entry.count == 0 {
            self.open.fetch_add(1, Ordering::Relaxed);
        }
        entry.count += 1;
    }

    /// Counts one unit of activity against `request` only when the
    /// request is still open, and reports whether it was counted. Used
    /// when re-sending *buffered* objects — a hot-migration drain or a
    /// dead core's failover — where the request may have already
    /// completed: a completed request's leftovers must travel without
    /// re-opening its ledger entry, or the completion would fire twice.
    pub fn inc_if_open(&self, request: u64) -> bool {
        let mut map = self.stripe(request).lock();
        match map.get_mut(&request) {
            Some(entry) => {
                entry.count += 1;
                true
            }
            None => false,
        }
    }

    /// Charges one executed invocation to `request` (called while the
    /// invocation's own activity unit is still held, so the entry is
    /// guaranteed live).
    pub fn charge_invocation(&self, request: u64) {
        let mut map = self.stripe(request).lock();
        if let Some(entry) = map.get_mut(&request) {
            entry.invocations += 1;
        }
    }

    /// Releases one unit of `request`'s activity (mirror of the global
    /// `release_activity`). The release that drains the request removes
    /// its entry, pushes a [`Completion`] on the channel, and returns
    /// it so the caller can emit telemetry and sweep buffered objects.
    pub fn dec(&self, request: u64) -> Option<Completion> {
        let mut map = self.stripe(request).lock();
        let entry = map.get_mut(&request)?;
        entry.count -= 1;
        if entry.count > 0 {
            return None;
        }
        debug_assert_eq!(entry.count, 0, "request {request} over-released");
        let invocations = entry.invocations;
        map.remove(&request);
        drop(map);
        self.open.fetch_sub(1, Ordering::Relaxed);
        let completion = Completion {
            request,
            invocations,
            completed_at: Instant::now(),
        };
        // Receiver gone (batch caller dropped it) is fine: the return
        // value still drives events and sweeps.
        let _ = self.completions.send(completion);
        Some(completion)
    }

    /// Requests currently holding activity.
    pub fn outstanding(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// Whether no request holds activity (the no-leak invariant checked
    /// after a drain).
    pub fn is_empty(&self) -> bool {
        self.outstanding() == 0 && self.stripes.iter().all(|s| s.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_fires_exactly_at_zero() {
        let (ledger, rx) = RequestLedger::new();
        ledger.inc(7);
        ledger.inc(7);
        ledger.charge_invocation(7);
        assert_eq!(ledger.outstanding(), 1);
        assert!(ledger.dec(7).is_none());
        assert!(rx.try_recv().is_err());
        let done = ledger.dec(7).expect("second release drains");
        assert_eq!(done.request, 7);
        assert_eq!(done.invocations, 1);
        assert_eq!(rx.try_recv().unwrap().request, 7);
        assert!(ledger.is_empty());
    }

    #[test]
    fn requests_are_independent() {
        let (ledger, _rx) = RequestLedger::new();
        ledger.inc(1);
        ledger.inc(2);
        assert_eq!(ledger.outstanding(), 2);
        assert!(ledger.dec(1).is_some());
        assert_eq!(ledger.outstanding(), 1);
        assert!(!ledger.is_empty());
        assert!(ledger.dec(2).is_some());
        assert!(ledger.is_empty());
    }

    #[test]
    fn inc_if_open_never_resurrects_a_completed_request() {
        let (ledger, rx) = RequestLedger::new();
        ledger.inc(3);
        assert!(ledger.inc_if_open(3), "open request counts the unit");
        assert!(ledger.dec(3).is_none());
        assert!(ledger.dec(3).is_some());
        assert!(!ledger.inc_if_open(3), "completed request stays closed");
        assert!(ledger.dec(3).is_none(), "orphan release is a no-op");
        assert!(ledger.is_empty());
        assert_eq!(rx.try_iter().count(), 1, "exactly one completion");
    }

    #[test]
    fn reopening_a_request_id_works() {
        // Batch mode reuses the ledger across sequential requests; a
        // drained id must be re-openable without residue.
        let (ledger, rx) = RequestLedger::new();
        ledger.inc(1);
        ledger.charge_invocation(1);
        assert_eq!(ledger.dec(1).unwrap().invocations, 1);
        ledger.inc(1);
        assert_eq!(ledger.dec(1).unwrap().invocations, 0);
        assert_eq!(rx.try_iter().count(), 2);
    }
}
