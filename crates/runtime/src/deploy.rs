//! Deployment-centric execution API.
//!
//! A [`Deployment`] bundles everything a synthesized implementation
//! needs to execute — the program, the (preprocessed) group graph, the
//! core layout, and the lock plans — into one artifact. Both executors
//! consume it: [`crate::ThreadedExecutor::run`] takes `&Deployment`
//! directly, and [`crate::VirtualExecutor::over`] borrows from the same
//! value, so predicted-vs-observed comparisons are guaranteed to run
//! the identical plan.
//!
//! [`RunOptions`] carries the per-run knobs (startup payload,
//! telemetry session, steal policy, quiescence protocol) that used to
//! be positional arguments or hard-coded constants.

use crate::adapt::AdaptPolicy;
use crate::chaos::FaultSpec;
use crate::program::{NativePayload, Program};
use bamboo_analysis::{Cstg, DependenceAnalysis, DisjointnessAnalysis};
use bamboo_profile::ProfileCollector;
use bamboo_schedule::{GroupGraph, Layout, SynthesisResult};
use bamboo_telemetry::Telemetry;
use std::time::Duration;

/// A fully synthesized, executable plan: `(program, graph, layout,
/// locks)` as one artifact.
///
/// Build one from a [`SynthesisResult`] with
/// [`Deployment::from_synthesis`], or assemble the parts explicitly
/// with [`Deployment::new`] (hand-made layouts, tests).
#[derive(Clone, Debug)]
pub struct Deployment {
    /// The executable program (spec + bodies).
    pub program: Program,
    /// The group graph the layout refers to.
    pub graph: GroupGraph,
    /// Group instances mapped to cores.
    pub layout: Layout,
    /// Lock plans from the disjointness analysis.
    pub locks: DisjointnessAnalysis,
}

impl Deployment {
    /// Bundles the four artifacts into a deployment.
    pub fn new(
        program: Program,
        graph: GroupGraph,
        layout: Layout,
        locks: DisjointnessAnalysis,
    ) -> Self {
        Deployment {
            program,
            graph,
            layout,
            locks,
        }
    }

    /// Builds a deployment from a synthesizer result: the graph and the
    /// winning layout are taken from `synthesis`, the program and lock
    /// plans from the compile side.
    pub fn from_synthesis(
        program: &Program,
        locks: &DisjointnessAnalysis,
        synthesis: &SynthesisResult,
    ) -> Self {
        Deployment {
            program: program.clone(),
            graph: synthesis.graph.clone(),
            layout: synthesis.layout.clone(),
            locks: locks.clone(),
        }
    }

    /// The trivial single-core deployment (profiling bootstrap shape):
    /// base groups from a fresh dependence analysis, everything on
    /// core 0.
    pub fn single_core(program: &Program, locks: &DisjointnessAnalysis) -> Self {
        let dependence = DependenceAnalysis::run(&program.spec);
        let cstg = Cstg::build(&program.spec, &dependence);
        let empty = ProfileCollector::new(&program.spec, "bootstrap").finish();
        let graph = GroupGraph::build(&program.spec, &cstg, &empty);
        let layout = Layout::single_core(&graph);
        Deployment {
            program: program.clone(),
            graph,
            layout,
            locks: locks.clone(),
        }
    }

    /// Number of cores the layout targets.
    pub fn core_count(&self) -> usize {
        self.layout.core_count
    }
}

/// When a worker with an empty run queue may take invocations formed at
/// another core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StealPolicy {
    /// Never steal; every invocation executes on the core that formed
    /// it (the pre-redesign behavior).
    Disabled,
    /// Steal an invocation whose group also has an instance on the
    /// thief's core. Legal by the paper's data-parallelization rule:
    /// replicas of a group are interchangeable, so any core hosting a
    /// copy of the group may execute its invocations.
    #[default]
    SameGroup,
}

/// How the driver thread detects that the run has drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuiescencePolicy {
    /// Event-driven: the worker that drops the activity count to zero
    /// signals a condvar the driver waits on. No latency floor.
    #[default]
    EventDriven,
    /// Sleep-polling at a fixed interval with one confirming re-check
    /// (the pre-redesign behavior; ~2× the interval of latency floor).
    /// Kept for A/B benchmarking.
    Polling {
        /// Sleep granularity between activity checks.
        interval: Duration,
    },
}

/// How routing state is partitioned between workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouterPolicy {
    /// One router stripe per core: route calls from different cores
    /// never contend.
    #[default]
    Sharded,
    /// A single global stripe every route call serializes through (the
    /// pre-redesign behavior). Kept for A/B benchmarking.
    Global,
}

/// Per-run configuration for [`crate::ThreadedExecutor::run`].
///
/// Not `Clone`: the startup payload is an owned `Box<dyn Any>`.
///
/// ```
/// use bamboo_runtime::RunOptions;
/// use bamboo_telemetry::Telemetry;
///
/// let opts = RunOptions::default()
///     .with_telemetry(Telemetry::enabled(4))
///     .with_queue_capacity(128);
/// assert_eq!(opts.run_queue_capacity, 128);
/// ```
#[derive(Debug, Default)]
pub struct RunOptions {
    /// Payload for the startup object (`Box::new(())` when `None`).
    pub startup: Option<NativePayload>,
    /// Telemetry session to record into ([`Telemetry::disabled`] makes
    /// every recording site a no-op).
    pub telemetry: Telemetry,
    /// Work-stealing policy between same-group instances.
    pub steal: StealPolicy,
    /// Quiescence detection protocol.
    pub quiescence: QuiescencePolicy,
    /// Extra confirmation delay after activity first reaches zero.
    /// Zero by default: the activity counter is transfer-ordered
    /// (increments always precede the matching decrement), so zero is
    /// already definitive.
    pub quiescence_settle: Duration,
    /// Router sharding policy.
    pub router: RouterPolicy,
    /// Soft bound on each worker's run queue. A worker forming
    /// invocations past the bound sheds the surplus to the least
    /// loaded same-group core (if stealing is enabled and one exists).
    pub run_queue_capacity: usize,
    /// Deterministic fault injection (`None` = fault-free). Compiled
    /// into a [`crate::chaos::FaultPlan`] against the deployment's
    /// steal topology at run start; the resulting fault schedule is
    /// reported in `ThreadedReport::fault_schedule`.
    pub faults: Option<FaultSpec>,
    /// Online adaptive re-layout (`None` = the synthesized layout runs
    /// unchanged). Arms the live profile estimator; resident runs park
    /// the policy for the serving front-end to claim and drive an
    /// [`crate::adapt::AdaptiveController`] with.
    pub adapt: Option<AdaptPolicy>,
}

impl RunOptions {
    /// Default capacity of each per-worker run queue.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

    /// The default configuration: sharded router, same-group stealing,
    /// event-driven quiescence, no telemetry.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// The pre-redesign dispatch configuration — global router stripe,
    /// no stealing, 300µs sleep-polling quiescence — for A/B
    /// comparisons against the optimized hot path.
    pub fn baseline() -> Self {
        RunOptions {
            steal: StealPolicy::Disabled,
            quiescence: QuiescencePolicy::Polling {
                interval: Duration::from_micros(300),
            },
            router: RouterPolicy::Global,
            ..RunOptions::default()
        }
    }

    /// Sets the startup object's payload.
    #[must_use]
    pub fn with_startup(mut self, payload: NativePayload) -> Self {
        self.startup = Some(payload);
        self
    }

    /// Records the run into `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the steal policy.
    #[must_use]
    pub fn with_steal(mut self, steal: StealPolicy) -> Self {
        self.steal = steal;
        self
    }

    /// Sets the quiescence protocol.
    #[must_use]
    pub fn with_quiescence(mut self, quiescence: QuiescencePolicy) -> Self {
        self.quiescence = quiescence;
        self
    }

    /// Arms online adaptive re-layout under `policy`.
    #[must_use]
    pub fn with_adapt(mut self, policy: AdaptPolicy) -> Self {
        self.adapt = Some(policy);
        self
    }

    /// Sets the post-zero confirmation delay.
    #[must_use]
    pub fn with_settle(mut self, settle: Duration) -> Self {
        self.quiescence_settle = settle;
        self
    }

    /// Sets the router sharding policy.
    #[must_use]
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Sets the per-worker run-queue bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.run_queue_capacity = capacity.max(1);
        self
    }

    /// Injects the given faults into the run (see [`FaultSpec`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The effective queue bound (the default when left at 0).
    pub fn queue_capacity(&self) -> usize {
        if self.run_queue_capacity == 0 {
            Self::DEFAULT_QUEUE_CAPACITY
        } else {
            self.run_queue_capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_pick_the_optimized_hot_path() {
        let opts = RunOptions::default();
        assert_eq!(opts.steal, StealPolicy::SameGroup);
        assert_eq!(opts.quiescence, QuiescencePolicy::EventDriven);
        assert_eq!(opts.router, RouterPolicy::Sharded);
        assert_eq!(opts.queue_capacity(), RunOptions::DEFAULT_QUEUE_CAPACITY);
        assert!(opts.startup.is_none());
        assert!(!opts.telemetry.is_enabled());
    }

    #[test]
    fn baseline_reproduces_the_old_dispatch_shape() {
        let opts = RunOptions::baseline();
        assert_eq!(opts.steal, StealPolicy::Disabled);
        assert_eq!(opts.router, RouterPolicy::Global);
        assert_eq!(
            opts.quiescence,
            QuiescencePolicy::Polling {
                interval: Duration::from_micros(300)
            }
        );
    }

    #[test]
    fn builder_clamps_queue_capacity() {
        assert_eq!(
            RunOptions::default()
                .with_queue_capacity(0)
                .queue_capacity(),
            1
        );
    }
}
