//! Striped routing state for the threaded executor.
//!
//! The [`bamboo_schedule::Router`] is stateful (round-robin counters,
//! a dispatch memo), so the threaded executor must serialize access to
//! it. The original design used one global `Mutex<Router>` — every
//! object send in the whole machine contended on a single lock. A
//! [`ShardedRouter`] stripes that state per core instead: all routing
//! decisions are keyed by the *sending* instance, each instance lives
//! on exactly one core, and each core routes only for its own
//! instances, so giving every core its own `Router` stripe preserves
//! the exact per-(instance, task) round-robin sequences while making
//! concurrent routes from different cores contention-free.
//!
//! The stripes stay behind try-then-lock mutexes (rather than raw
//! per-worker ownership) so a work-stealing thief can route on behalf
//! of the victim instance's stripe; the `contended` counter measures
//! how often that actually collides (telemetry:
//! `threaded.router_contention`).

use bamboo_lang::ids::{AllocSiteId, ClassId, TaskId};
use bamboo_lang::spec::{FlagSet, ProgramSpec};
use bamboo_schedule::{GroupGraph, InstanceId, Layout, RouteDecision, Router};
use bamboo_telemetry::Counter;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-core striped [`Router`] state. See the module docs.
#[derive(Debug)]
pub struct ShardedRouter {
    shards: Vec<Mutex<Router>>,
    contended: Counter,
    /// Raw contention tally, kept alongside the metric counter so the
    /// count is reportable even when telemetry is disabled (the
    /// [`Counter`] is a no-op then).
    tally: AtomicU64,
    /// `dead[core]`: the core was killed by fault injection and must be
    /// excluded from re-striped routing (one flag per *core*, not per
    /// stripe — a global-stripe router still tracks every core).
    dead: Vec<AtomicBool>,
}

impl ShardedRouter {
    /// Creates a router with `shards` stripes (clamped to ≥ 1; pass 1
    /// for the legacy fully-serialized behavior) tracking liveness for
    /// `cores` cores. `contended` counts route calls that found their
    /// stripe locked.
    pub fn new(shards: usize, cores: usize, contended: Counter) -> Self {
        ShardedRouter {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Router::new()))
                .collect(),
            contended,
            tally: AtomicU64::new(0),
            dead: (0..cores.max(1)).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Marks `core` dead: [`Self::restripe`] excludes it from now on.
    pub fn mark_dead(&self, core: usize) {
        if let Some(flag) = self.dead.get(core) {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Whether `core` was marked dead.
    pub fn is_dead(&self, core: usize) -> bool {
        self.dead
            .get(core)
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Number of cores still live.
    pub fn live_count(&self) -> usize {
        self.dead
            .iter()
            .filter(|flag| !flag.load(Ordering::SeqCst))
            .count()
    }

    /// Re-stripes a routing decision around dead cores: of the
    /// `candidates` (the cores hosting the destination group), keeps
    /// the live ones and picks `live[key % live.len()]`. Total over any
    /// non-empty live subset, and — for a dense key range — each live
    /// core receives a load within 1 of uniform. Returns `None` when
    /// every candidate is dead (the caller must fail the run, typed).
    pub fn restripe(&self, candidates: &[usize], key: u64) -> Option<usize> {
        let live: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| !self.is_dead(c))
            .collect();
        if live.is_empty() {
            return None;
        }
        Some(live[(key % live.len() as u64) as usize])
    }

    /// Route calls so far that found their stripe locked and had to
    /// wait (mirrors the `threaded.router_contention` counter).
    pub fn contention_count(&self) -> u64 {
        self.tally.load(Ordering::Relaxed)
    }

    fn lock_shard(&self, core: usize) -> parking_lot::MutexGuard<'_, Router> {
        let shard = &self.shards[core % self.shards.len()];
        match shard.try_lock() {
            Some(guard) => guard,
            None => {
                self.tally.fetch_add(1, Ordering::Relaxed);
                self.contended.inc();
                shard.lock()
            }
        }
    }

    /// [`Router::route_transition`] on the stripe of `core` (the core
    /// hosting `home`).
    #[allow(clippy::too_many_arguments)]
    pub fn route_transition(
        &self,
        core: usize,
        spec: &ProgramSpec,
        graph: &GroupGraph,
        layout: &Layout,
        home: InstanceId,
        class: ClassId,
        flags: FlagSet,
        tag_hash: Option<u64>,
    ) -> RouteDecision {
        self.lock_shard(core)
            .route_transition(spec, graph, layout, home, class, flags, tag_hash)
    }

    /// Moves `instance`'s round-robin counters from the stripe of
    /// `from_core` to the stripe of `to_core` during a hot migration,
    /// so the per-(instance, task) distribution sequences continue
    /// exactly where the old core left them. No-op when both cores map
    /// to the same stripe (always true for a single-stripe router).
    /// Both stripes are locked in index order, so concurrent transfers
    /// cannot deadlock against each other or against route calls.
    pub fn transfer_instance(&self, from_core: usize, to_core: usize, instance: InstanceId) {
        let from_idx = from_core % self.shards.len();
        let to_idx = to_core % self.shards.len();
        if from_idx == to_idx {
            return;
        }
        let (lo, hi) = (from_idx.min(to_idx), from_idx.max(to_idx));
        let mut guard_lo = self.shards[lo].lock();
        let mut guard_hi = self.shards[hi].lock();
        let (src, dst) = if from_idx == lo {
            (&mut guard_lo, &mut guard_hi)
        } else {
            (&mut guard_hi, &mut guard_lo)
        };
        let state = src.extract_instance(instance);
        if !state.is_empty() {
            dst.absorb_instance(instance, state);
        }
    }

    /// [`Router::route_new`] on the stripe of `core` (the core hosting
    /// `from`).
    #[allow(clippy::too_many_arguments)]
    pub fn route_new(
        &self,
        core: usize,
        spec: &ProgramSpec,
        graph: &GroupGraph,
        layout: &Layout,
        from: InstanceId,
        task: TaskId,
        site: AllocSiteId,
        tag_hash: Option<u64>,
    ) -> InstanceId {
        self.lock_shard(core)
            .route_new(spec, graph, layout, from, task, site, tag_hash)
    }
}
