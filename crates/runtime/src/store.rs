//! The runtime object store: dispatch metadata plus payloads.
//!
//! Every object participating in task dispatch has a store entry holding
//! its class, flag valuation, bound tag instances, home group instance,
//! and lock class. Payloads are either native `Box<dyn Any>` values or
//! references into the DSL interpreter heap.
//!
//! Lock classes implement the disjointness analysis's shared-lock
//! directive: when a task that may introduce sharing between two
//! parameters completes, their lock classes are merged (union-find), so
//! every later invocation locking either object locks their common lock.

use crate::program::NativePayload;
use bamboo_analysis::UnionFind;
use bamboo_lang::ids::{ClassId, TagTypeId};
use bamboo_lang::interp::{ObjRef, TagInstance};
use bamboo_lang::spec::FlagSet;
use bamboo_schedule::InstanceId;
use std::fmt;

/// Identifies an object in the [`ObjectStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rtobj#{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rtobj#{}", self.0)
    }
}

/// An object's payload.
pub enum PayloadSlot {
    /// A native Rust value.
    Native(NativePayload),
    /// A reference into the DSL interpreter heap.
    Interp(ObjRef),
    /// Temporarily moved into an executing task.
    Taken,
    /// Released after the object left dispatch.
    Dead,
}

impl fmt::Debug for PayloadSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadSlot::Native(_) => write!(f, "Native(..)"),
            PayloadSlot::Interp(r) => write!(f, "Interp({r})"),
            PayloadSlot::Taken => write!(f, "Taken"),
            PayloadSlot::Dead => write!(f, "Dead"),
        }
    }
}

/// One dispatchable object.
#[derive(Debug)]
pub struct RtObject {
    /// The object's class.
    pub class: ClassId,
    /// Current flag valuation.
    pub flags: FlagSet,
    /// Bound tag instances.
    pub tags: Vec<(TagTypeId, TagInstance)>,
    /// The group instance currently owning the object.
    pub home: InstanceId,
    /// Lock class index (see [`ObjectStore::merge_locks`]).
    pub lock: usize,
    /// Reserved by a formed-but-incomplete invocation (the virtual-time
    /// analog of holding the object's lock; prevents an object whose
    /// state satisfies several task guards from being captured twice).
    pub reserved: bool,
    /// The payload.
    pub payload: PayloadSlot,
}

impl RtObject {
    /// A deterministic routing hash derived from the first bound tag
    /// instance, if any.
    pub fn tag_hash(&self) -> Option<u64> {
        self.tags.first().map(|(_, inst)| inst.0)
    }
}

/// The store: objects, lock classes, and the tag-instance counter.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: Vec<RtObject>,
    locks: UnionFind,
    next_tag: u64,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Number of objects ever allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an object, assigning a fresh lock class.
    pub fn alloc(
        &mut self,
        class: ClassId,
        flags: FlagSet,
        tags: Vec<(TagTypeId, TagInstance)>,
        home: InstanceId,
        payload: PayloadSlot,
    ) -> ObjId {
        let lock = self.locks.push();
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(RtObject {
            class,
            flags,
            tags,
            home,
            lock,
            reserved: false,
            payload,
        });
        id
    }

    /// Borrows an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ObjId) -> &RtObject {
        &self.objects[id.index()]
    }

    /// Mutably borrows an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: ObjId) -> &mut RtObject {
        &mut self.objects[id.index()]
    }

    /// Takes a native payload out for execution.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not native or was already taken.
    pub fn take_native(&mut self, id: ObjId) -> NativePayload {
        match std::mem::replace(&mut self.objects[id.index()].payload, PayloadSlot::Taken) {
            PayloadSlot::Native(p) => p,
            other => panic!("cannot take payload of {id}: {other:?}"),
        }
    }

    /// Returns a payload after execution.
    pub fn put_native(&mut self, id: ObjId, payload: NativePayload) {
        self.objects[id.index()].payload = PayloadSlot::Native(payload);
    }

    /// Drops an object's payload once it leaves dispatch.
    pub fn kill(&mut self, id: ObjId) {
        self.objects[id.index()].payload = PayloadSlot::Dead;
    }

    /// Mints a fresh tag instance.
    pub fn mint_tag(&mut self) -> TagInstance {
        self.next_tag += 1;
        TagInstance(self.next_tag)
    }

    /// Returns the representative lock of `id`'s lock class.
    pub fn lock_of(&mut self, id: ObjId) -> usize {
        let lock = self.objects[id.index()].lock;
        self.locks.find(lock)
    }

    /// Merges the lock classes of two objects (shared-lock directive from
    /// the disjointness analysis).
    pub fn merge_locks(&mut self, a: ObjId, b: ObjId) {
        let (la, lb) = (self.objects[a.index()].lock, self.objects[b.index()].lock);
        self.locks.union(la, lb);
    }

    /// Iterates over all `(ObjId, &RtObject)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &RtObject)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    /// Returns live (non-dead) objects of `class`.
    pub fn live_of_class(&self, class: ClassId) -> Vec<ObjId> {
        self.iter()
            .filter(|(_, o)| o.class == class && !matches!(o.payload, PayloadSlot::Dead))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_two() -> (ObjectStore, ObjId, ObjId) {
        let mut store = ObjectStore::new();
        let a = store.alloc(
            ClassId::new(0),
            FlagSet::EMPTY,
            vec![],
            InstanceId(0),
            PayloadSlot::Native(Box::new(1i64)),
        );
        let b = store.alloc(
            ClassId::new(0),
            FlagSet::EMPTY,
            vec![],
            InstanceId(0),
            PayloadSlot::Native(Box::new(2i64)),
        );
        (store, a, b)
    }

    #[test]
    fn take_and_put_payload() {
        let (mut store, a, _) = store_with_two();
        let p = store.take_native(a);
        assert!(matches!(store.get(a).payload, PayloadSlot::Taken));
        store.put_native(a, p);
        assert!(matches!(store.get(a).payload, PayloadSlot::Native(_)));
    }

    #[test]
    #[should_panic(expected = "cannot take payload")]
    fn double_take_panics() {
        let (mut store, a, _) = store_with_two();
        store.take_native(a);
        store.take_native(a);
    }

    #[test]
    fn lock_classes_merge() {
        let (mut store, a, b) = store_with_two();
        assert_ne!(store.lock_of(a), store.lock_of(b));
        store.merge_locks(a, b);
        assert_eq!(store.lock_of(a), store.lock_of(b));
    }

    #[test]
    fn tags_mint_unique() {
        let mut store = ObjectStore::new();
        let t1 = store.mint_tag();
        let t2 = store.mint_tag();
        assert_ne!(t1, t2);
    }

    #[test]
    fn live_of_class_skips_dead() {
        let (mut store, a, b) = store_with_two();
        store.kill(a);
        assert_eq!(store.live_of_class(ClassId::new(0)), vec![b]);
    }
}
