#![warn(missing_docs)]

//! # bamboo-machine
//!
//! Abstract many-core processor descriptions for the Bamboo implementation
//! synthesizer and runtime.
//!
//! The paper evaluates on a TILEPro64: 64 tiles in an 8×8 grid joined by
//! an on-chip mesh network, 700 MHz, with 2 tiles dedicated to the PCI bus
//! (62 usable). The synthesis pipeline only consumes an abstract
//! description — core count, topology, and transfer costs — which this
//! crate provides, along with the [`MachineDescription::tilepro64`] preset
//! used throughout the evaluation and smaller presets for tests.
//!
//! # Examples
//!
//! ```
//! use bamboo_machine::{CoreId, MachineDescription};
//!
//! let machine = MachineDescription::tilepro64();
//! assert_eq!(machine.core_count(), 62);
//! let cost = machine.transfer_cycles(CoreId::new(0), CoreId::new(61), 16);
//! assert!(cost > machine.transfer_base_cycles());
//! ```

use std::fmt;

/// Identifies one usable core (logical index; reserved tiles are skipped).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Creates a core id from a raw index.
    pub const fn new(index: usize) -> Self {
        CoreId(index as u32)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core#{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core#{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(index: usize) -> Self {
        CoreId::new(index)
    }
}

/// An abstract many-core processor: grid topology plus network cost model.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineDescription {
    name: String,
    grid_width: u32,
    grid_height: u32,
    /// Physical tile indices (row-major) reserved for I/O and unusable by
    /// the application.
    reserved: Vec<u32>,
    clock_mhz: u32,
    /// Cycles added per mesh hop of an inter-core object transfer.
    hop_cycles: u64,
    /// Fixed cycles per inter-core object transfer.
    transfer_base_cycles: u64,
    /// Cycles per transferred payload word.
    transfer_word_cycles: u64,
    /// Logical core -> physical tile (precomputed).
    physical: Vec<u32>,
}

impl MachineDescription {
    /// Creates a description for a `width`×`height` grid with the given
    /// reserved physical tiles and network costs.
    ///
    /// # Panics
    ///
    /// Panics if every tile is reserved or a reserved index is out of
    /// range.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        width: u32,
        height: u32,
        reserved: Vec<u32>,
        clock_mhz: u32,
        hop_cycles: u64,
        transfer_base_cycles: u64,
        transfer_word_cycles: u64,
    ) -> Self {
        let tiles = width * height;
        assert!(
            reserved.iter().all(|&r| r < tiles),
            "reserved tile out of range"
        );
        let physical: Vec<u32> = (0..tiles).filter(|t| !reserved.contains(t)).collect();
        assert!(
            !physical.is_empty(),
            "machine must have at least one usable core"
        );
        MachineDescription {
            name: name.into(),
            grid_width: width,
            grid_height: height,
            reserved,
            clock_mhz,
            hop_cycles,
            transfer_base_cycles,
            transfer_word_cycles,
            physical,
        }
    }

    /// The TILEPro64 preset: 8×8 tiles at 700 MHz, two tiles reserved for
    /// the PCI bus — 62 usable cores, as in the paper's evaluation.
    pub fn tilepro64() -> Self {
        MachineDescription::new("TILEPro64", 8, 8, vec![62, 63], 700, 2, 220, 1)
    }

    /// A quad-core preset (the paper's Figure 4 example target).
    pub fn quad() -> Self {
        MachineDescription::new("quad", 2, 2, vec![], 2000, 2, 220, 1)
    }

    /// A 16-core preset (used by the paper's Figure 10 exhaustive-search
    /// experiment).
    pub fn sixteen() -> Self {
        MachineDescription::new("16-core", 4, 4, vec![], 700, 2, 220, 1)
    }

    /// An `n`-core preset on the smallest square grid that fits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn n_cores(n: usize) -> Self {
        assert!(n > 0, "machine must have at least one core");
        let mut side = 1u32;
        while (side * side) < n as u32 {
            side += 1;
        }
        let reserved: Vec<u32> = (n as u32..side * side).collect();
        MachineDescription::new(format!("{n}-core"), side, side, reserved, 700, 2, 220, 1)
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of usable cores.
    pub fn core_count(&self) -> usize {
        self.physical.len()
    }

    /// All usable cores.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.core_count()).map(CoreId::new)
    }

    /// Clock frequency in MHz (reporting only; the model works in cycles).
    pub fn clock_mhz(&self) -> u32 {
        self.clock_mhz
    }

    /// Fixed per-transfer cost in cycles.
    pub fn transfer_base_cycles(&self) -> u64 {
        self.transfer_base_cycles
    }

    /// Manhattan distance between two cores on the mesh.
    ///
    /// # Panics
    ///
    /// Panics if a core id is out of range.
    pub fn hops(&self, a: CoreId, b: CoreId) -> u64 {
        let pa = self.physical[a.index()];
        let pb = self.physical[b.index()];
        let (ax, ay) = (pa % self.grid_width, pa / self.grid_width);
        let (bx, by) = (pb % self.grid_width, pb / self.grid_width);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Cycles to move an object of `payload_words` words from `from` to
    /// `to`. Same-core "transfers" are free.
    pub fn transfer_cycles(&self, from: CoreId, to: CoreId, payload_words: u64) -> u64 {
        if from == to {
            return 0;
        }
        self.transfer_base_cycles
            + self.hops(from, to) * self.hop_cycles
            + payload_words * self.transfer_word_cycles
    }

    /// Converts cycles to seconds at this machine's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz as f64 * 1e6)
    }
}

impl fmt::Display for MachineDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} usable cores, {}x{} grid, {} MHz)",
            self.name,
            self.core_count(),
            self.grid_width,
            self.grid_height,
            self.clock_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tilepro64_has_62_usable_cores() {
        let m = MachineDescription::tilepro64();
        assert_eq!(m.core_count(), 62);
        assert_eq!(m.clock_mhz(), 700);
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = MachineDescription::quad();
        // 2x2 grid: cores 0,1 adjacent; 0,3 diagonal.
        assert_eq!(m.hops(CoreId::new(0), CoreId::new(1)), 1);
        assert_eq!(m.hops(CoreId::new(0), CoreId::new(3)), 2);
        assert_eq!(m.hops(CoreId::new(2), CoreId::new(2)), 0);
    }

    #[test]
    fn same_core_transfer_is_free() {
        let m = MachineDescription::tilepro64();
        assert_eq!(m.transfer_cycles(CoreId::new(5), CoreId::new(5), 1000), 0);
    }

    #[test]
    fn transfer_cost_grows_with_distance_and_size() {
        let m = MachineDescription::tilepro64();
        let near = m.transfer_cycles(CoreId::new(0), CoreId::new(1), 8);
        let far = m.transfer_cycles(CoreId::new(0), CoreId::new(61), 8);
        let big = m.transfer_cycles(CoreId::new(0), CoreId::new(1), 800);
        assert!(far > near);
        assert!(big > near);
    }

    #[test]
    fn n_cores_reserves_excess_tiles() {
        let m = MachineDescription::n_cores(5);
        assert_eq!(m.core_count(), 5);
        let m1 = MachineDescription::n_cores(1);
        assert_eq!(m1.core_count(), 1);
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let m = MachineDescription::tilepro64();
        assert!((m.cycles_to_seconds(700_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        MachineDescription::n_cores(0);
    }

    #[test]
    fn display_summarizes() {
        let s = MachineDescription::tilepro64().to_string();
        assert!(s.contains("62 usable cores"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn hops_are_symmetric_and_triangle() {
        let m = MachineDescription::tilepro64();
        for a in [0usize, 7, 30, 61] {
            for b in [0usize, 7, 30, 61] {
                let (ca, cb) = (CoreId::new(a), CoreId::new(b));
                assert_eq!(m.hops(ca, cb), m.hops(cb, ca));
                for c in [3usize, 45] {
                    let cc = CoreId::new(c);
                    assert!(m.hops(ca, cb) <= m.hops(ca, cc) + m.hops(cc, cb));
                }
            }
        }
    }

    #[test]
    fn tilepro64_max_distance_is_fourteen() {
        // 8x8 grid: opposite corners are 7 + 7 hops apart.
        let m = MachineDescription::tilepro64();
        let mut max = 0;
        for a in m.cores() {
            for b in m.cores() {
                max = max.max(m.hops(a, b));
            }
        }
        assert_eq!(max, 14);
    }

    #[test]
    fn reserved_tiles_are_skipped() {
        // TILEPro64 reserves physical tiles 62 and 63; the last logical
        // core maps to tile 61, adjacent to tile 60.
        let m = MachineDescription::tilepro64();
        assert_eq!(m.hops(CoreId::new(60), CoreId::new(61)), 1);
    }

    #[test]
    fn cores_iterator_matches_count() {
        let m = MachineDescription::sixteen();
        assert_eq!(m.cores().count(), m.core_count());
        assert_eq!(m.cores().last(), Some(CoreId::new(15)));
    }

    #[test]
    fn transfer_cost_is_monotone_in_payload() {
        let m = MachineDescription::quad();
        let a = CoreId::new(0);
        let b = CoreId::new(3);
        let mut last = 0;
        for words in [0u64, 1, 16, 256, 4096] {
            let cost = m.transfer_cycles(a, b, words);
            assert!(cost >= last);
            last = cost;
        }
    }
}
