//! The serving loop: a resident deployment fed by an arrival process.
//!
//! A [`Server`] wraps a [`ResidentRun`] (workers live, waiting) and
//! drives it open-loop: the arrival clock advances by each gap the
//! [`ArrivalProcess`] yields regardless of what the executor is doing,
//! so offered load past capacity shows up as latency and shed — never
//! as a silently slowed generator.
//!
//! Arrivals that land within one *batch window* coalesce into a
//! micro-batch injected with a single ledger/router pass per request
//! but one clock advance per tick — the cheap way to absorb bursty
//! processes whose instantaneous rate far exceeds the tick rate.
//!
//! Two pacing modes:
//!
//! - [`Pacing::Wall`] — gaps are slept; latencies are real wall time
//!   including queueing delay. The mode the load-sweep benchmark uses.
//! - [`Pacing::Stepped`] — gaps advance a virtual clock only, and the
//!   executor drains fully after every micro-batch; completions within
//!   a tick are ordered by request id. Same seed ⇒ same admission
//!   decisions, same injection order, same completion order, at any
//!   worker-thread count — the mode the determinism tests use.

use crate::admission::{AdmissionControl, AdmissionVerdict};
use crate::arrivals::ArrivalProcess;
use crate::error::ServingError;
use crate::ingress::{ChannelIngress, Drained};
use bamboo_runtime::ledger::Completion;
use bamboo_runtime::{
    AdaptReport, AdaptiveController, Deployment, NativePayload, ResidentRun, RunOptions,
    ThreadedExecutor, ThreadedReport,
};
use bamboo_telemetry::analyze::LatencyHistogram;
use bamboo_telemetry::event::arrival_source;
use bamboo_telemetry::scope::{ScopeConfig, ScopeHandle, ScopeRecorder, ScopeSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the server treats arrival gaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Sleep each gap: real open-loop load, wall-clock latencies.
    #[default]
    Wall,
    /// Advance a virtual clock only and drain the executor after every
    /// micro-batch: deterministic end-to-end, used by tests.
    Stepped,
}

/// Serving configuration.
#[derive(Debug, Default)]
pub struct ServingOptions {
    /// Admission policy applied to every arrival.
    pub admission: AdmissionControl,
    /// Gap handling (see [`Pacing`]).
    pub pacing: Pacing,
    /// Micro-batch cap: at most this many admitted arrivals are
    /// injected per tick (0 means 1).
    pub max_batch: usize,
    /// Arrivals separated by gaps at or below this coalesce into the
    /// current micro-batch.
    pub batch_window: Duration,
    /// Live observability plane (`None` = off, zero overhead). When
    /// set, the server feeds a [`ScopeRecorder`] from the request
    /// lifecycle and [`Server::scope_handle`] exposes live snapshots.
    pub scope: Option<ScopeConfig>,
}

impl ServingOptions {
    /// Defaults: open admission, wall pacing, micro-batches of up to 8
    /// arrivals within 100µs of each other.
    pub fn new() -> Self {
        ServingOptions {
            admission: AdmissionControl::open(),
            pacing: Pacing::Wall,
            max_batch: 8,
            batch_window: Duration::from_micros(100),
            scope: None,
        }
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the pacing mode.
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Sets the micro-batch cap and window.
    pub fn with_batching(mut self, max_batch: usize, window: Duration) -> Self {
        self.max_batch = max_batch;
        self.batch_window = window;
        self
    }

    /// Enables the live scope plane with `config`.
    pub fn with_scope(mut self, config: ScopeConfig) -> Self {
        self.scope = Some(config);
        self
    }
}

/// Everything a serving run produced.
#[derive(Debug)]
pub struct ServingReport {
    /// Arrivals offered by the process.
    pub arrivals: u64,
    /// Arrivals admitted and injected.
    pub admitted: u64,
    /// Arrivals shed at admission (either policy).
    pub shed: u64,
    /// Sheds attributed to the token bucket.
    pub shed_rate_limit: u64,
    /// Sheds attributed to queue depth.
    pub shed_queue_depth: u64,
    /// Requests whose work drained to zero.
    pub completed: u64,
    /// Admit→complete wall latency per completed request, microseconds.
    pub latency_us: LatencyHistogram,
    /// The same latencies raw, in completion-detection order — exact
    /// quantiles for harnesses whose tolerance is finer than the
    /// histogram's ~3% bucket resolution.
    pub raw_latency_us: Vec<u64>,
    /// Every completion, in detection order (request-id order within a
    /// tick under [`Pacing::Stepped`]).
    pub completions: Vec<Completion>,
    /// Instances migrated by hot relayouts during the run (mirrors
    /// `executor.relayouts`).
    pub relayouts: u64,
    /// The layout epoch at shutdown (0 = the synthesized layout served
    /// the whole run unchanged).
    pub layout_epoch: u64,
    /// The adaptive controller's activity, when the run was started
    /// with an [`bamboo_runtime::AdaptPolicy`].
    pub adapt: Option<AdaptReport>,
    /// The scope plane's final snapshot, when the run was served with
    /// [`ServingOptions::with_scope`].
    pub scope: Option<ScopeSnapshot>,
    /// The resident executor's final report.
    pub executor: ThreadedReport,
}

impl ServingReport {
    /// One-line latency summary.
    pub fn latency_summary(&self) -> String {
        format!(
            "arrivals={} admitted={} shed={} completed={} latency[{}]",
            self.arrivals,
            self.admitted,
            self.shed,
            self.completed,
            self.latency_us.summary("us"),
        )
    }
}

/// How the server drives the adaptive controller, when the run was
/// started with an `AdaptPolicy`.
///
/// Stepped pacing ticks *synchronously* after each micro-batch's drain
/// — the executor is idle at that point, so the estimator snapshot,
/// the seeded DSA search, and therefore every migration decision are
/// deterministic at any worker-thread count. Wall pacing ticks from a
/// background thread against real elapsed time.
enum AdaptDriver {
    Off,
    Stepped(Box<AdaptiveController>),
    Wall {
        stop: Arc<AtomicBool>,
        thread: std::thread::JoinHandle<AdaptReport>,
    },
}

impl AdaptDriver {
    /// Stops the driver and returns the controller's report (`None`
    /// when adaptation was off).
    fn finish(self) -> Option<AdaptReport> {
        match self {
            AdaptDriver::Off => None,
            AdaptDriver::Stepped(ctrl) => Some(ctrl.into_report()),
            AdaptDriver::Wall { stop, thread } => {
                stop.store(true, Ordering::Relaxed);
                Some(thread.join().expect("adapt driver thread panicked"))
            }
        }
    }
}

/// A resident deployment being served. Create with [`Server::start`],
/// drive with [`Server::serve`] / [`Server::serve_channel`], finish
/// with [`Server::finish`].
pub struct Server {
    run: ResidentRun,
    adapt: AdaptDriver,
    admission: AdmissionControl,
    pacing: Pacing,
    max_batch: usize,
    batch_window: Duration,
    /// Virtual arrival clock: the sum of all gaps so far. Wall pacing
    /// sleeps until `started + clock`; the admission bucket always
    /// refills from this clock so both pacings decide identically.
    clock: Duration,
    started: Instant,
    /// Live scope plane; fed from the driver so stepped pacing stays
    /// deterministic (all feeds happen on the serving thread, on the
    /// virtual clock).
    scope: Option<ScopeRecorder>,
    admit_at: HashMap<u64, Instant>,
    latency_us: LatencyHistogram,
    raw_latency_us: Vec<u64>,
    completions: Vec<Completion>,
    arrivals: u64,
    admitted: u64,
    shed: u64,
    shed_rate_limit: u64,
    shed_queue_depth: u64,
}

impl Server {
    /// Starts `deployment` resident under `executor` and wraps it in a
    /// server.
    ///
    /// # Errors
    ///
    /// [`ServingError::Exec`] when the deployment cannot start (e.g. an
    /// interpreted program).
    pub fn start(
        executor: &ThreadedExecutor,
        deployment: &Deployment,
        run_options: RunOptions,
        options: ServingOptions,
    ) -> Result<Self, ServingError> {
        let started = Instant::now();
        let mut run = executor.start(deployment, run_options)?;
        // An armed AdaptPolicy is parked on the run; the server claims
        // it and drives the controller per the pacing mode.
        let adapt = match run.take_adapt_policy() {
            None => AdaptDriver::Off,
            Some(policy) => {
                let controller = AdaptiveController::new(policy, run.relayout_handle());
                match options.pacing {
                    Pacing::Stepped => AdaptDriver::Stepped(Box::new(controller)),
                    Pacing::Wall => {
                        let stop = Arc::new(AtomicBool::new(false));
                        let flag = stop.clone();
                        // Controller ticks are interval-gated anyway;
                        // the thread cadence only bounds how stale a
                        // due decision can go.
                        let cadence = if controller.policy().interval.is_zero() {
                            Duration::from_millis(10)
                        } else {
                            controller.policy().interval
                        };
                        let thread = std::thread::spawn(move || {
                            let mut controller = controller;
                            while !flag.load(Ordering::Relaxed) {
                                // A rejected commit (e.g. a core died
                                // under chaos) leaves the run intact;
                                // keep serving on the current layout.
                                let _ = controller.tick(started.elapsed());
                                std::thread::sleep(cadence);
                            }
                            controller.into_report()
                        });
                        AdaptDriver::Wall { stop, thread }
                    }
                }
            }
        };
        Ok(Server {
            run,
            adapt,
            admission: options.admission,
            pacing: options.pacing,
            max_batch: options.max_batch.max(1),
            batch_window: options.batch_window,
            clock: Duration::ZERO,
            started,
            scope: options.scope.map(ScopeRecorder::new),
            admit_at: HashMap::new(),
            raw_latency_us: Vec::new(),
            latency_us: LatencyHistogram::new(),
            completions: Vec::new(),
            arrivals: 0,
            admitted: 0,
            shed: 0,
            shed_rate_limit: 0,
            shed_queue_depth: 0,
        })
    }

    /// Number of worker cores under the resident deployment.
    pub fn core_count(&self) -> usize {
        self.run.core_count()
    }

    /// Requests admitted but not yet complete.
    pub fn outstanding(&self) -> usize {
        self.run.outstanding()
    }

    /// Whether the runtime's request ledger is fully drained.
    pub fn ledger_is_empty(&self) -> bool {
        self.run.ledger_is_empty()
    }

    /// Instances migrated by hot relayouts so far.
    pub fn relayouts(&self) -> u64 {
        self.run.relayouts()
    }

    /// The current layout epoch (0 until the first relayout commits).
    pub fn layout_epoch(&self) -> u64 {
        self.run.layout_epoch()
    }

    /// The live layout artifact: the synthesized topology with the
    /// current (possibly hot-migrated) core assignment overlaid.
    pub fn current_layout(&self) -> bamboo_runtime::Layout {
        self.run.current_layout()
    }

    /// A handle onto the live scope plane (`None` unless the server
    /// was started with [`ServingOptions::with_scope`]). Snapshots can
    /// be taken from any thread while the deployment keeps serving.
    pub fn scope_handle(&self) -> Option<ScopeHandle> {
        self.scope.as_ref().map(ScopeRecorder::handle)
    }

    /// The scope plane's clock, microseconds: the virtual arrival
    /// clock under stepped pacing (deterministic at any thread count),
    /// wall time since start otherwise.
    fn scope_now_us(&self) -> u64 {
        match self.pacing {
            Pacing::Stepped => self.clock.as_micros() as u64,
            Pacing::Wall => self.started.elapsed().as_micros() as u64,
        }
    }

    /// Offers `total` arrivals from `process`, open-loop: each arrival
    /// advances the clock by the process's gap, passes admission, and
    /// (if admitted) joins the current micro-batch; `make` builds the
    /// root payload per admitted request, keyed by its request id.
    /// Completions are collected as they surface; call
    /// [`Server::finish`] (or [`Server::await_idle`]) afterwards to
    /// wait for stragglers.
    ///
    /// # Errors
    ///
    /// [`ServingError::Exec`] when the executor fails underneath
    /// (stepped pacing drains between ticks and surfaces failures
    /// immediately; wall pacing surfaces them on the next poll).
    pub fn serve(
        &mut self,
        process: &mut dyn ArrivalProcess,
        total: usize,
        mut make: impl FnMut(u64) -> NativePayload,
    ) -> Result<(), ServingError> {
        let source = process.source_tag();
        let mut batch: Vec<NativePayload> = Vec::new();
        for _ in 0..total {
            let gap = process.next_gap();
            if !batch.is_empty() && (gap > self.batch_window || batch.len() >= self.max_batch) {
                self.flush(std::mem::take(&mut batch))?;
            }
            self.advance(gap)?;
            if let Some(payload) = self.offer(source, batch.len(), &mut make) {
                batch.push(payload);
            }
        }
        if !batch.is_empty() {
            self.flush(batch)?;
        }
        Ok(())
    }

    /// Serves payloads submitted through a [`ChannelIngress`] until
    /// every [`crate::IngressHandle`] is dropped and the queue is
    /// drained. Admission applies to each submission; the arrival
    /// clock is wall time (there is no process to pace).
    ///
    /// # Errors
    ///
    /// [`ServingError::Exec`] when the executor fails underneath.
    pub fn serve_channel(&mut self, mut ingress: ChannelIngress) -> Result<(), ServingError> {
        loop {
            match ingress.drain_timeout(Duration::from_millis(1)) {
                Drained::Closed => return Ok(()),
                Drained::Empty => {
                    self.poll()?;
                }
                Drained::Payload(first) => {
                    self.clock = self.started.elapsed();
                    let mut batch = Vec::new();
                    if let Some(p) = self.offer_payload(arrival_source::CHANNEL, 0, first) {
                        batch.push(p);
                    }
                    // Coalesce whatever else is already queued.
                    while batch.len() < self.max_batch {
                        match ingress.try_drain() {
                            Drained::Payload(p) => {
                                if let Some(p) =
                                    self.offer_payload(arrival_source::CHANNEL, batch.len(), p)
                                {
                                    batch.push(p);
                                }
                            }
                            Drained::Empty | Drained::Closed => break,
                        }
                    }
                    if !batch.is_empty() {
                        self.flush(batch)?;
                    }
                }
            }
        }
    }

    /// Advances the arrival clock by `gap` (sleeping under wall
    /// pacing) and polls completions.
    fn advance(&mut self, gap: Duration) -> Result<(), ServingError> {
        self.clock += gap;
        if self.pacing == Pacing::Wall {
            let target = self.started + self.clock;
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        self.poll()
    }

    /// Records one arrival, runs admission, and builds its payload if
    /// admitted. `queued` is how many admitted arrivals are already
    /// waiting in the current micro-batch.
    fn offer(
        &mut self,
        source: u64,
        queued: usize,
        make: &mut impl FnMut(u64) -> NativePayload,
    ) -> Option<NativePayload> {
        // The id this arrival receives if admitted: ids are minted in
        // injection order, and `queued` batch-mates inject first.
        let request = self.run.next_request_id() + queued as u64;
        let snow = self.scope_now_us();
        let ts = self.run.driver_sink().now();
        self.run.driver_sink().req_arrive(ts, request, source);
        if let Some(scope) = &self.scope {
            scope.arrive(snow, request);
        }
        self.arrivals += 1;
        let depth = self.run.ingress_depth() + queued;
        match self.admission.decide(self.clock, depth) {
            AdmissionVerdict::Admit => Some(make(request)),
            AdmissionVerdict::Shed(reason) => {
                self.run.driver_sink().req_shed(ts, request, reason.tag());
                if let Some(scope) = &self.scope {
                    scope.shed(snow, request);
                }
                self.shed += 1;
                match reason {
                    crate::error::ShedReason::RateLimit => self.shed_rate_limit += 1,
                    crate::error::ShedReason::QueueDepth => self.shed_queue_depth += 1,
                }
                None
            }
        }
    }

    /// [`Server::offer`] for an already-built payload (channel
    /// ingress); sheds drop the payload.
    fn offer_payload(
        &mut self,
        source: u64,
        queued: usize,
        payload: NativePayload,
    ) -> Option<NativePayload> {
        let mut slot = Some(payload);
        self.offer(source, queued, &mut |_| slot.take().expect("one payload"))
    }

    /// Injects a micro-batch and, under stepped pacing, drains the
    /// executor so the tick's completions surface deterministically.
    fn flush(&mut self, batch: Vec<NativePayload>) -> Result<(), ServingError> {
        let now = Instant::now();
        let snow = self.scope_now_us();
        let ids = self.run.inject_batch(batch);
        self.admitted += ids.len() as u64;
        for id in ids {
            if let Some(scope) = &self.scope {
                scope.admit(snow, id);
            }
            self.admit_at.insert(id, now);
        }
        if self.pacing == Pacing::Stepped {
            self.run.drain()?;
            let mut tick: Vec<Completion> = self.run.try_completions();
            tick.sort_by_key(|c| c.request);
            for c in tick {
                self.record(c);
            }
            // Synchronous controller tick at the drained point: the
            // executor is idle, so the estimator snapshot (and thus
            // the migration decision) is a pure function of the
            // arrival history — deterministic at any thread count.
            if let AdaptDriver::Stepped(controller) = &mut self.adapt {
                controller.tick(self.clock)?;
            }
        }
        Ok(())
    }

    /// Collects surfaced completions and checks executor health.
    fn poll(&mut self) -> Result<(), ServingError> {
        for c in self.run.try_completions() {
            self.record(c);
        }
        match self.run.failure() {
            Some(err) => Err(err.into()),
            None => Ok(()),
        }
    }

    fn record(&mut self, c: Completion) {
        if let Some(admitted) = self.admit_at.remove(&c.request) {
            let us = c
                .completed_at
                .saturating_duration_since(admitted)
                .as_micros() as u64;
            self.latency_us.record(us);
            self.raw_latency_us.push(us);
        }
        if let Some(scope) = &self.scope {
            scope.complete(self.scope_now_us(), c.request, c.invocations);
        }
        self.completions.push(c);
    }

    /// Waits until every admitted request completes (or the executor
    /// fails).
    ///
    /// # Errors
    ///
    /// [`ServingError::Exec`] with the executor's first unrecoverable
    /// fault; outstanding requests of a failed run never complete.
    pub fn await_idle(&mut self) -> Result<(), ServingError> {
        self.run.drain()?;
        self.poll()
    }

    /// Waits for outstanding requests, shuts the deployment down, and
    /// returns the combined report.
    ///
    /// # Errors
    ///
    /// [`ServingError::Exec`] with the executor's first unrecoverable
    /// fault (shutdown never hangs on a failed run).
    pub fn finish(mut self) -> Result<ServingReport, ServingError> {
        let idle = self.await_idle();
        // Stop the controller before the workers: a commit landing
        // mid-shutdown would be harmless but pointless.
        let adapt = self.adapt.finish();
        // Always stop the workers — even on a failed run — so a typed
        // error never leaks live threads.
        let executor = self.run.shutdown();
        let scope = self.scope.as_ref().map(ScopeRecorder::snapshot);
        idle?;
        let executor = executor?;
        Ok(ServingReport {
            arrivals: self.arrivals,
            admitted: self.admitted,
            shed: self.shed,
            shed_rate_limit: self.shed_rate_limit,
            shed_queue_depth: self.shed_queue_depth,
            completed: self.completions.len() as u64,
            latency_us: self.latency_us,
            raw_latency_us: self.raw_latency_us,
            completions: self.completions,
            relayouts: executor.relayouts,
            layout_epoch: executor.layout_epoch,
            adapt,
            scope,
            executor,
        })
    }
}
