//! Serving-layer errors.

use bamboo_runtime::{ExecError, RelayoutError};
use bamboo_telemetry::event::shed_reason;
use std::fmt;

/// Why an arrival was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket was empty: offered rate exceeds the configured
    /// sustained rate plus burst allowance.
    RateLimit,
    /// The executor's ingress backlog (channel + ready queue on the
    /// startup group's cores) exceeded the configured depth.
    QueueDepth,
}

impl ShedReason {
    /// The telemetry payload tag for this reason
    /// ([`bamboo_telemetry::event::shed_reason`]).
    pub fn tag(self) -> u64 {
        match self {
            ShedReason::RateLimit => shed_reason::RATE_LIMIT,
            ShedReason::QueueDepth => shed_reason::QUEUE_DEPTH,
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::RateLimit => f.write_str("rate limit"),
            ShedReason::QueueDepth => f.write_str("queue depth"),
        }
    }
}

/// Any error the serving layer can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServingError {
    /// The request was refused admission (typed overload signal — the
    /// caller can back off and retry; the server is still healthy).
    Overloaded {
        /// Which admission policy refused it.
        reason: ShedReason,
    },
    /// The resident executor failed underneath the server (e.g. an
    /// unrecoverable injected fault).
    Exec(ExecError),
    /// The adaptive controller's hot-relayout commit was rejected.
    /// The run itself is untouched (commits validate before mutating).
    Relayout(RelayoutError),
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Overloaded { reason } => {
                write!(f, "request shed at admission ({reason})")
            }
            ServingError::Exec(e) => write!(f, "resident executor failed: {e}"),
            ServingError::Relayout(e) => write!(f, "hot relayout rejected: {e}"),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Overloaded { .. } => None,
            ServingError::Exec(e) => Some(e),
            ServingError::Relayout(e) => Some(e),
        }
    }
}

impl From<ExecError> for ServingError {
    fn from(e: ExecError) -> Self {
        ServingError::Exec(e)
    }
}

impl From<RelayoutError> for ServingError {
    fn from(e: RelayoutError) -> Self {
        ServingError::Relayout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_reason() {
        let err = ServingError::Overloaded {
            reason: ShedReason::RateLimit,
        };
        assert!(err.to_string().contains("rate limit"), "{err}");
        let err = ServingError::from(ExecError::Diverged(3));
        assert!(matches!(err, ServingError::Exec(_)));
    }

    #[test]
    fn reasons_map_to_distinct_tags() {
        assert_ne!(ShedReason::RateLimit.tag(), ShedReason::QueueDepth.tag());
    }
}
