//! Open-loop arrival processes.
//!
//! An [`ArrivalProcess`] yields inter-arrival gaps: the server advances
//! its clock by each gap and injects (or sheds) one request, never
//! waiting for completions — the defining property of open-loop load,
//! which is what makes overload *visible* (a closed loop self-throttles
//! and can never drive the system past saturation).
//!
//! All processes are seeded and deterministic: the same seed yields the
//! same arrival sequence, so serving runs are replayable end to end.

use std::time::Duration;

/// A source of inter-arrival gaps.
pub trait ArrivalProcess {
    /// The gap between the previous arrival and the next one.
    fn next_gap(&mut self) -> Duration;

    /// The telemetry source tag recorded on each `req_arrive` event
    /// ([`bamboo_telemetry::event::arrival_source`]).
    fn source_tag(&self) -> u64;
}

/// splitmix64 — the same tiny generator the runtime's chaos layer uses
/// for deterministic derivation; good enough statistical quality for
/// arrival sampling and dependency-free.
#[derive(Clone, Copy, Debug)]
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in the open interval (0, 1].
    fn next_unit(&mut self) -> f64 {
        // 53 random bits; +1 keeps ln() away from zero.
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// An exponential draw with the given rate (events per second),
    /// as a duration.
    fn next_exp(&mut self, rate_per_sec: f64) -> Duration {
        let gap_secs = -self.next_unit().ln() / rate_per_sec;
        Duration::from_nanos((gap_secs * 1e9) as u64)
    }
}

/// A Poisson process: exponentially distributed inter-arrival gaps at a
/// constant rate.
#[derive(Clone, Debug)]
pub struct Poisson {
    rate_per_sec: f64,
    rng: SplitMix,
}

impl Poisson {
    /// A Poisson process at `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics when the rate is not strictly positive.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        Poisson {
            rate_per_sec,
            rng: SplitMix::new(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self) -> Duration {
        self.rng.next_exp(self.rate_per_sec)
    }

    fn source_tag(&self) -> u64 {
        bamboo_telemetry::event::arrival_source::POISSON
    }
}

/// A two-state Markov-modulated Poisson process: the process alternates
/// between a *calm* and a *burst* state, each with its own Poisson
/// rate; after every arrival it switches state with the configured
/// probability. The classic minimal model of bursty traffic.
#[derive(Clone, Debug)]
pub struct Bursty {
    calm_rate: f64,
    burst_rate: f64,
    switch_prob: f64,
    bursting: bool,
    rng: SplitMix,
}

impl Bursty {
    /// A bursty process alternating between `calm_rate` and
    /// `burst_rate` arrivals per second, switching state after each
    /// arrival with probability `switch_prob`.
    ///
    /// # Panics
    ///
    /// Panics when a rate is not strictly positive or the switch
    /// probability is outside (0, 1].
    pub fn new(calm_rate: f64, burst_rate: f64, switch_prob: f64, seed: u64) -> Self {
        assert!(
            calm_rate > 0.0 && burst_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            switch_prob > 0.0 && switch_prob <= 1.0,
            "switch probability must be in (0, 1]"
        );
        Bursty {
            calm_rate,
            burst_rate,
            switch_prob,
            bursting: false,
            rng: SplitMix::new(seed),
        }
    }

    /// The long-run mean rate (states are symmetric under a constant
    /// switch probability, so each is occupied half the time).
    pub fn mean_rate(&self) -> f64 {
        (self.calm_rate + self.burst_rate) / 2.0
    }
}

impl ArrivalProcess for Bursty {
    fn next_gap(&mut self) -> Duration {
        let rate = if self.bursting {
            self.burst_rate
        } else {
            self.calm_rate
        };
        let gap = self.rng.next_exp(rate);
        if self.rng.next_unit() <= self.switch_prob {
            self.bursting = !self.bursting;
        }
        gap
    }

    fn source_tag(&self) -> u64 {
        bamboo_telemetry::event::arrival_source::BURSTY
    }
}

/// Replays a recorded gap sequence, cycling when it runs out — the
/// trace-replay arrival source. [`Trace::diurnal`] builds the classic
/// day-curve shape synthetically.
#[derive(Clone, Debug)]
pub struct Trace {
    gaps: Vec<Duration>,
    next: usize,
}

impl Trace {
    /// Replays `gaps` in order, cycling.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn replay(gaps: Vec<Duration>) -> Self {
        assert!(!gaps.is_empty(), "trace must contain at least one gap");
        Trace { gaps, next: 0 }
    }

    /// A synthetic diurnal trace: `len` seeded Poisson gaps whose rate
    /// follows one sinusoidal day cycle between `trough_rate` and
    /// `peak_rate` arrivals per second (a scaled stand-in for replaying
    /// a production day).
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero or a rate is not strictly positive.
    pub fn diurnal(trough_rate: f64, peak_rate: f64, len: usize, seed: u64) -> Self {
        assert!(len > 0, "trace must contain at least one gap");
        assert!(
            trough_rate > 0.0 && peak_rate > 0.0,
            "rates must be positive"
        );
        let mut rng = SplitMix::new(seed);
        let mid = (peak_rate + trough_rate) / 2.0;
        let amp = (peak_rate - trough_rate) / 2.0;
        let gaps = (0..len)
            .map(|i| {
                let phase = i as f64 / len as f64 * std::f64::consts::TAU;
                // Peak mid-trace: -cos starts at the trough.
                let rate = mid - amp * phase.cos();
                rng.next_exp(rate)
            })
            .collect();
        Trace { gaps, next: 0 }
    }

    /// Number of gaps before the trace cycles.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Whether the trace is empty (never true — construction forbids
    /// it; provided for `len` convention).
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }
}

impl ArrivalProcess for Trace {
    fn next_gap(&mut self) -> Duration {
        let gap = self.gaps[self.next];
        self.next = (self.next + 1) % self.gaps.len();
        gap
    }

    fn source_tag(&self) -> u64 {
        bamboo_telemetry::event::arrival_source::TRACE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(process: &mut dyn ArrivalProcess, n: usize) -> f64 {
        (0..n)
            .map(|_| process.next_gap().as_secs_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = Poisson::new(1000.0, 7);
        let mean = mean_gap(&mut p, 20_000);
        // 1/rate = 1ms; the sample mean of 20k exponentials is within
        // a few percent with overwhelming probability.
        assert!((0.0009..0.0011).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Poisson::new(500.0, 42);
        let mut b = Poisson::new(500.0, 42);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
        let mut a = Bursty::new(100.0, 2000.0, 0.1, 42);
        let mut b = Bursty::new(100.0, 2000.0, 0.1, 42);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }

    #[test]
    fn bursty_mixes_two_rates() {
        let mut p = Bursty::new(10.0, 10_000.0, 0.2, 3);
        let gaps: Vec<f64> = (0..5_000).map(|_| p.next_gap().as_secs_f64()).collect();
        let short = gaps.iter().filter(|g| **g < 0.001).count();
        let long = gaps.iter().filter(|g| **g > 0.01).count();
        assert!(short > 500, "burst-state gaps present ({short})");
        assert!(long > 500, "calm-state gaps present ({long})");
    }

    #[test]
    fn trace_replays_and_cycles() {
        let mut t = Trace::replay(vec![Duration::from_millis(1), Duration::from_millis(2)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.next_gap(), Duration::from_millis(1));
        assert_eq!(t.next_gap(), Duration::from_millis(2));
        assert_eq!(t.next_gap(), Duration::from_millis(1));
    }

    #[test]
    fn diurnal_trace_peaks_mid_cycle() {
        let t = Trace::diurnal(10.0, 1000.0, 10_000, 9);
        // Mean gap over the middle fifth (peak) vs the first fifth
        // (trough): peak gaps must be much shorter.
        let fifth = t.gaps.len() / 5;
        let trough: f64 = t.gaps[..fifth].iter().map(|g| g.as_secs_f64()).sum();
        let peak: f64 = t.gaps[fifth * 2..fifth * 3]
            .iter()
            .map(|g| g.as_secs_f64())
            .sum();
        assert!(
            trough > peak * 5.0,
            "trough sum {trough} not ≫ peak sum {peak}"
        );
    }

    #[test]
    fn source_tags_are_distinct() {
        let tags = [
            Poisson::new(1.0, 0).source_tag(),
            Bursty::new(1.0, 2.0, 0.5, 0).source_tag(),
            Trace::replay(vec![Duration::ZERO]).source_tag(),
        ];
        assert_eq!(
            tags.len(),
            tags.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
