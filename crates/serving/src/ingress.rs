//! Channel ingress: request submission from other threads.
//!
//! [`channel`] builds a capacity-bounded mpsc pair: any number of
//! cloned [`IngressHandle`]s (one per accepted socket, per producer
//! thread, …) submit payloads; the server drains the single
//! [`ChannelIngress`] and injects each payload as a request. The
//! third-party channel stand-in only provides unbounded channels, so
//! the capacity bound is a shared pending counter: `submit` refuses
//! with [`ServingError::Overloaded`] once `capacity` payloads are
//! queued, and the server decrements as it drains — backpressure with
//! a typed rejection instead of an ever-growing queue.

use crate::error::{ServingError, ShedReason};
use bamboo_runtime::NativePayload;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Creates a capacity-bounded ingress pair. `capacity` is the maximum
/// number of submitted-but-not-yet-drained payloads.
///
/// # Panics
///
/// Panics on zero capacity.
pub fn channel(capacity: usize) -> (IngressHandle, ChannelIngress) {
    assert!(capacity > 0, "ingress capacity must be positive");
    let (tx, rx) = unbounded();
    let pending = Arc::new(AtomicUsize::new(0));
    (
        IngressHandle {
            tx,
            pending: pending.clone(),
            capacity,
        },
        ChannelIngress { rx, pending },
    )
}

/// The submitting half: cloneable, sharable across threads (e.g. one
/// clone per socket-accept loop worker).
#[derive(Clone, Debug)]
pub struct IngressHandle {
    tx: Sender<NativePayload>,
    pending: Arc<AtomicUsize>,
    capacity: usize,
}

impl IngressHandle {
    /// Submits one request payload.
    ///
    /// # Errors
    ///
    /// [`ServingError::Overloaded`] (queue-depth) when `capacity`
    /// payloads are already queued — the typed backpressure signal a
    /// socket adapter turns into HTTP 503 / retry-after. Also returned
    /// when the serving side has shut down and dropped the receiver.
    pub fn submit(&self, payload: NativePayload) -> Result<(), ServingError> {
        // Optimistic reserve: claim a slot, then roll back if over.
        let prior = self.pending.fetch_add(1, Ordering::AcqRel);
        if prior >= self.capacity {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Err(ServingError::Overloaded {
                reason: ShedReason::QueueDepth,
            });
        }
        if self.tx.send(payload).is_err() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Err(ServingError::Overloaded {
                reason: ShedReason::QueueDepth,
            });
        }
        Ok(())
    }

    /// Payloads submitted and not yet drained by the server.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The draining half, owned by the server.
#[derive(Debug)]
pub struct ChannelIngress {
    rx: Receiver<NativePayload>,
    pending: Arc<AtomicUsize>,
}

/// Outcome of a bounded-wait drain attempt.
pub(crate) enum Drained {
    /// One payload.
    Payload(NativePayload),
    /// Nothing arrived within the wait.
    Empty,
    /// Every handle has been dropped and the queue is empty.
    Closed,
}

impl ChannelIngress {
    /// Takes one payload if immediately available.
    pub(crate) fn try_drain(&mut self) -> Drained {
        match self.rx.try_recv() {
            Ok(payload) => {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                Drained::Payload(payload)
            }
            Err(TryRecvError::Empty) => Drained::Empty,
            Err(TryRecvError::Disconnected) => Drained::Closed,
        }
    }

    /// Waits up to `timeout` for a payload.
    pub(crate) fn drain_timeout(&mut self, timeout: Duration) -> Drained {
        match self.rx.recv_timeout(timeout) {
            Ok(payload) => {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                Drained::Payload(payload)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Drained::Empty,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Drained::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_rejects_typed() {
        let (handle, mut ingress) = channel(2);
        handle.submit(Box::new(1u32)).unwrap();
        handle.submit(Box::new(2u32)).unwrap();
        let err = handle.submit(Box::new(3u32)).unwrap_err();
        assert!(matches!(
            err,
            ServingError::Overloaded {
                reason: ShedReason::QueueDepth
            }
        ));
        assert_eq!(handle.pending(), 2);
        // Draining frees a slot.
        assert!(matches!(ingress.try_drain(), Drained::Payload(_)));
        assert_eq!(handle.pending(), 1);
        handle.submit(Box::new(3u32)).unwrap();
    }

    #[test]
    fn drain_observes_close() {
        let (handle, mut ingress) = channel(4);
        handle.submit(Box::new(7u32)).unwrap();
        drop(handle);
        assert!(matches!(ingress.try_drain(), Drained::Payload(_)));
        assert!(matches!(ingress.try_drain(), Drained::Closed));
    }

    #[test]
    fn handles_submit_from_other_threads() {
        let (handle, mut ingress) = channel(64);
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    for i in 0..10 {
                        handle.submit(Box::new((t, i))).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(handle);
        let mut seen = 0;
        loop {
            match ingress.try_drain() {
                Drained::Payload(_) => seen += 1,
                Drained::Closed => break,
                Drained::Empty => {}
            }
        }
        assert_eq!(seen, 40);
    }
}
