//! Ingress admission control: token-bucket rate limiting plus
//! queue-depth shedding.
//!
//! Both policies act *at admission*, before a root object is allocated
//! or routed — the cheap place to refuse work. The queue-depth policy
//! is the router's shed-on-overflow path surfaced early: instead of
//! letting an overload trickle down to a full run queue (where the
//! router must divert the invocation and charge `router.shed`), the
//! server refuses the request while it is still just a payload.
//!
//! The bucket runs on whatever clock the server feeds it: wall time
//! under [`crate::Pacing::Wall`], the virtual arrival clock under
//! [`crate::Pacing::Stepped`] — which is what keeps stepped-mode
//! admission decisions bit-deterministic.

use crate::error::ShedReason;
use std::time::Duration;

/// A token bucket: sustained rate plus burst allowance.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Duration,
}

impl TokenBucket {
    /// A bucket sustaining `rate_per_sec` admissions per second with a
    /// burst allowance of `burst` tokens (the bucket starts full).
    ///
    /// # Panics
    ///
    /// Panics when the rate is not strictly positive or the burst is
    /// less than one token.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(burst >= 1.0, "burst must allow at least one token");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: Duration::ZERO,
        }
    }

    /// Tries to take one token at clock time `now` (monotone across
    /// calls). Returns whether the admission is allowed.
    pub fn admit(&mut self, now: Duration) -> bool {
        let elapsed = now.saturating_sub(self.last);
        self.last = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// The outcome of an admission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The request may be injected.
    Admit,
    /// The request must be shed, with the refusing policy.
    Shed(ShedReason),
}

/// The server's combined admission policy. [`AdmissionControl::open`]
/// admits everything — the configuration for measuring raw capacity.
#[derive(Clone, Debug, Default)]
pub struct AdmissionControl {
    /// Optional rate limiter.
    pub rate: Option<TokenBucket>,
    /// Optional bound on the executor's ingress backlog (pending
    /// channel messages plus ready-queue length on the startup group's
    /// cores); arrivals shed while the backlog is at or above it.
    pub max_ingress_depth: Option<usize>,
}

impl AdmissionControl {
    /// No admission control: every arrival is admitted.
    pub fn open() -> Self {
        AdmissionControl::default()
    }

    /// Adds a token-bucket rate limit.
    pub fn with_rate(mut self, bucket: TokenBucket) -> Self {
        self.rate = Some(bucket);
        self
    }

    /// Adds a queue-depth bound.
    pub fn with_max_ingress_depth(mut self, depth: usize) -> Self {
        self.max_ingress_depth = Some(depth);
        self
    }

    /// Decides one arrival at clock time `now`, with the executor's
    /// current ingress backlog at `ingress_depth`. Queue depth is
    /// checked first (it reflects real pressure; the bucket only
    /// spends a token on requests that could actually be enqueued).
    pub fn decide(&mut self, now: Duration, ingress_depth: usize) -> AdmissionVerdict {
        if let Some(max) = self.max_ingress_depth {
            if ingress_depth >= max {
                return AdmissionVerdict::Shed(ShedReason::QueueDepth);
            }
        }
        if let Some(bucket) = &mut self.rate {
            if !bucket.admit(now) {
                return AdmissionVerdict::Shed(ShedReason::RateLimit);
            }
        }
        AdmissionVerdict::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_sustained_rate() {
        // 100/s, burst 10: at t=0 the burst drains after 10 takes.
        let mut b = TokenBucket::new(100.0, 10.0);
        let now = Duration::ZERO;
        for _ in 0..10 {
            assert!(b.admit(now));
        }
        assert!(!b.admit(now));
        // 50ms later 5 tokens have refilled.
        let later = Duration::from_millis(50);
        for _ in 0..5 {
            assert!(b.admit(later));
        }
        assert!(!b.admit(later));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.admit(Duration::ZERO));
        // A long idle period refills to the cap, not beyond.
        let mut admitted = 0;
        let later = Duration::from_secs(60);
        while b.admit(later) {
            admitted += 1;
        }
        assert_eq!(admitted, 2);
    }

    #[test]
    fn queue_depth_is_checked_before_rate() {
        let mut ac = AdmissionControl::open()
            .with_rate(TokenBucket::new(10.0, 1.0))
            .with_max_ingress_depth(4);
        assert_eq!(
            ac.decide(Duration::ZERO, 4),
            AdmissionVerdict::Shed(ShedReason::QueueDepth)
        );
        // The refused arrival did not spend the single token.
        assert_eq!(ac.decide(Duration::ZERO, 0), AdmissionVerdict::Admit);
        assert_eq!(
            ac.decide(Duration::ZERO, 0),
            AdmissionVerdict::Shed(ShedReason::RateLimit)
        );
    }

    #[test]
    fn open_admits_everything() {
        let mut ac = AdmissionControl::open();
        for i in 0..100 {
            assert_eq!(ac.decide(Duration::ZERO, i), AdmissionVerdict::Admit);
        }
    }
}
