#![warn(missing_docs)]

//! # bamboo-serving
//!
//! Resident Bamboo deployments under open-loop traffic (DESIGN.md §15).
//!
//! The batch executors answer *how fast does one workload drain*; this
//! crate answers the serving question: a deployment stays resident
//! ([`bamboo_runtime::ThreadedExecutor::start`]), root objects arrive
//! from an open-loop process — the arrival clock never waits for
//! completions, so overload is visible instead of self-throttled — and
//! each injection is its own *request* whose completion the runtime's
//! request ledger detects individually (no global quiescence).
//!
//! The pieces:
//!
//! - [`arrivals`] — pluggable seeded arrival processes: [`Poisson`],
//!   [`Bursty`] (two-state Markov-modulated Poisson), [`Trace`] replay
//!   (including a diurnal day-curve constructor).
//! - [`ingress`] — an mpsc channel ingress ([`channel`]) whose cloneable
//!   [`IngressHandle`] is usable from a socket-accept loop or any other
//!   thread; capacity-bounded, rejecting with
//!   [`ServingError::Overloaded`].
//! - [`admission`] — ingress admission control: a [`TokenBucket`] rate
//!   limiter plus queue-depth shedding against the executor's ingress
//!   backlog (the router's shed-on-overflow path, surfaced at
//!   admission time instead of deep in the run queues).
//! - [`server`] — the [`Server`] loop: collect a micro-batch per
//!   arrival tick, admit or shed, inject, track completions, and fold
//!   per-request latencies into a
//!   [`bamboo_telemetry::analyze::LatencyHistogram`].
//!
//! Every lifecycle edge is stamped into the ordinary telemetry rings
//! (`serving.*` namespace in METRICS.md: `req_arrive`, `req_admit`,
//! `req_shed`, `req_complete`) so latency distributions can also be
//! reconstructed offline from a recorded report via
//! [`bamboo_telemetry::analyze::ServingStats`].
//!
//! With [`ServingOptions::with_scope`] the same lifecycle also feeds
//! the *live* observability plane (`bamboo-scope`, DESIGN.md §17):
//! sliding-window p50/p99/p999, shed rate, SLO burn-rate, and
//! tail-based span sampling, snapshotted on demand through a
//! [`ScopeHandle`] while the deployment keeps serving.

pub mod admission;
pub mod arrivals;
pub mod error;
pub mod ingress;
pub mod server;

pub use admission::{AdmissionControl, AdmissionVerdict, TokenBucket};
pub use arrivals::{ArrivalProcess, Bursty, Poisson, Trace};
pub use error::{ServingError, ShedReason};
pub use ingress::{channel, ChannelIngress, IngressHandle};
pub use server::{Pacing, Server, ServingOptions, ServingReport};
// Re-exported so `ServingReport::adapt` and the `AdaptPolicy` handed to
// `RunOptions::with_adapt` are nameable from this crate alone.
pub use bamboo_runtime::{AdaptPolicy, AdaptReport, RelayoutError};
// Re-exported so `ServingOptions::with_scope` and the snapshots hanging
// off `ServingReport::scope` are nameable from this crate alone.
pub use bamboo_telemetry::scope::{ScopeConfig, ScopeHandle, ScopeSnapshot};
