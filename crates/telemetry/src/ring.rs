//! Per-worker event rings.
//!
//! Each worker owns its ring exclusively, so recording is a plain
//! indexed store into memory preallocated at ring creation — no locks,
//! no atomics, no allocation on the hot path. When the ring is full the
//! oldest events are overwritten (recent history wins) and the overwrite
//! count is reported so exporters can flag truncation.

use crate::event::Event;

/// A fixed-capacity overwrite-oldest event buffer.
#[derive(Debug)]
pub struct EventRing {
    core: u32,
    buf: Vec<Event>,
    capacity: usize,
    /// Next write position once the buffer has wrapped.
    next: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    recorded: u64,
}

impl EventRing {
    /// Creates a ring for `core` holding up to `capacity` events.
    ///
    /// This is the *only* allocation the ring ever performs.
    pub fn new(core: u32, capacity: usize) -> Self {
        EventRing {
            core,
            buf: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next: 0,
            recorded: 0,
        }
    }

    /// The core this ring records for.
    pub fn core(&self) -> u32 {
        self.core
    }

    /// Records `event`, overwriting the oldest record when full.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            // Within preallocated capacity: push never reallocates.
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Events recorded in total, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn drain_ordered(self) -> Vec<Event> {
        let EventRing { buf, next, .. } = self;
        if next == 0 {
            buf
        } else {
            let mut out = Vec::with_capacity(buf.len());
            out.extend_from_slice(&buf[next..]);
            out.extend_from_slice(&buf[..next]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts,
            kind: EventKind::TaskStart,
            core: 0,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn keeps_order_under_capacity() {
        let mut ring = EventRing::new(0, 8);
        for t in 0..5 {
            ring.push(ev(t));
        }
        assert_eq!(ring.dropped(), 0);
        let ts: Vec<u64> = ring.drain_ordered().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = EventRing::new(0, 4);
        for t in 0..10 {
            ring.push(ev(t));
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let ts: Vec<u64> = ring.drain_ordered().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn never_reallocates_past_creation() {
        let mut ring = EventRing::new(0, 16);
        let cap_before = ring.buf.capacity();
        for t in 0..100 {
            ring.push(ev(t));
        }
        assert_eq!(ring.buf.capacity(), cap_before);
    }
}
