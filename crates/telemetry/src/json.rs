//! Minimal JSON support: a string-building writer used by the exporters
//! and a small recursive-descent parser used by tests (and anything else
//! that wants to validate an exported file) — the build environment is
//! offline, so no external JSON crate is available.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, rendering integral values
/// without a fractional part.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{}", v);
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys keep sorted order via `BTreeMap`.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_formats() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
        let mut num = String::new();
        write_f64(&mut num, 42.0);
        num.push(' ');
        write_f64(&mut num, 1.5);
        assert_eq!(num, "42 1.5");
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, {"b": "x\ny"}], "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut out = String::new();
        out.push('{');
        write_str(&mut out, "name \"quoted\"");
        out.push(':');
        write_f64(&mut out, 3.25);
        out.push('}');
        let v = parse(&out).unwrap();
        assert_eq!(v.get("name \"quoted\"").unwrap().as_f64(), Some(3.25));
    }
}
