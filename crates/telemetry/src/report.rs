//! The merged, queryable output of one recording session.

use crate::event::{Event, EventKind, Timestamp};
use crate::metrics::MetricsSnapshot;
use crate::TimeUnit;

/// Everything one [`crate::Telemetry`] session recorded: every retained
/// event (merged across workers, ordered by timestamp) plus a metrics
/// snapshot. Produced by [`crate::Telemetry::report`].
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// Time base of the event timestamps.
    pub unit: TimeUnit,
    /// Wall-clock nanoseconds from telemetry creation to the report.
    pub wall_ns: u64,
    /// Worker/core count the session was created with.
    pub cores: usize,
    /// Retained events, ordered by `(ts, core)`.
    pub events: Vec<Event>,
    /// Events lost to ring overwrites (0 unless a ring filled up).
    pub dropped: u64,
    /// Metrics at report time.
    pub metrics: MetricsSnapshot,
}

impl TelemetryReport {
    /// A report with nothing in it (what a disabled session yields).
    pub fn empty() -> Self {
        TelemetryReport {
            unit: TimeUnit::Nanos,
            wall_ns: 0,
            cores: 0,
            events: Vec::new(),
            dropped: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Cores that recorded at least one event, ascending.
    pub fn active_cores(&self) -> Vec<u32> {
        let mut cores: Vec<u32> = self.events.iter().map(|e| e.core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Events recorded by `core`, in timestamp order.
    pub fn events_on(&self, core: u32) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.core == core)
    }

    /// Events recorded by `core` as an owned, timestamp-ordered vector
    /// (events are small `Copy` records; consumers that index or
    /// re-scan repeatedly want this over the [`Self::events_on`]
    /// iterator).
    pub fn events_for_core(&self, core: u32) -> Vec<Event> {
        self.events_on(core).copied().collect()
    }

    /// The contiguous slice of events whose timestamps fall in `range`
    /// (half-open, like all Rust ranges). O(log n): the event vector is
    /// ordered by `(ts, core)`, so the window is located by binary
    /// search rather than a scan.
    pub fn events_in(&self, range: std::ops::Range<Timestamp>) -> &[Event] {
        let lo = self.events.partition_point(|e| e.ts < range.start);
        let hi = self.events.partition_point(|e| e.ts < range.end);
        &self.events[lo..hi]
    }

    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Timestamp of the last event (0 when empty). In
    /// [`TimeUnit::Cycles`] mode this is the observed makespan.
    pub fn last_ts(&self) -> u64 {
        self.events.last().map_or(0, |e| e.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, core: u32, kind: EventKind) -> Event {
        Event {
            ts,
            kind,
            core,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn queries_over_events() {
        let report = TelemetryReport {
            events: vec![
                ev(1, 0, EventKind::TaskStart),
                ev(2, 2, EventKind::TaskStart),
                ev(3, 0, EventKind::TaskEnd),
            ],
            ..TelemetryReport::empty()
        };
        assert_eq!(report.active_cores(), vec![0, 2]);
        assert_eq!(report.events_on(0).count(), 2);
        assert_eq!(report.count(EventKind::TaskStart), 2);
        assert_eq!(report.last_ts(), 3);
    }

    #[test]
    fn events_for_core_copies_in_order() {
        let report = TelemetryReport {
            events: vec![
                ev(1, 0, EventKind::TaskStart),
                ev(2, 1, EventKind::TaskStart),
                ev(3, 0, EventKind::TaskEnd),
                ev(4, 1, EventKind::TaskEnd),
            ],
            ..TelemetryReport::empty()
        };
        let core0 = report.events_for_core(0);
        assert_eq!(core0.len(), 2);
        assert_eq!(core0[0].ts, 1);
        assert_eq!(core0[1].ts, 3);
        assert!(report.events_for_core(7).is_empty());
    }

    #[test]
    fn events_in_slices_the_time_window() {
        let report = TelemetryReport {
            events: vec![
                ev(10, 0, EventKind::TaskStart),
                ev(20, 1, EventKind::TaskStart),
                ev(30, 0, EventKind::TaskEnd),
                ev(40, 1, EventKind::TaskEnd),
            ],
            ..TelemetryReport::empty()
        };
        // Half-open: [20, 40) keeps ts 20 and 30, drops 40.
        let window = report.events_in(20..40);
        assert_eq!(
            window.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![20, 30]
        );
        assert!(report.events_in(0..10).is_empty());
        assert!(report.events_in(41..100).is_empty());
        assert_eq!(report.events_in(0..u64::MAX).len(), 4);
    }

    #[test]
    fn empty_report_is_inert() {
        let report = TelemetryReport::empty();
        assert!(report.active_cores().is_empty());
        assert_eq!(report.count(EventKind::TaskEnd), 0);
        assert_eq!(report.last_ts(), 0);
    }
}
