#![warn(missing_docs)]

//! # bamboo-telemetry
//!
//! Low-overhead observability for the Bamboo runtime, scheduler, and
//! DSA optimizer, designed to stay compiled in:
//!
//! * **Event recording** — each worker owns a preallocated
//!   [`ring::EventRing`] and records fixed-size [`Event`]s (task
//!   dispatch start/end, lock acquire/fail/retry, object send/receive
//!   with byte counts, queue-depth samples) with no locks and no
//!   allocation on the hot path.
//! * **Metrics** — a [`metrics::MetricsRegistry`] of atomic counters,
//!   gauges, and log-2 bucketed histograms.
//! * **Exporters** — Chrome `chrome://tracing` JSON ([`chrome`],
//!   including predicted-vs-observed side-by-side rendering of
//!   [`bamboo_schedule::trace::ExecutionTrace`]), a per-core summary
//!   table, and metrics JSON dumps ([`summary`]).
//!
//! The cost contract: [`Telemetry::disabled`] hands out sinks and
//! metric handles that are `None` inside, so every recording call is a
//! single pattern-match on a niche-optimized `Option` — no atomics, no
//! branches into cold code, and **zero heap allocation**, verifiable
//! via [`Telemetry::heap_allocations`].
//!
//! # Examples
//!
//! ```
//! use bamboo_telemetry::{Telemetry, TimeUnit};
//!
//! let telemetry = Telemetry::enabled(2);
//! telemetry.set_time_unit(TimeUnit::Cycles);
//! let dispatches = telemetry.counter("runtime.dispatches");
//! let mut worker = telemetry.worker(0);
//! worker.task_start(100, 3, 0, 0);
//! worker.task_end(180, 3, 0, 0);
//! dispatches.inc();
//! drop(worker); // submits the worker's ring
//! let report = telemetry.report();
//! assert_eq!(report.events.len(), 2);
//! assert_eq!(report.metrics.counters["runtime.dispatches"], 1);
//! ```

pub mod analyze;
pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod ring;
pub mod scope;
pub mod summary;

pub use event::{Event, EventKind, Timestamp, NO_ID};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Series};
pub use report::TelemetryReport;
pub use scope::{ScopeConfig, ScopeHandle, ScopeRecorder, ScopeSnapshot};

use bamboo_schedule::dsa::DsaStats;
use ring::EventRing;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-worker ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Time base of a session's timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TimeUnit {
    /// Wall-clock nanoseconds since session creation (threaded executor).
    #[default]
    Nanos,
    /// Virtual cycles (virtual executor, scheduling simulator).
    Cycles,
}

#[derive(Debug)]
struct Inner {
    cores: usize,
    ring_capacity: usize,
    unit: AtomicU8,
    start: Instant,
    rings: Mutex<Vec<EventRing>>,
    metrics: MetricsRegistry,
    /// Heap allocations performed *by telemetry itself* (ring and
    /// metric-handle setup). Recording events never increments this.
    allocations: AtomicU64,
}

/// Handle to one recording session. Cloning is cheap (an `Arc` bump)
/// and every clone feeds the same session.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A live session for `cores` workers with the default per-worker
    /// ring capacity.
    pub fn enabled(cores: usize) -> Self {
        Self::with_capacity(cores, DEFAULT_RING_CAPACITY)
    }

    /// A live session with an explicit per-worker ring capacity.
    pub fn with_capacity(cores: usize, ring_capacity: usize) -> Self {
        let inner = Inner {
            cores,
            ring_capacity: ring_capacity.max(1),
            unit: AtomicU8::new(TimeUnit::Nanos as u8),
            start: Instant::now(),
            rings: Mutex::new(Vec::with_capacity(cores + 4)),
            metrics: MetricsRegistry::new(),
            allocations: AtomicU64::new(0),
        };
        Telemetry {
            inner: Some(Arc::new(inner)),
        }
    }

    /// The no-op session: every sink and handle it hands out records
    /// nothing and allocates nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this session records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Declares the time base recorded timestamps are in. Executors
    /// call this once before recording; exporters read it to scale
    /// timestamps.
    pub fn set_time_unit(&self, unit: TimeUnit) {
        if let Some(inner) = &self.inner {
            inner.unit.store(unit as u8, Ordering::Relaxed);
        }
    }

    /// The session's time base.
    pub fn time_unit(&self) -> TimeUnit {
        match self.inner.as_ref().map(|i| i.unit.load(Ordering::Relaxed)) {
            Some(u) if u == TimeUnit::Cycles as u8 => TimeUnit::Cycles,
            _ => TimeUnit::Nanos,
        }
    }

    /// Nanoseconds since session creation (0 when disabled).
    #[inline]
    pub fn now(&self) -> Timestamp {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_nanos() as Timestamp,
            None => 0,
        }
    }

    /// Creates the event sink for worker `core`. Allocates the worker's
    /// ring up front (counted in [`Self::heap_allocations`]); recording
    /// through the sink never allocates. Dropping the sink submits its
    /// ring back to the session.
    pub fn worker(&self, core: usize) -> WorkerSink {
        match &self.inner {
            Some(inner) => {
                inner.allocations.fetch_add(1, Ordering::Relaxed);
                WorkerSink {
                    inner: Some(Arc::clone(inner)),
                    ring: Some(EventRing::new(core as u32, inner.ring_capacity)),
                    start: inner.start,
                }
            }
            None => WorkerSink::disabled(),
        }
    }

    /// The counter named `name` (a shared no-op when disabled).
    /// Registration may allocate; call at setup, not per task.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => {
                inner.allocations.fetch_add(1, Ordering::Relaxed);
                inner.metrics.counter(name)
            }
            None => Counter::noop(),
        }
    }

    /// The gauge named `name` (a shared no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => {
                inner.allocations.fetch_add(1, Ordering::Relaxed);
                inner.metrics.gauge(name)
            }
            None => Gauge::noop(),
        }
    }

    /// The histogram named `name` (a shared no-op when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => {
                inner.allocations.fetch_add(1, Ordering::Relaxed);
                inner.metrics.histogram(name)
            }
            None => Histogram::noop(),
        }
    }

    /// The series named `name` (a shared no-op when disabled).
    pub fn series(&self, name: &str) -> Series {
        match &self.inner {
            Some(inner) => {
                inner.allocations.fetch_add(1, Ordering::Relaxed);
                inner.metrics.series(name)
            }
            None => Series::noop(),
        }
    }

    /// Heap allocations telemetry has performed on this session's
    /// behalf (ring creation + metric registrations). Always 0 for a
    /// disabled session — this is the hook the runtime's overhead-guard
    /// test asserts on.
    pub fn heap_allocations(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.allocations.load(Ordering::Relaxed))
    }

    /// Records a DSA optimizer run: iteration/simulation counts,
    /// pruning acceptance rate, and the best-cost trajectory.
    pub fn record_dsa(&self, stats: &DsaStats) {
        if !self.is_enabled() {
            return;
        }
        self.counter("dsa.iterations").add(stats.iterations as u64);
        self.counter("dsa.simulations")
            .add(stats.simulations as u64);
        self.counter("dsa.candidates_evaluated")
            .add(stats.candidates_evaluated as u64);
        self.counter("dsa.survivors").add(stats.survivors as u64);
        self.counter("dsa.cache_hits").add(stats.cache_hits as u64);
        self.counter("dsa.cache_misses")
            .add(stats.cache_misses as u64);
        self.gauge("dsa.best_makespan")
            .set(stats.best_makespan as i64);
        self.gauge("dsa.acceptance_rate_pct")
            .set((stats.acceptance_rate() * 100.0).round() as i64);
        self.gauge("dsa.cache_hit_rate_pct")
            .set((stats.cache_hit_rate() * 100.0).round() as i64);
        self.series("dsa.best_makespan_trajectory")
            .extend(&stats.trajectory);
    }

    /// Merges every submitted ring into one ordered [`TelemetryReport`]
    /// and snapshots the metrics. Drop (or [`WorkerSink::submit`]) all
    /// sinks first — rings still held by live sinks are not included.
    pub fn report(&self) -> TelemetryReport {
        let Some(inner) = &self.inner else {
            return TelemetryReport::empty();
        };
        let rings: Vec<EventRing> = match inner.rings.lock() {
            Ok(mut rings) => rings.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        let mut dropped = 0;
        let mut events: Vec<Event> = Vec::new();
        for ring in rings {
            dropped += ring.dropped();
            events.extend(ring.drain_ordered());
        }
        events.sort_by_key(|e| (e.ts, e.core));
        TelemetryReport {
            unit: self.time_unit(),
            wall_ns: inner.start.elapsed().as_nanos() as u64,
            cores: inner.cores,
            events,
            dropped,
            metrics: inner.metrics.snapshot(),
        }
    }
}

/// A worker-owned event sink. Not `Clone` — exclusive ownership is what
/// makes recording lock-free. Recording into a disabled sink is a no-op.
#[derive(Debug)]
pub struct WorkerSink {
    inner: Option<Arc<Inner>>,
    ring: Option<EventRing>,
    start: Instant,
}

impl WorkerSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        WorkerSink {
            inner: None,
            ring: None,
            start: Instant::now(),
        }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Nanoseconds since the owning session's creation. Returns 0 when
    /// disabled, so callers can pass it straight through without
    /// guarding (the recording call is a no-op anyway).
    #[inline]
    pub fn now(&self) -> Timestamp {
        if self.inner.is_some() {
            self.start.elapsed().as_nanos() as Timestamp
        } else {
            0
        }
    }

    #[inline]
    fn push(&mut self, ts: Timestamp, kind: EventKind, a: u64, b: u64, c: u64) {
        if let Some(ring) = &mut self.ring {
            let core = ring.core();
            ring.push(Event {
                ts,
                kind,
                core,
                a,
                b,
                c,
            });
        }
    }

    /// Records a task body starting (`inv` is the invocation id minted
    /// at formation; pass [`NO_ID`] when the executor has none).
    #[inline]
    pub fn task_start(&mut self, ts: Timestamp, task: u64, instance: u64, inv: u64) {
        self.push(ts, EventKind::TaskStart, task, instance, inv);
    }

    /// Records a task body finishing.
    #[inline]
    pub fn task_end(&mut self, ts: Timestamp, task: u64, instance: u64, inv: u64) {
        self.push(ts, EventKind::TaskEnd, task, instance, inv);
    }

    /// Records a successful parameter-lock acquisition after `retries`
    /// failed attempts.
    #[inline]
    pub fn lock_acquired(&mut self, ts: Timestamp, classes: u64, retries: u64, inv: u64) {
        self.push(ts, EventKind::LockAcquired, classes, retries, inv);
    }

    /// Records a failed try-lock-all attempt (the invocation re-queues).
    #[inline]
    pub fn lock_failed(&mut self, ts: Timestamp, classes: u64, task: u64, inv: u64) {
        self.push(ts, EventKind::LockFailed, classes, task, inv);
    }

    /// Records an object send of `bytes` toward `dest_core`; `msg` is
    /// the message id the matching receive will carry ([`NO_ID`] when
    /// the executor does not track messages).
    #[inline]
    pub fn obj_send(&mut self, ts: Timestamp, bytes: u64, dest_core: u64, msg: u64) {
        self.push(ts, EventKind::ObjSend, bytes, dest_core, msg);
    }

    /// Records an object receive of `bytes` from `src_core`
    /// ([`NO_ID`] when the source is unknown).
    #[inline]
    pub fn obj_recv(&mut self, ts: Timestamp, bytes: u64, src_core: u64, msg: u64) {
        self.push(ts, EventKind::ObjRecv, bytes, src_core, msg);
    }

    /// Records a queue occupancy sample.
    #[inline]
    pub fn queue_depth(&mut self, ts: Timestamp, queued: u64, ready: u64) {
        self.push(ts, EventKind::QueueDepth, queued, ready, 0);
    }

    /// Records the formation of invocation `inv` of `task` at
    /// `instance`: the queue-enter timestamp the analysis layer pairs
    /// with the eventual [`EventKind::TaskStart`] to measure queue
    /// wait. `request` is the serving request the invocation belongs to
    /// (0 for batch runs); it is packed into the high 32 bits of the
    /// instance word (see [`event::pack_inv_request`]) so request
    /// attribution costs no extra event.
    #[inline]
    pub fn inv_queued(&mut self, ts: Timestamp, inv: u64, instance: u64, task: u64, request: u64) {
        self.push(
            ts,
            EventKind::InvQueued,
            inv,
            event::pack_inv_request(instance, request),
            task,
        );
    }

    /// Records one causal edge: invocation `inv` consumed an object
    /// released/created by `producer` ([`NO_ID`] for the startup
    /// object), delivered by message `msg`.
    #[inline]
    pub fn inv_link(&mut self, ts: Timestamp, inv: u64, producer: u64, msg: u64) {
        self.push(ts, EventKind::InvLink, inv, producer, msg);
    }

    /// Records that invocation `inv` was stolen from `victim`'s run
    /// queue by this worker.
    #[inline]
    pub fn steal(&mut self, ts: Timestamp, inv: u64, victim: u64) {
        self.push(ts, EventKind::Steal, inv, victim, 0);
    }

    /// Records an injected fault firing (`fault.*` namespace): `code`
    /// is one of [`event::fault_code`], `detail` is code-specific, and
    /// `id` the message/invocation hit ([`NO_ID`] for core faults).
    #[inline]
    pub fn fault(&mut self, ts: Timestamp, code: u64, detail: u64, id: u64) {
        self.push(ts, EventKind::Fault, code, detail, id);
    }

    /// Records a completed recovery action (`recover.*` namespace):
    /// `code` is one of [`event::recover_code`].
    #[inline]
    pub fn recover(&mut self, ts: Timestamp, code: u64, detail: u64, id: u64) {
        self.push(ts, EventKind::Recover, code, detail, id);
    }

    /// Records a serving request arriving at the ingress; `source` is
    /// one of [`event::arrival_source`].
    #[inline]
    pub fn req_arrive(&mut self, ts: Timestamp, request: u64, source: u64) {
        self.push(ts, EventKind::ReqArrive, request, source, 0);
    }

    /// Records a serving request passing admission; `batch` is the
    /// number of requests injected in the same micro-batch tick.
    #[inline]
    pub fn req_admit(&mut self, ts: Timestamp, request: u64, batch: u64) {
        self.push(ts, EventKind::ReqAdmit, request, batch, 0);
    }

    /// Records a serving request shed at admission; `reason` is one of
    /// [`event::shed_reason`].
    #[inline]
    pub fn req_shed(&mut self, ts: Timestamp, request: u64, reason: u64) {
        self.push(ts, EventKind::ReqShed, request, reason, 0);
    }

    /// Records a serving request completing (its outstanding-invocation
    /// refcount reached zero); `invocations` is the request's executed
    /// invocation count.
    #[inline]
    pub fn req_complete(&mut self, ts: Timestamp, request: u64, invocations: u64) {
        self.push(ts, EventKind::ReqComplete, request, invocations, 0);
    }

    /// Records one task invocation's exit and charged body cycles — the
    /// live-estimation sample stream (`adapt.*` namespace). `task` and
    /// `exit` pack into one word via [`event::pack_task_exit`].
    #[inline]
    pub fn task_exit(&mut self, ts: Timestamp, task: u64, exit: u64, cycles: u64, inv: u64) {
        self.push(
            ts,
            EventKind::TaskExit,
            event::pack_task_exit(task, exit),
            cycles,
            inv,
        );
    }

    /// Records the objects one invocation allocated at one site
    /// (`adapt.*` namespace); paired with the invocation's
    /// [`WorkerSink::task_exit`] by the packed `(task, exit)` word.
    #[inline]
    pub fn task_alloc(&mut self, ts: Timestamp, task: u64, exit: u64, site: u64, count: u64) {
        self.push(
            ts,
            EventKind::TaskAlloc,
            event::pack_task_exit(task, exit),
            site,
            count,
        );
    }

    /// Records a hot-relayout drain at a migrated instance's old host
    /// (`relayout.*` namespace): `epoch` is the layout epoch that took
    /// effect, `instance` the migrated instance, `drained` the buffered
    /// objects re-sent to the new host.
    #[inline]
    pub fn relayout(&mut self, ts: Timestamp, epoch: u64, instance: u64, drained: u64) {
        self.push(ts, EventKind::Relayout, epoch, instance, drained);
    }

    /// Submits the ring back to the session explicitly (Drop does the
    /// same; this form makes the handoff visible at call sites).
    pub fn submit(mut self) {
        self.submit_ring();
    }

    fn submit_ring(&mut self) {
        if let (Some(inner), Some(ring)) = (self.inner.take(), self.ring.take()) {
            // `if let Ok` rather than unwrap: submitting from a worker
            // unwinding after a panic must not abort via double panic.
            if let Ok(mut rings) = inner.rings.lock() {
                rings.push(ring);
            }
        }
    }
}

impl Drop for WorkerSink {
    fn drop(&mut self) {
        self.submit_ring();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_is_fully_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        let mut sink = telemetry.worker(0);
        assert!(!sink.is_enabled());
        sink.task_start(1, 0, 0, 0);
        sink.task_end(2, 0, 0, 0);
        telemetry.counter("x").add(5);
        telemetry.record_dsa(&DsaStats::default());
        drop(sink);
        let report = telemetry.report();
        assert!(report.events.is_empty());
        assert!(report.metrics.counters.is_empty());
        assert_eq!(telemetry.heap_allocations(), 0);
    }

    #[test]
    fn events_merge_ordered_across_workers() {
        let telemetry = Telemetry::with_capacity(2, 128);
        telemetry.set_time_unit(TimeUnit::Cycles);
        let mut w0 = telemetry.worker(0);
        let mut w1 = telemetry.worker(1);
        w1.task_start(5, 1, 0, 0);
        w0.task_start(2, 0, 0, 0);
        w0.task_end(4, 0, 0, 0);
        w1.task_end(9, 1, 0, 0);
        w0.submit();
        drop(w1);
        let report = telemetry.report();
        assert_eq!(report.unit, TimeUnit::Cycles);
        let ts: Vec<u64> = report.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 4, 5, 9]);
        assert_eq!(report.active_cores(), vec![0, 1]);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn sinks_record_across_threads() {
        let telemetry = Telemetry::enabled(4);
        let handles: Vec<_> = (0..4)
            .map(|core| {
                let t = telemetry.clone();
                std::thread::spawn(move || {
                    let mut sink = t.worker(core);
                    for i in 0..100 {
                        sink.task_start(i * 10, i, 0, i);
                        sink.task_end(i * 10 + 5, i, 0, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = telemetry.report();
        assert_eq!(report.events.len(), 4 * 200);
        assert_eq!(report.active_cores().len(), 4);
    }

    #[test]
    fn allocations_are_setup_only() {
        let telemetry = Telemetry::with_capacity(2, 64);
        let before_workers = telemetry.heap_allocations();
        assert_eq!(before_workers, 0);
        let mut w0 = telemetry.worker(0);
        let c = telemetry.counter("dispatches");
        let after_setup = telemetry.heap_allocations();
        assert_eq!(after_setup, 2);
        for i in 0..10_000u64 {
            w0.task_start(i, 0, 0, 0);
            w0.task_end(i, 0, 0, 0);
            c.inc();
        }
        // Recording 20k events through a 64-slot ring allocated nothing.
        assert_eq!(telemetry.heap_allocations(), after_setup);
        drop(w0);
        let report = telemetry.report();
        assert!(report.dropped > 0);
    }

    #[test]
    fn dsa_stats_land_in_metrics() {
        let telemetry = Telemetry::enabled(1);
        let stats = DsaStats {
            iterations: 7,
            simulations: 30,
            candidates_evaluated: 40,
            survivors: 22,
            cache_hits: 10,
            cache_misses: 30,
            trajectory: vec![900, 700, 650],
            best_makespan: 650,
        };
        telemetry.record_dsa(&stats);
        let m = telemetry.report().metrics;
        assert_eq!(m.counters["dsa.iterations"], 7);
        assert_eq!(m.counters["dsa.simulations"], 30);
        assert_eq!(m.counters["dsa.cache_hits"], 10);
        assert_eq!(m.counters["dsa.cache_misses"], 30);
        assert_eq!(m.gauges["dsa.best_makespan"], 650);
        assert_eq!(m.gauges["dsa.acceptance_rate_pct"], 55);
        assert_eq!(m.gauges["dsa.cache_hit_rate_pct"], 25);
        assert_eq!(
            m.series["dsa.best_makespan_trajectory"],
            vec![900, 700, 650]
        );
    }
}
