//! Telemetry events: fixed-size records cheap enough to emit on the
//! runtime's dispatch hot path.

/// A timestamp in the recording executor's time base: nanoseconds since
/// run start for the threaded executor, virtual cycles for the virtual
/// executor and the scheduling simulator (see
/// [`crate::TimeUnit`]).
pub type Timestamp = u64;

/// What happened. The meaning of an event's `a`/`b` payload words is
/// listed per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A task body started executing. `a` = task id, `b` = instance id.
    TaskStart = 0,
    /// A task body finished (exit actions + routing included).
    /// `a` = task id, `b` = instance id.
    TaskEnd = 1,
    /// All parameter locks of an invocation were acquired.
    /// `a` = number of lock classes taken, `b` = retries that preceded
    /// this acquisition.
    LockAcquired = 2,
    /// A try-lock-all attempt hit contention and the invocation was
    /// re-queued (Bamboo's transactional retry). `a` = number of lock
    /// classes requested, `b` = task id.
    LockFailed = 3,
    /// An object was sent toward another group instance.
    /// `a` = estimated payload bytes, `b` = destination core.
    ObjSend = 4,
    /// An object was received/delivered at this worker.
    /// `a` = estimated payload bytes, `b` = source core (or `u64::MAX`
    /// when unknown).
    ObjRecv = 5,
    /// A sample of this worker's incoming channel occupancy.
    /// `a` = queued messages, `b` = ready-queue length.
    QueueDepth = 6,
}

impl EventKind {
    /// A short stable name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskStart => "task_start",
            EventKind::TaskEnd => "task_end",
            EventKind::LockAcquired => "lock_acquired",
            EventKind::LockFailed => "lock_failed",
            EventKind::ObjSend => "obj_send",
            EventKind::ObjRecv => "obj_recv",
            EventKind::QueueDepth => "queue_depth",
        }
    }
}

/// One recorded event. 32 bytes, `Copy`, no heap.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// When (executor time base).
    pub ts: Timestamp,
    /// What.
    pub kind: EventKind,
    /// The worker/core that recorded it.
    pub core: u32,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_small_and_copy() {
        assert!(std::mem::size_of::<Event>() <= 32);
        let e = Event { ts: 1, kind: EventKind::TaskStart, core: 0, a: 2, b: 3 };
        let f = e; // Copy
        assert_eq!(e.ts, f.ts);
    }

    #[test]
    fn kinds_have_distinct_names() {
        let kinds = [
            EventKind::TaskStart,
            EventKind::TaskEnd,
            EventKind::LockAcquired,
            EventKind::LockFailed,
            EventKind::ObjSend,
            EventKind::ObjRecv,
            EventKind::QueueDepth,
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
