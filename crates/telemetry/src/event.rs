//! Telemetry events: fixed-size records cheap enough to emit on the
//! runtime's dispatch hot path.

/// A timestamp in the recording executor's time base: nanoseconds since
/// run start for the threaded executor, virtual cycles for the virtual
/// executor and the scheduling simulator (see
/// [`crate::TimeUnit`]).
pub type Timestamp = u64;

/// Sentinel for an unknown/external payload word (e.g. the producer of
/// the injected startup object, or a message id the recorder did not
/// know).
pub const NO_ID: u64 = u64::MAX;

/// What happened. The meaning of an event's `a`/`b`/`c` payload words
/// is listed per variant. Recorders that have no meaningful value for a
/// word write [`NO_ID`] (identifiers) or 0 (quantities).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A task body started executing. `a` = task id, `b` = instance id,
    /// `c` = invocation id (see [`EventKind::InvQueued`]).
    TaskStart = 0,
    /// A task body finished (exit actions + routing included).
    /// `a` = task id, `b` = instance id, `c` = invocation id.
    TaskEnd = 1,
    /// All parameter locks of an invocation were acquired.
    /// `a` = number of lock classes taken, `b` = retries that preceded
    /// this acquisition, `c` = invocation id.
    LockAcquired = 2,
    /// A try-lock-all attempt hit contention and the invocation was
    /// re-queued (Bamboo's transactional retry). `a` = number of lock
    /// classes requested, `b` = task id, `c` = invocation id.
    LockFailed = 3,
    /// An object was sent toward another group instance.
    /// `a` = estimated payload bytes, `b` = destination core,
    /// `c` = message id (matches the delivery's [`EventKind::ObjRecv`]).
    ObjSend = 4,
    /// An object was received/delivered at this worker.
    /// `a` = estimated payload bytes, `b` = source core (or [`NO_ID`]
    /// when unknown), `c` = message id.
    ObjRecv = 5,
    /// A sample of this worker's incoming channel occupancy.
    /// `a` = queued messages, `b` = ready-queue length, `c` = 0.
    QueueDepth = 6,
    /// An invocation was formed and entered a run queue (the queue-enter
    /// timestamp of the matching [`EventKind::TaskStart`]). `a` =
    /// invocation id (unique within the run), `b` = instance id in the
    /// low 32 bits and the serving request id that formed the
    /// invocation in the high 32 (see [`pack_inv_request`]; the request
    /// word is 0 for batch runs and truncates ids past 2^32 requests),
    /// `c` = task id.
    InvQueued = 7,
    /// One causal edge of a formed invocation: the invocation consumed
    /// an object released/created by an upstream invocation. `a` =
    /// consumer invocation id, `b` = producer invocation id ([`NO_ID`]
    /// for the injected startup object), `c` = id of the message that
    /// delivered the object.
    InvLink = 8,
    /// A queued invocation was taken by a core other than the one that
    /// formed it. `a` = invocation id, `b` = victim core (whose run
    /// queue it was stolen from), `c` = 0.
    Steal = 9,
    /// An injected fault fired (`fault.*` namespace). `a` = fault code
    /// (see [`fault_code`]), `b` = code-specific detail (drop attempts,
    /// stall/slowdown nanoseconds, or the dead core), `c` = the message
    /// or invocation id the fault hit ([`NO_ID`] for core-scoped
    /// faults).
    Fault = 10,
    /// A recovery action completed (`recover.*` namespace). `a` =
    /// recovery code (see [`recover_code`]), `b` = code-specific detail
    /// (redelivery attempts, the failover core, or objects drained),
    /// `c` = the message id involved ([`NO_ID`] for core-scoped
    /// recovery).
    Recover = 11,
    /// A serving request arrived at the ingress (`serving.*`
    /// namespace). `a` = request id, `b` = arrival-source tag (see
    /// [`arrival_source`]), `c` = 0.
    ReqArrive = 12,
    /// A serving request passed admission and its root object was
    /// injected. `a` = request id, `b` = number of requests injected in
    /// the same micro-batch tick, `c` = 0.
    ReqAdmit = 13,
    /// A serving request was shed at admission. `a` = request id, `b` =
    /// shed reason (see [`shed_reason`]), `c` = 0.
    ReqShed = 14,
    /// A serving request completed: its outstanding-invocation refcount
    /// in the request ledger reached zero. `a` = request id, `b` =
    /// invocations the request executed, `c` = 0. Latency is the span
    /// from the request's [`EventKind::ReqAdmit`] timestamp to this
    /// event's timestamp.
    ReqComplete = 15,
    /// A live-estimation sample (`adapt.*` namespace): one task
    /// invocation's exit and *charged* body cycles — the deterministic
    /// cost-model cycles, not wall time, so estimated profiles are
    /// reproducible under stepped pacing. `a` = task id in the low 32
    /// bits, exit id in the high 32 (see [`pack_task_exit`]), `b` =
    /// charged cycles, `c` = invocation id.
    TaskExit = 16,
    /// Objects one invocation allocated at one site (`adapt.*`
    /// namespace). `a` = task id | exit id << 32 (see
    /// [`pack_task_exit`]), `b` = allocation site id, `c` = objects
    /// allocated.
    TaskAlloc = 17,
    /// A hot relayout drained buffered objects of a migrated instance
    /// at its old host (`relayout.*` namespace). `a` = the layout epoch
    /// that took effect, `b` = the migrated instance id, `c` = buffered
    /// objects re-sent to the new host.
    Relayout = 18,
}

/// Packs a task id and exit id into the `a` word of
/// [`EventKind::TaskExit`] / [`EventKind::TaskAlloc`] events.
pub const fn pack_task_exit(task: u64, exit: u64) -> u64 {
    (task & 0xffff_ffff) | (exit << 32)
}

/// Splits an `a` word packed by [`pack_task_exit`] back into
/// `(task, exit)`.
pub const fn unpack_task_exit(a: u64) -> (u64, u64) {
    (a & 0xffff_ffff, a >> 32)
}

/// Packs an instance id and the serving request id that formed the
/// invocation into the `b` word of [`EventKind::InvQueued`] events.
/// Request ids are truncated to 32 bits (they are minted sequentially
/// from 1, so truncation only matters past 2^32 requests in one
/// resident run); batch runs carry request 0.
pub const fn pack_inv_request(instance: u64, request: u64) -> u64 {
    (instance & 0xffff_ffff) | ((request & 0xffff_ffff) << 32)
}

/// Splits a `b` word packed by [`pack_inv_request`] back into
/// `(instance, request)`.
pub const fn unpack_inv_request(b: u64) -> (u64, u64) {
    (b & 0xffff_ffff, b >> 32)
}

/// Codes carried in the `a` word of [`EventKind::Fault`] events.
pub mod fault_code {
    /// A core was killed. `b` = the dead core.
    pub const CORE_KILL: u64 = 1;
    /// A core stalled. `b` = stall nanoseconds.
    pub const CORE_STALL: u64 = 2;
    /// A message's transmission(s) dropped. `b` = consecutive attempts
    /// dropped, `c` = message id.
    pub const MSG_DROP: u64 = 3;
    /// A message was delivered late. `b` = delay nanoseconds, `c` =
    /// message id.
    pub const MSG_DELAY: u64 = 4;
    /// An invocation's lock acquisition was slowed. `b` = slowdown
    /// nanoseconds, `c` = invocation id.
    pub const LOCK_SLOW: u64 = 5;
}

/// Source tags carried in the `b` word of [`EventKind::ReqArrive`]
/// events: which arrival process produced the request.
pub mod arrival_source {
    /// Seeded Poisson process.
    pub const POISSON: u64 = 1;
    /// Bursty Markov-modulated (MMPP) process.
    pub const BURSTY: u64 = 2;
    /// Diurnal trace replay.
    pub const TRACE: u64 = 3;
    /// Channel ingress (e.g. a socket adapter submitting requests).
    pub const CHANNEL: u64 = 4;
}

/// Shed reasons carried in the `b` word of [`EventKind::ReqShed`]
/// events.
pub mod shed_reason {
    /// Token-bucket rate limit exhausted.
    pub const RATE_LIMIT: u64 = 1;
    /// Ingress queue depth over the configured bound.
    pub const QUEUE_DEPTH: u64 = 2;
}

/// Codes carried in the `a` word of [`EventKind::Recover`] events.
pub mod recover_code {
    /// A dropped message was redelivered after backoff. `b` = attempts,
    /// `c` = message id.
    pub const REDELIVER: u64 = 1;
    /// A send destined to a dead core was re-routed to a live
    /// same-group host. `b` = the failover core, `c` = message id.
    pub const REROUTE: u64 = 2;
    /// A dying core handed its parameter-set objects and late
    /// deliveries to live hosts. `b` = objects re-sent.
    pub const FAILOVER_DRAIN: u64 = 3;
}

impl EventKind {
    /// A short stable name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskStart => "task_start",
            EventKind::TaskEnd => "task_end",
            EventKind::LockAcquired => "lock_acquired",
            EventKind::LockFailed => "lock_failed",
            EventKind::ObjSend => "obj_send",
            EventKind::ObjRecv => "obj_recv",
            EventKind::QueueDepth => "queue_depth",
            EventKind::InvQueued => "inv_queued",
            EventKind::InvLink => "inv_link",
            EventKind::Steal => "steal",
            EventKind::Fault => "fault",
            EventKind::Recover => "recover",
            EventKind::ReqArrive => "req_arrive",
            EventKind::ReqAdmit => "req_admit",
            EventKind::ReqShed => "req_shed",
            EventKind::ReqComplete => "req_complete",
            EventKind::TaskExit => "task_exit",
            EventKind::TaskAlloc => "task_alloc",
            EventKind::Relayout => "relayout",
        }
    }
}

/// One recorded event. 40 bytes, `Copy`, no heap.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// When (executor time base).
    pub ts: Timestamp,
    /// What.
    pub kind: EventKind,
    /// The worker/core that recorded it.
    pub core: u32,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
    /// Third payload word (see [`EventKind`]) — causal linkage:
    /// invocation and message ids that let the analysis layer
    /// reconstruct the observed invocation graph.
    pub c: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_small_and_copy() {
        assert!(std::mem::size_of::<Event>() <= 40);
        let e = Event {
            ts: 1,
            kind: EventKind::TaskStart,
            core: 0,
            a: 2,
            b: 3,
            c: 4,
        };
        let f = e; // Copy
        assert_eq!(e.ts, f.ts);
        assert_eq!(e.c, f.c);
    }

    #[test]
    fn kinds_have_distinct_names() {
        let kinds = [
            EventKind::TaskStart,
            EventKind::TaskEnd,
            EventKind::LockAcquired,
            EventKind::LockFailed,
            EventKind::ObjSend,
            EventKind::ObjRecv,
            EventKind::QueueDepth,
            EventKind::InvQueued,
            EventKind::InvLink,
            EventKind::Steal,
            EventKind::Fault,
            EventKind::Recover,
            EventKind::ReqArrive,
            EventKind::ReqAdmit,
            EventKind::ReqShed,
            EventKind::ReqComplete,
            EventKind::TaskExit,
            EventKind::TaskAlloc,
            EventKind::Relayout,
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn task_exit_packing_round_trips() {
        let a = pack_task_exit(7, 3);
        assert_eq!(unpack_task_exit(a), (7, 3));
        assert_eq!(
            unpack_task_exit(pack_task_exit(0xffff_ffff, 0)),
            (0xffff_ffff, 0)
        );
    }

    #[test]
    fn inv_request_packing_round_trips() {
        assert_eq!(unpack_inv_request(pack_inv_request(9, 41)), (9, 41));
        assert_eq!(unpack_inv_request(pack_inv_request(9, 0)), (9, 0));
        // Truncation past 32 bits keeps the low word intact.
        let (inst, req) = unpack_inv_request(pack_inv_request(5, 0x1_0000_0002));
        assert_eq!((inst, req), (5, 2));
    }
}
