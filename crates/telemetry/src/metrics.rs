//! A metrics registry cheap enough to leave compiled in.
//!
//! Three metric shapes:
//!
//! * [`Counter`] — monotonically increasing `u64` (atomic add);
//! * [`Gauge`] — last-write-wins `i64` (atomic store);
//! * [`Histogram`] — log-2 bucketed value distribution (one atomic add
//!   per recorded value, no allocation).
//!
//! Plus [`Series`], an append-only numeric sequence for low-volume
//! trajectories (e.g. the DSA best-cost curve) where order matters.
//!
//! Handles obtained from a *disabled* [`crate::Telemetry`] carry `None`
//! inside and compile down to a branch on a niche-optimized option —
//! recording through them is a no-op with no atomic traffic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying
/// cell. A default-constructed counter is a detached no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    /// A counter that records nothing.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins signed gauge. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub(crate) fn live(cell: Arc<AtomicI64>) -> Self {
        Gauge(Some(cell))
    }

    /// A gauge that records nothing.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn adjust(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op gauge).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Number of log-2 buckets: values 0, 1, 2-3, 4-7, ... up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    pub(crate) fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Bucket index for value `v`: bucket 0 holds 0, bucket `i` (i ≥ 1)
/// holds values in `[2^(i-1), 2^i)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `idx` (see [`bucket_index`]).
pub fn bucket_floor(idx: u32) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64 << (idx - 1)
    }
}

/// A log-2 bucketed histogram handle. Cloning shares the underlying
/// cell.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    pub(crate) fn live(cell: Arc<HistogramCell>) -> Self {
        Histogram(Some(cell))
    }

    /// A histogram that records nothing.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.record(v);
        }
    }
}

/// An append-only numeric series (ordered, low volume — each append may
/// allocate, so keep these off hot paths).
#[derive(Clone, Debug, Default)]
pub struct Series(Option<Arc<Mutex<Vec<u64>>>>);

impl Series {
    pub(crate) fn live(cell: Arc<Mutex<Vec<u64>>>) -> Self {
        Series(Some(cell))
    }

    /// A series that records nothing.
    pub fn noop() -> Self {
        Series(None)
    }

    /// Appends one point.
    pub fn push(&self, v: u64) {
        if let Some(cell) = &self.0 {
            if let Ok(mut vec) = cell.lock() {
                vec.push(v);
            }
        }
    }

    /// Appends every point of `vs`.
    pub fn extend(&self, vs: &[u64]) {
        if let Some(cell) = &self.0 {
            if let Ok(mut vec) = cell.lock() {
                vec.extend_from_slice(vs);
            }
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty `(bucket_index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the floor of the bucket
    /// containing the `q`-th ranked observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        bucket_floor(self.buckets.last().map_or(0, |&(i, _)| i))
    }
}

/// Point-in-time copy of every metric in a registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Series contents by name.
    pub series: BTreeMap<String, Vec<u64>>,
}

/// Named metric storage. Registration (name lookup/insert) takes a lock
/// and may allocate; do it once at setup and hold on to the returned
/// handle — recording through a handle is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    series: Mutex<BTreeMap<String, Arc<Mutex<Vec<u64>>>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics registry");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter::live(cell)
    }

    /// Returns the gauge named `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics registry");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone();
        Gauge::live(cell)
    }

    /// Returns the histogram named `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("metrics registry");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::new()))
            .clone();
        Histogram::live(cell)
    }

    /// Returns the series named `name`, creating it if needed.
    pub fn series(&self, name: &str) -> Series {
        let mut map = self.series.lock().expect("metrics registry");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Vec::new())))
            .clone();
        Series::live(cell)
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let series = self
            .series
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().expect("series").clone()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dispatch");
        let b = reg.counter("dispatch");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("dispatch").get(), 5);
        assert_eq!(reg.snapshot().counters["dispatch"], 5);
    }

    #[test]
    fn noop_handles_record_nothing() {
        let c = Counter::noop();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(7);
        assert_eq!(g.get(), 0);
        Histogram::noop().record(3);
        Series::noop().push(3);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(3), 4);
    }

    #[test]
    fn histogram_quantiles_are_bucket_floors() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [1u64, 2, 2, 3, 900] {
            h.record(v);
        }
        let snap = &reg.snapshot().histograms["lat"];
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 908);
        assert_eq!(snap.quantile(0.5), 2); // 3rd ranked value is 2 → bucket [2,4)
        assert_eq!(snap.quantile(1.0), 512); // 900 lands in [512,1024)
        assert!((snap.mean() - 181.6).abs() < 1e-9);
    }

    #[test]
    fn gauges_and_series() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(3);
        g.adjust(-1);
        assert_eq!(g.get(), 2);
        let s = reg.series("traj");
        s.push(10);
        s.extend(&[9, 8]);
        assert_eq!(reg.snapshot().series["traj"], vec![10, 9, 8]);
    }
}
