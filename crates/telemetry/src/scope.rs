//! bamboo-scope: the live observability plane for resident deployments.
//!
//! Event rings are drained *after* a run ([`crate::Telemetry::report`]
//! is destructive), so a resident serving deployment would be a black
//! box while it is live. This module closes that gap: the serving
//! driver — which already sees every request lifecycle transition
//! (arrive, admit, shed, complete) — feeds a shared [`ScopeRecorder`],
//! and any number of [`ScopeHandle`] clones snapshot it on demand
//! while traffic is still flowing.
//!
//! Three concerns, all bounded-memory and O(1) per request:
//!
//! * **Sliding-window live metrics** — tumbling windows of
//!   [`ScopeConfig::window`] width, each carrying counters and a
//!   [`LatencyHistogram`]; snapshots expose per-window p50/p99/p999,
//!   throughput, shed rate, and SLO burn-rate (the fraction of the
//!   error budget the window consumed, so `> 1.0` means the SLO is
//!   burning faster than sustainable).
//! * **Tail-based sampling** — per window the recorder keeps the
//!   slowest-K completed request ids, every shed request id (capped),
//!   and a seeded reservoir of the rest. Full span trees (see
//!   [`crate::analyze::scope`]) are materialized *only* for sampled
//!   ids, so tracing overhead stays bounded at high rps.
//! * **Deterministic exports** — [`ScopeSnapshot::to_json`] and
//!   [`ScopeSnapshot::to_prometheus`] render from integers and seeded
//!   decisions only; under stepped pacing (virtual clock) snapshots
//!   are byte-identical across thread counts.
//!
//! Timestamps are microseconds on whatever clock the feeder chooses:
//! the serving driver uses its virtual arrival clock under
//! `Pacing::Stepped` (deterministic) and wall time since start under
//! `Pacing::Wall`. Latencies are arrival→completion, so they include
//! micro-batching delay (unlike the admit→complete latencies in
//! `ServingReport`).

use crate::analyze::serving::LatencyHistogram;
use crate::json::write_f64;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of the live scope plane.
#[derive(Clone, Debug)]
pub struct ScopeConfig {
    /// Tumbling window width.
    pub window: Duration,
    /// Closed windows retained for snapshots (older ones roll off).
    pub windows_kept: usize,
    /// Slowest completed requests sampled per window.
    pub slow_k: usize,
    /// Reservoir size for non-tail completed requests per window.
    pub reservoir: usize,
    /// Shed/errored request ids sampled per window (the rest are
    /// counted but not sampled).
    pub shed_cap: usize,
    /// Seed for the reservoir's splitmix64 stream (decisions are a
    /// pure function of seed and arrival order).
    pub sample_seed: u64,
    /// Latency SLO threshold in microseconds; 0 disables burn-rate
    /// tracking.
    pub slo_us: u64,
    /// SLO attainment target (e.g. 0.999 = p999 under `slo_us`); the
    /// error budget is `1 - slo_target`.
    pub slo_target: f64,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            window: Duration::from_secs(1),
            windows_kept: 8,
            slow_k: 4,
            reservoir: 4,
            shed_cap: 16,
            sample_seed: 0x0005_c09e_5eed,
            slo_us: 0,
            slo_target: 0.999,
        }
    }
}

impl ScopeConfig {
    /// Sets the tumbling window width.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Sets the latency SLO: `slo_us` threshold and attainment target
    /// (error budget = `1 - target`).
    pub fn with_slo(mut self, slo_us: u64, target: f64) -> Self {
        self.slo_us = slo_us;
        self.slo_target = target.clamp(0.0, 1.0 - 1e-9);
        self
    }

    /// Sets the per-window sampling policy: slowest-`slow_k` +
    /// `reservoir`-sized seeded reservoir of the rest.
    pub fn with_sampling(mut self, slow_k: usize, reservoir: usize) -> Self {
        self.slow_k = slow_k;
        self.reservoir = reservoir;
        self
    }

    /// Sets how many closed windows snapshots retain.
    pub fn with_windows_kept(mut self, kept: usize) -> Self {
        self.windows_kept = kept.max(1);
        self
    }

    fn window_us(&self) -> u64 {
        (self.window.as_micros() as u64).max(1)
    }
}

/// Why a request was sampled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleReason {
    /// Among the slowest-K completions of its window.
    Slow,
    /// Shed at admission (always interesting).
    Shed,
    /// Picked by the seeded reservoir.
    Reservoir,
}

impl SampleReason {
    /// Short stable label (exports, check names).
    pub fn label(self) -> &'static str {
        match self {
            SampleReason::Slow => "slow",
            SampleReason::Shed => "shed",
            SampleReason::Reservoir => "reservoir",
        }
    }
}

/// One sampled request: the ids span trees get materialized for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampledRequest {
    /// Request id.
    pub request: u64,
    /// Arrival→completion latency in µs (0 for shed requests).
    pub latency_us: u64,
    /// Why it was kept.
    pub reason: SampleReason,
    /// Index of the window it completed (or was shed) in.
    pub window: u64,
}

#[derive(Clone, Debug, Default)]
struct Window {
    index: u64,
    start_us: u64,
    arrivals: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    invocations: u64,
    slo_violations: u64,
    latency: LatencyHistogram,
    /// The K largest (latency, request) pairs, ascending by latency.
    slow: Vec<(u64, u64)>,
    /// Seeded reservoir over completions (latency, request).
    reservoir: Vec<(u64, u64)>,
    reservoir_seen: u64,
    shed_ids: Vec<u64>,
    shed_dropped: u64,
}

struct ScopeState {
    config: ScopeConfig,
    window_us: u64,
    current: Window,
    closed: VecDeque<Window>,
    /// In-flight requests: (request, arrive_us), sorted by request id.
    pending: Vec<(u64, u64)>,
    sampled: Vec<SampledRequest>,
    totals: Window,
    rng: u64,
}

/// Appends one window's sample picks (slowest-K descending, then shed,
/// then reservoir minus slow duplicates) to `out`.
fn finalize_window_samples(w: &Window, out: &mut Vec<SampledRequest>) {
    for &(latency_us, request) in w.slow.iter().rev() {
        out.push(SampledRequest {
            request,
            latency_us,
            reason: SampleReason::Slow,
            window: w.index,
        });
    }
    for &request in &w.shed_ids {
        out.push(SampledRequest {
            request,
            latency_us: 0,
            reason: SampleReason::Shed,
            window: w.index,
        });
    }
    for &(latency_us, request) in &w.reservoir {
        if w.slow.iter().any(|&(_, r)| r == request) {
            continue;
        }
        out.push(SampledRequest {
            request,
            latency_us,
            reason: SampleReason::Reservoir,
            window: w.index,
        });
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ScopeState {
    fn roll(&mut self, now_us: u64) {
        if now_us < self.current.start_us + self.window_us {
            return;
        }
        let closed = std::mem::take(&mut self.current);
        self.finalize_samples(&closed);
        self.closed.push_back(closed);
        while self.closed.len() > self.config.windows_kept {
            self.closed.pop_front();
        }
        // Jump straight to the window containing `now` — idle gaps do
        // not materialize empty windows.
        let start = now_us / self.window_us * self.window_us;
        self.current = Window {
            index: start / self.window_us,
            start_us: start,
            ..Window::default()
        };
        // Sampled spans of windows that rolled off are dropped too.
        let oldest = self.closed.front().map_or(self.current.index, |w| w.index);
        self.sampled.retain(|s| s.window >= oldest);
    }

    /// Turns a window's provisional sample sets into final
    /// [`SampledRequest`] rows (slowest-K win over the reservoir).
    fn finalize_samples(&mut self, w: &Window) {
        finalize_window_samples(w, &mut self.sampled);
    }

    fn arrive(&mut self, now_us: u64, request: u64) {
        self.roll(now_us);
        self.current.arrivals += 1;
        self.totals.arrivals += 1;
        if let Err(pos) = self.pending.binary_search_by_key(&request, |&(r, _)| r) {
            self.pending.insert(pos, (request, now_us));
        }
    }

    fn admit(&mut self, now_us: u64, request: u64) {
        self.roll(now_us);
        let _ = request;
        self.current.admitted += 1;
        self.totals.admitted += 1;
    }

    fn shed(&mut self, now_us: u64, request: u64) {
        self.roll(now_us);
        self.current.shed += 1;
        self.totals.shed += 1;
        if let Ok(pos) = self.pending.binary_search_by_key(&request, |&(r, _)| r) {
            self.pending.remove(pos);
        }
        if self.current.shed_ids.len() < self.config.shed_cap {
            self.current.shed_ids.push(request);
        } else {
            self.current.shed_dropped += 1;
        }
    }

    fn complete(&mut self, now_us: u64, request: u64, invocations: u64) {
        self.roll(now_us);
        let arrive_us = match self.pending.binary_search_by_key(&request, |&(r, _)| r) {
            Ok(pos) => self.pending.remove(pos).1,
            Err(_) => now_us, // lifecycle started before scope attached
        };
        let latency_us = now_us.saturating_sub(arrive_us);
        let w = &mut self.current;
        w.completed += 1;
        w.invocations += invocations;
        w.latency.record(latency_us);
        self.totals.completed += 1;
        self.totals.invocations += invocations;
        self.totals.latency.record(latency_us);
        if self.config.slo_us > 0 && latency_us > self.config.slo_us {
            w.slo_violations += 1;
            self.totals.slo_violations += 1;
        }
        // Slowest-K: keep the K largest, ascending.
        if self.config.slow_k > 0 {
            let pos = w
                .slow
                .partition_point(|&(l, r)| (l, r) < (latency_us, request));
            if w.slow.len() < self.config.slow_k {
                w.slow.insert(pos, (latency_us, request));
            } else if pos > 0 {
                w.slow.insert(pos, (latency_us, request));
                w.slow.remove(0);
            }
        }
        // Seeded reservoir over all completions of the window.
        if self.config.reservoir > 0 {
            w.reservoir_seen += 1;
            if w.reservoir.len() < self.config.reservoir {
                w.reservoir.push((latency_us, request));
            } else {
                let j = splitmix64(&mut self.rng) % w.reservoir_seen;
                if (j as usize) < w.reservoir.len() {
                    w.reservoir[j as usize] = (latency_us, request);
                }
            }
        }
    }

    fn snapshot(&self) -> ScopeSnapshot {
        let mut windows: Vec<WindowSnapshot> = self
            .closed
            .iter()
            .map(|w| WindowSnapshot::of(w, &self.config, self.window_us))
            .collect();
        // The live (partial) window comes last; its rate is computed
        // over the full window width, so it under-reports until close.
        if self.current.arrivals + self.current.shed + self.current.completed > 0 {
            windows.push(WindowSnapshot::of(
                &self.current,
                &self.config,
                self.window_us,
            ));
        }
        let mut sampled = self.sampled.clone();
        // The live window's provisional picks are included so a
        // mid-run snapshot always has something to trace.
        finalize_window_samples(&self.current, &mut sampled);
        ScopeSnapshot {
            window_us: self.window_us,
            slo_us: self.config.slo_us,
            slo_target: self.config.slo_target,
            in_flight: self.pending.len() as u64,
            totals: WindowSnapshot::of(&self.totals, &self.config, self.window_us),
            windows,
            sampled,
        }
    }
}

/// Live metrics of one window (or of the run totals).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSnapshot {
    /// Window index (`start_us / window_us`; 0 for totals).
    pub index: u64,
    /// Window start on the feeder's clock, µs.
    pub start_us: u64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed.
    pub shed: u64,
    /// Requests completed.
    pub completed: u64,
    /// Invocations those completions executed.
    pub invocations: u64,
    /// Completions over the SLO threshold.
    pub slo_violations: u64,
    /// Median arrival→completion latency, µs.
    pub p50_us: u64,
    /// p99 latency, µs.
    pub p99_us: u64,
    /// p999 latency, µs.
    pub p999_us: u64,
    /// Max latency, µs.
    pub max_us: u64,
    /// Completions per second over the window width.
    pub throughput_rps: f64,
    /// Shed fraction of arrivals (0 when no arrivals).
    pub shed_rate: f64,
    /// SLO burn-rate: violation fraction over the error budget.
    /// 1.0 = consuming the budget exactly; 0 when the SLO is disabled
    /// or nothing completed.
    pub burn_rate: f64,
}

impl WindowSnapshot {
    fn of(w: &Window, config: &ScopeConfig, window_us: u64) -> Self {
        let shed_rate = if w.arrivals == 0 {
            0.0
        } else {
            w.shed as f64 / w.arrivals as f64
        };
        let budget = 1.0 - config.slo_target;
        let burn_rate = if config.slo_us == 0 || w.completed == 0 || budget <= 0.0 {
            0.0
        } else {
            (w.slo_violations as f64 / w.completed as f64) / budget
        };
        WindowSnapshot {
            index: w.index,
            start_us: w.start_us,
            arrivals: w.arrivals,
            admitted: w.admitted,
            shed: w.shed,
            completed: w.completed,
            invocations: w.invocations,
            slo_violations: w.slo_violations,
            p50_us: w.latency.p50(),
            p99_us: w.latency.p99(),
            p999_us: w.latency.p999(),
            max_us: w.latency.max(),
            throughput_rps: w.completed as f64 * 1_000_000.0 / window_us as f64,
            shed_rate,
            burn_rate,
        }
    }

    fn json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"index\":{},\"start_us\":{},\"arrivals\":{},\"admitted\":{},\"shed\":{},\"completed\":{},\"invocations\":{},\"slo_violations\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}",
            self.index,
            self.start_us,
            self.arrivals,
            self.admitted,
            self.shed,
            self.completed,
            self.invocations,
            self.slo_violations,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
        );
        out.push_str(",\"throughput_rps\":");
        write_f64(out, self.throughput_rps);
        out.push_str(",\"shed_rate\":");
        write_f64(out, self.shed_rate);
        out.push_str(",\"burn_rate\":");
        write_f64(out, self.burn_rate);
        out.push('}');
    }
}

/// A point-in-time view of the scope plane: run totals, the retained
/// windows (oldest first, live partial window last), and the sampled
/// request ids span trees should be materialized for.
#[derive(Clone, Debug, PartialEq)]
pub struct ScopeSnapshot {
    /// Window width, µs.
    pub window_us: u64,
    /// SLO threshold, µs (0 = disabled).
    pub slo_us: u64,
    /// SLO attainment target.
    pub slo_target: f64,
    /// Requests arrived but neither shed nor completed yet.
    pub in_flight: u64,
    /// Whole-run aggregates (the `index`/`start_us`/rate fields are
    /// computed over one window width and only meaningful per window).
    pub totals: WindowSnapshot,
    /// Retained windows, oldest first; the live partial window last.
    pub windows: Vec<WindowSnapshot>,
    /// Sampled requests across the retained windows.
    pub sampled: Vec<SampledRequest>,
}

impl ScopeSnapshot {
    /// Serializes the snapshot as JSON. Rendering is deterministic:
    /// identical snapshots produce identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"scope\":{");
        let _ = write!(
            out,
            "\"window_us\":{},\"slo_us\":{},\"slo_target\":",
            self.window_us, self.slo_us
        );
        write_f64(&mut out, self.slo_target);
        let _ = write!(out, ",\"in_flight\":{},\"totals\":", self.in_flight);
        self.totals.json(&mut out);
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            w.json(&mut out);
        }
        out.push_str("],\"sampled\":[");
        for (i, s) in self.sampled.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"request\":{},\"latency_us\":{},\"reason\":\"{}\",\"window\":{}}}",
                s.request,
                s.latency_us,
                s.reason.label(),
                s.window
            );
        }
        out.push_str("]}}");
        out
    }

    /// Renders the snapshot as Prometheus text exposition format
    /// (`scope.*` namespace → `bamboo_scope_*` metric family).
    /// Windowed gauges report the most recent *closed* window when one
    /// exists, else the live partial window.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let t = &self.totals;
        out.push_str("# TYPE bamboo_scope_requests_total counter\n");
        for (phase, n) in [
            ("arrived", t.arrivals),
            ("admitted", t.admitted),
            ("shed", t.shed),
            ("completed", t.completed),
        ] {
            let _ = writeln!(out, "bamboo_scope_requests_total{{phase=\"{phase}\"}} {n}");
        }
        out.push_str("# TYPE bamboo_scope_in_flight gauge\n");
        let _ = writeln!(out, "bamboo_scope_in_flight {}", self.in_flight);
        out.push_str("# TYPE bamboo_scope_latency_us summary\n");
        for (q, v) in [("0.5", t.p50_us), ("0.99", t.p99_us), ("0.999", t.p999_us)] {
            let _ = writeln!(out, "bamboo_scope_latency_us{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "bamboo_scope_latency_us_max {}", t.max_us);
        // Per-window gauges: last closed window if any, else the live
        // partial one (the last entry is the live window only when it
        // has activity, so prefer the second-to-last when present).
        let live = self.windows.last();
        let closed = if self.windows.len() >= 2 {
            self.windows.get(self.windows.len() - 2)
        } else {
            None
        };
        if let Some(w) = closed.or(live) {
            out.push_str("# TYPE bamboo_scope_window_throughput_rps gauge\n");
            let mut line = format!(
                "bamboo_scope_window_throughput_rps{{window=\"{}\"}} ",
                w.index
            );
            write_f64(&mut line, w.throughput_rps);
            let _ = writeln!(out, "{line}");
            out.push_str("# TYPE bamboo_scope_window_shed_rate gauge\n");
            let mut line = format!("bamboo_scope_window_shed_rate{{window=\"{}\"}} ", w.index);
            write_f64(&mut line, w.shed_rate);
            let _ = writeln!(out, "{line}");
            out.push_str("# TYPE bamboo_scope_slo_burn_rate gauge\n");
            let mut line = format!("bamboo_scope_slo_burn_rate{{window=\"{}\"}} ", w.index);
            write_f64(&mut line, w.burn_rate);
            let _ = writeln!(out, "{line}");
        }
        out.push_str("# TYPE bamboo_scope_sampled_spans gauge\n");
        let _ = writeln!(out, "bamboo_scope_sampled_spans {}", self.sampled.len());
        out
    }

    /// The sampled request ids, deduplicated, ascending.
    pub fn sampled_requests(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.sampled.iter().map(|s| s.request).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// The writer side of the scope plane. The serving driver owns one and
/// calls [`ScopeRecorder::arrive`] / [`ScopeRecorder::admit`] /
/// [`ScopeRecorder::shed`] / [`ScopeRecorder::complete`] as requests
/// move through their lifecycle; every call is O(1) amortized and
/// touches only fixed-size state.
#[derive(Clone)]
pub struct ScopeRecorder {
    state: Arc<Mutex<ScopeState>>,
}

impl std::fmt::Debug for ScopeRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeRecorder").finish_non_exhaustive()
    }
}

impl ScopeRecorder {
    /// A recorder with the given configuration.
    pub fn new(config: ScopeConfig) -> Self {
        let window_us = config.window_us();
        let rng = config.sample_seed;
        ScopeRecorder {
            state: Arc::new(Mutex::new(ScopeState {
                config,
                window_us,
                current: Window::default(),
                closed: VecDeque::new(),
                pending: Vec::new(),
                sampled: Vec::new(),
                totals: Window::default(),
                rng,
            })),
        }
    }

    /// A reader handle; any number of clones can snapshot concurrently
    /// with recording.
    pub fn handle(&self) -> ScopeHandle {
        ScopeHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Records a request arriving at the ingress.
    pub fn arrive(&self, now_us: u64, request: u64) {
        if let Ok(mut s) = self.state.lock() {
            s.arrive(now_us, request);
        }
    }

    /// Records a request passing admission.
    pub fn admit(&self, now_us: u64, request: u64) {
        if let Ok(mut s) = self.state.lock() {
            s.admit(now_us, request);
        }
    }

    /// Records a request shed at admission.
    pub fn shed(&self, now_us: u64, request: u64) {
        if let Ok(mut s) = self.state.lock() {
            s.shed(now_us, request);
        }
    }

    /// Records a request completing with `invocations` executed.
    pub fn complete(&self, now_us: u64, request: u64, invocations: u64) {
        if let Ok(mut s) = self.state.lock() {
            s.complete(now_us, request, invocations);
        }
    }

    /// Snapshots the plane (same view a [`ScopeHandle`] gets).
    pub fn snapshot(&self) -> ScopeSnapshot {
        self.handle().snapshot()
    }
}

/// The reader side: snapshot live metrics and sampling decisions on
/// demand, from any thread, while the deployment keeps serving.
#[derive(Clone)]
pub struct ScopeHandle {
    state: Arc<Mutex<ScopeState>>,
}

impl std::fmt::Debug for ScopeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeHandle").finish_non_exhaustive()
    }
}

impl ScopeHandle {
    /// A point-in-time view of windows, totals, and sampled requests.
    pub fn snapshot(&self) -> ScopeSnapshot {
        match self.state.lock() {
            Ok(s) => s.snapshot(),
            Err(poisoned) => poisoned.into_inner().snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(window_ms: u64) -> ScopeRecorder {
        ScopeRecorder::new(
            ScopeConfig::default()
                .with_window(Duration::from_millis(window_ms))
                .with_sampling(2, 1)
                .with_slo(1_000, 0.99),
        )
    }

    #[test]
    fn windows_roll_and_retain() {
        let r = recorder(1); // 1000µs windows
        for i in 0..10u64 {
            let t = i * 500;
            r.arrive(t, i + 1);
            r.complete(t + 10, i + 1, 3);
        }
        let snap = r.snapshot();
        assert_eq!(snap.totals.completed, 10);
        assert_eq!(snap.totals.invocations, 30);
        assert!(snap.windows.len() >= 2);
        // Windows are ordered and disjoint.
        for pair in snap.windows.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
        let completed: u64 = snap.windows.iter().map(|w| w.completed).sum();
        assert_eq!(completed, 10);
    }

    #[test]
    fn slowest_k_and_shed_requests_are_sampled() {
        let r = recorder(10); // one 10ms window
        for i in 1..=20u64 {
            r.arrive(i * 10, i);
            // Request 7 is the slowest, 13 second-slowest.
            let latency = match i {
                7 => 5_000,
                13 => 3_000,
                _ => 100,
            };
            r.complete(i * 10 + latency, i, 1);
        }
        r.arrive(500, 99);
        r.shed(500, 99);
        let snap = r.snapshot();
        let slow: Vec<u64> = snap
            .sampled
            .iter()
            .filter(|s| s.reason == SampleReason::Slow)
            .map(|s| s.request)
            .collect();
        assert_eq!(slow, vec![7, 13], "slowest first");
        assert!(snap
            .sampled
            .iter()
            .any(|s| s.reason == SampleReason::Shed && s.request == 99));
        // SLO 1000µs at target 0.99: 2 violations / 20 completed over a
        // 0.01 budget = burn rate 10.
        assert!((snap.totals.burn_rate - 10.0).abs() < 1e-9);
        assert_eq!(snap.totals.slo_violations, 2);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let run = || {
            let r = recorder(1);
            for i in 0..50u64 {
                r.arrive(i * 100, i + 1);
                if i % 7 == 3 {
                    r.shed(i * 100, i + 1);
                } else {
                    r.complete(i * 100 + 37 * (i % 5), i + 1, i % 3 + 1);
                }
            }
            r.snapshot()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn exports_render_expected_families() {
        let r = recorder(1);
        r.arrive(0, 1);
        r.complete(200, 1, 2);
        r.arrive(1500, 2);
        r.complete(1700, 2, 2);
        let snap = r.snapshot();
        let json = snap.to_json();
        for key in [
            "\"window_us\":1000",
            "\"totals\":",
            "\"windows\":[",
            "\"sampled\":[",
            "\"burn_rate\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let prom = snap.to_prometheus();
        for family in [
            "bamboo_scope_requests_total{phase=\"completed\"} 2",
            "bamboo_scope_latency_us{quantile=\"0.99\"}",
            "bamboo_scope_slo_burn_rate",
            "bamboo_scope_sampled_spans",
        ] {
            assert!(prom.contains(family), "missing {family} in {prom}");
        }
    }

    #[test]
    fn in_flight_tracks_pending_requests() {
        let r = recorder(1);
        r.arrive(0, 1);
        r.arrive(10, 2);
        r.admit(20, 1);
        r.admit(20, 2);
        assert_eq!(r.snapshot().in_flight, 2);
        r.complete(100, 1, 1);
        assert_eq!(r.snapshot().in_flight, 1);
        r.complete(120, 2, 1);
        let snap = r.snapshot();
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.totals.admitted, 2);
    }

    #[test]
    fn old_windows_and_their_samples_roll_off() {
        let r = ScopeRecorder::new(
            ScopeConfig::default()
                .with_window(Duration::from_millis(1))
                .with_windows_kept(2)
                .with_sampling(1, 0),
        );
        for i in 0..10u64 {
            let t = i * 1_000; // one request per window
            r.arrive(t, i + 1);
            r.complete(t + 50, i + 1, 1);
        }
        let snap = r.snapshot();
        assert!(snap.windows.len() <= 3, "2 closed + live partial");
        let oldest = snap.windows[0].index;
        assert!(snap.sampled.iter().all(|s| s.window >= oldest));
        assert_eq!(snap.totals.completed, 10, "totals survive roll-off");
    }
}
