//! Human-readable per-core summary table and metrics JSON dump.

use crate::event::EventKind;
use crate::json::{write_f64, write_str};
use crate::metrics::MetricsSnapshot;
use crate::report::TelemetryReport;
use crate::TimeUnit;
use std::fmt::Write as _;

#[derive(Clone, Copy, Debug, Default)]
struct CoreRow {
    tasks: u64,
    busy: u64,
    retries: u64,
    sends: u64,
    recvs: u64,
    bytes_out: u64,
    max_queue: u64,
    steals: u64,
}

/// Renders a per-core utilization/contention/traffic table.
///
/// One row per active core: dispatched tasks, busy time, utilization
/// against the session's span, lock retries, object traffic, and the
/// deepest observed queue.
pub fn per_core_table(report: &TelemetryReport) -> String {
    let max_core = report.events.iter().map(|e| e.core).max().unwrap_or(0) as usize;
    let mut rows: Vec<CoreRow> = vec![CoreRow::default(); max_core + 1];
    let mut open: Vec<Option<u64>> = vec![None; max_core + 1];
    for e in &report.events {
        let row = &mut rows[e.core as usize];
        match e.kind {
            EventKind::TaskStart => open[e.core as usize] = Some(e.ts),
            EventKind::TaskEnd => {
                row.tasks += 1;
                if let Some(start) = open[e.core as usize].take() {
                    row.busy += e.ts.saturating_sub(start);
                }
            }
            EventKind::LockFailed => row.retries += 1,
            EventKind::ObjSend => {
                row.sends += 1;
                row.bytes_out += e.a;
            }
            EventKind::ObjRecv => row.recvs += 1,
            EventKind::QueueDepth => row.max_queue = row.max_queue.max(e.a),
            EventKind::Steal => row.steals += 1,
            EventKind::LockAcquired
            | EventKind::InvQueued
            | EventKind::InvLink
            | EventKind::Fault
            | EventKind::Recover
            | EventKind::ReqArrive
            | EventKind::ReqAdmit
            | EventKind::ReqShed
            | EventKind::ReqComplete
            | EventKind::TaskExit
            | EventKind::TaskAlloc
            | EventKind::Relayout => {}
        }
    }
    let span = match report.unit {
        TimeUnit::Nanos => report.wall_ns.max(1),
        TimeUnit::Cycles => report.last_ts().max(1),
    };
    let time_label = match report.unit {
        TimeUnit::Nanos => "ns",
        TimeUnit::Cycles => "cycles",
    };
    let mut out = format!(
        "per-core summary ({} events, {} dropped, span {} {})\n",
        report.events.len(),
        report.dropped,
        span,
        time_label
    );
    let _ = writeln!(
        out,
        "core   tasks        busy  util%  retries   sends   recvs    bytes-out  max-queue  steals"
    );
    for (core, row) in rows.iter().enumerate() {
        if report.events_on(core as u32).next().is_none() {
            continue;
        }
        let util = 100.0 * row.busy as f64 / span as f64;
        let _ = writeln!(
            out,
            "{core:>4} {:>7} {:>11} {util:>6.1} {:>8} {:>7} {:>7} {:>12} {:>10} {:>7}",
            row.tasks,
            row.busy,
            row.retries,
            row.sends,
            row.recvs,
            row.bytes_out,
            row.max_queue,
            row.steals
        );
    }
    out
}

/// Serializes a [`MetricsSnapshot`] as a JSON document, suitable for
/// dropping into `results/`.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_str(&mut out, name);
        let _ = write!(out, ": {value}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_str(&mut out, name);
        let _ = write!(out, ": {value}");
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_str(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"mean\": ",
            h.count, h.sum
        );
        write_f64(&mut out, h.mean());
        let _ = write!(
            out,
            ", \"p50\": {}, \"p99\": {}, \"buckets\": [",
            h.quantile(0.5),
            h.quantile(0.99)
        );
        for (j, (idx, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{n}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  },\n  \"series\": {");
    for (i, (name, points)) in snapshot.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_str(&mut out, name);
        out.push_str(": [");
        for (j, p) in points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{p}");
        }
        out.push(']');
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::json;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn table_aggregates_per_core() {
        let mut report = TelemetryReport::empty();
        report.unit = TimeUnit::Cycles;
        report.events = vec![
            Event {
                ts: 0,
                kind: EventKind::TaskStart,
                core: 0,
                a: 1,
                b: 0,
                c: 0,
            },
            Event {
                ts: 80,
                kind: EventKind::TaskEnd,
                core: 0,
                a: 1,
                b: 0,
                c: 0,
            },
            Event {
                ts: 10,
                kind: EventKind::LockFailed,
                core: 1,
                a: 2,
                b: 1,
                c: 0,
            },
            Event {
                ts: 20,
                kind: EventKind::ObjSend,
                core: 1,
                a: 128,
                b: 0,
                c: 0,
            },
            Event {
                ts: 30,
                kind: EventKind::QueueDepth,
                core: 1,
                a: 7,
                b: 0,
                c: 0,
            },
            Event {
                ts: 100,
                kind: EventKind::TaskEnd,
                core: 1,
                a: 1,
                b: 0,
                c: 0,
            },
        ];
        report.events.sort_by_key(|e| e.ts);
        let table = per_core_table(&report);
        assert!(table.contains("span 100 cycles"), "{table}");
        let core0: Vec<&str> = table
            .lines()
            .find(|l| l.trim_start().starts_with("0 "))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(core0[1], "1"); // tasks
        assert_eq!(core0[2], "80"); // busy
        assert_eq!(core0[3], "80.0"); // util%
        let core1: Vec<&str> = table
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(core1[4], "1"); // retries
        assert_eq!(core1[7], "128"); // bytes out
        assert_eq!(core1[8], "7"); // max queue
    }

    #[test]
    fn metrics_json_parses_back() {
        let reg = MetricsRegistry::new();
        reg.counter("dispatches").add(9);
        reg.gauge("depth").set(-3);
        reg.histogram("lat").record(5);
        reg.series("traj").extend(&[30, 20, 20]);
        let text = metrics_json(&reg.snapshot());
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("dispatches")
                .unwrap()
                .as_f64(),
            Some(9.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("depth").unwrap().as_f64(),
            Some(-3.0)
        );
        let lat = doc.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(lat.get("p50").unwrap().as_f64(), Some(4.0));
        let traj = doc
            .get("series")
            .unwrap()
            .get("traj")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(traj.len(), 3);
    }
}
