//! Turning recorded telemetry into a diagnosis (the `bamboo-doctor`
//! analysis layer).
//!
//! The recording half of this crate answers *what happened*; this
//! module answers *why it was slow*. The pipeline, one submodule per
//! stage:
//!
//! 1. [`graph`] — fold the flat event stream back into the causal
//!    invocation DAG ([`ObservedGraph`]): who enabled whom, through
//!    which message, with steal attribution preserved.
//! 2. [`ledger`] — a per-core time-breakdown [`Ledger`] (compute /
//!    lock-wait / queue-wait / steal / routing / idle) built as a
//!    constructive partition of the session span, so the buckets sum
//!    to wall time *exactly*.
//! 3. [`path`] — the observed critical path ([`ObservedPath`]),
//!    computed by converting the observed graph into the scheduler's
//!    trace shape and reusing `bamboo_schedule::critpath` unchanged
//!    (paper §4.5.1, applied to a real execution).
//! 4. [`divergence`] — ranked [`Finding`]s: local pathologies (lock
//!    contention, steal storms, load imbalance, wait-dominated paths)
//!    and predicted-vs-observed divergence against the virtual
//!    executor's trace (rate-matching violations, task-weight drift).
//! 5. [`gate`] — the CI regression gate: recorded `BENCH_threaded.json`
//!    baselines in, pass/fail [`gate::Verdict`] out.
//!
//! [`diagnose`] runs stages 1–4 in one call; the `bamboo-doctor` CLI in
//! the bench crate is a thin shell around it.

pub mod divergence;
pub mod estimate;
pub mod findings;
pub mod gate;
pub mod graph;
pub mod ledger;
pub mod path;
pub mod scope;
pub mod serving;
#[cfg(test)]
pub(crate) mod testutil;

pub use estimate::{estimate_profile, profile_fingerprint, rate_divergence, LiveEstimator};
pub use findings::{Evidence, Finding, Severity};
pub use graph::{ObsEdge, ObsInvocation, ObservedGraph};
pub use ledger::{CoreLedger, Ledger};
pub use path::{ObservedPath, PathStep};
pub use scope::{span_trees, SpanBreakdown, SpanTree};
pub use serving::{LatencyHistogram, RequestTimeline, ServingStats};

use crate::report::TelemetryReport;
use bamboo_lang::spec::ProgramSpec;
use bamboo_schedule::trace::ExecutionTrace;
use std::fmt::Write as _;

/// The complete analysis of one recorded execution.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// The reconstructed causal graph.
    pub graph: ObservedGraph,
    /// Per-core time breakdown over the session span.
    pub ledger: Ledger,
    /// The observed critical path (`None` when the report carries no
    /// causal linkage, e.g. a virtual-executor cycle trace).
    pub path: Option<ObservedPath>,
    /// Ranked findings, most severe first.
    pub findings: Vec<Finding>,
}

/// Runs the full analysis pipeline over a recorded report. When
/// `predicted` is given (the virtual executor's [`ExecutionTrace`] over
/// the same deployment), predicted-vs-observed divergence findings are
/// included.
pub fn diagnose(report: &TelemetryReport, predicted: Option<&ExecutionTrace>) -> Diagnosis {
    let graph = ObservedGraph::from_report(report);
    let ledger = Ledger::from_report(report);
    let path = (!graph.invocations.is_empty()).then(|| ObservedPath::from_graph(&graph));
    let mut all = divergence::local_findings(&graph, &ledger, path.as_ref());
    if let Some(predicted) = predicted {
        all.extend(divergence::predicted_vs_observed(&graph, predicted));
    }
    // Chaos runs carry fault/recover events; attribute slowdown to the
    // injected faults by name before ranking.
    all.extend(divergence::fault_findings(report));
    // Serving runs carry request lifecycle events; attribute the tail
    // cohort's latency to its dominant span component.
    all.extend(scope::latency_attribution(report));
    findings::rank(&mut all);
    Diagnosis {
        graph,
        ledger,
        path,
        findings: all,
    }
}

impl Diagnosis {
    /// Human-readable report: reconstruction stats, the per-core time
    /// ledger, the critical path (task names resolved through `spec`
    /// when given), and the ranked findings table.
    pub fn summary(&self, spec: Option<&ProgramSpec>) -> String {
        let mut out = format!(
            "bamboo-doctor: {} invocations reconstructed ({} incomplete, {} stolen)\n\n",
            self.graph.invocations.len(),
            self.graph.incomplete,
            self.graph.stolen().count(),
        );
        out.push_str(&self.ledger.table());
        out.push('\n');
        match &self.path {
            Some(path) => out.push_str(&path.table(spec)),
            None => out.push_str("no causal linkage recorded; critical path unavailable\n"),
        }
        out.push('\n');
        out.push_str(&findings::render_table(&self.findings));
        out
    }

    /// Machine-readable verdict of the whole diagnosis as one JSON
    /// document (ledger, path, findings).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"invocations\":{},\"incomplete\":{},\"stolen\":{},",
            self.graph.invocations.len(),
            self.graph.incomplete,
            self.graph.stolen().count()
        );
        out.push_str("\"ledger\":");
        out.push_str(&self.ledger.json());
        out.push_str(",\"critical_path\":");
        match &self.path {
            Some(path) => out.push_str(&path.json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"findings\":");
        out.push_str(&findings::findings_json(&self.findings));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn diagnose_runs_the_full_pipeline() {
        let report = testutil::two_core_report();
        let diagnosis = diagnose(&report, None);
        assert_eq!(diagnosis.graph.invocations.len(), 4);
        let path = diagnosis.path.as_ref().expect("causal linkage present");
        assert_eq!(path.makespan, 9_000);
        assert!(
            !diagnosis.findings.is_empty(),
            "at least one ranked finding"
        );
        // Severities are ranked, most severe first.
        for pair in diagnosis.findings.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }

    #[test]
    fn summary_renders_every_section() {
        let report = testutil::two_core_report();
        let diagnosis = diagnose(&report, None);
        let text = diagnosis.summary(None);
        assert!(text.contains("bamboo-doctor: 4 invocations"), "{text}");
        assert!(text.contains("per-core time breakdown"), "{text}");
        assert!(text.contains("observed critical path"), "{text}");
        assert!(text.contains("findings"), "{text}");
    }

    #[test]
    fn json_verdict_parses_back() {
        let report = testutil::two_core_report();
        let diagnosis = diagnose(&report, None);
        let doc = json::parse(&diagnosis.json()).unwrap();
        assert_eq!(doc.get("invocations").unwrap().as_f64(), Some(4.0));
        assert_eq!(doc.get("stolen").unwrap().as_f64(), Some(1.0));
        assert!(doc.get("ledger").unwrap().get("span").is_some());
        assert!(doc.get("critical_path").unwrap().get("makespan").is_some());
        assert!(doc.get("findings").unwrap().as_arr().is_some());
    }

    #[test]
    fn empty_report_diagnoses_to_nothing() {
        let diagnosis = diagnose(&TelemetryReport::empty(), None);
        assert!(diagnosis.graph.invocations.is_empty());
        assert!(diagnosis.path.is_none());
        let doc = json::parse(&diagnosis.json()).unwrap();
        assert_eq!(doc.get("critical_path"), Some(&json::Value::Null));
    }
}
