//! Per-request span trees: the causal path of one serving request with
//! an exact latency partition.
//!
//! The serving driver stamps `ReqAdmit`/`ReqComplete`, and every
//! invocation formed on a request's behalf carries the request id in
//! its [`EventKind::InvQueued`] word (see
//! [`crate::event::pack_inv_request`]). Folding those together yields,
//! per request, the admit→complete span and the invocations (with
//! their queue/lock/dispatch windows and message deps) that produced
//! it — the request-scoped analogue of the per-core [`Ledger`]
//! partition.
//!
//! The partition is *constructive*: the admit→complete span is swept
//! over elementary segments, each attributed to the highest-priority
//! activity covering it (compute > lock-wait > queue-wait > routing),
//! and whatever no activity covers is idle. The five buckets therefore
//! sum to the end-to-end latency **exactly** — the invariant
//! `tests/scope.rs` pins.
//!
//! [`Ledger`]: crate::analyze::ledger::Ledger

use crate::analyze::findings::{Evidence, Finding, Severity};
use crate::analyze::graph::{ObsInvocation, ObservedGraph};
use crate::analyze::serving::ServingStats;
use crate::event::EventKind;
use crate::report::TelemetryReport;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Exact partition of one request's admit→complete span, in the
/// report's time base. `compute + lock_wait + queue_wait + routing +
/// idle == total` by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanBreakdown {
    /// End-to-end admit→complete latency.
    pub total: u64,
    /// Some invocation of the request was executing a task body.
    pub compute: u64,
    /// No body running, but an invocation was waiting out try-lock-all
    /// retries (first `LockFailed` → `TaskStart`).
    pub lock_wait: u64,
    /// No body running, an invocation sat formed in a run queue.
    pub queue_wait: u64,
    /// No invocation active, but an object of the request was in
    /// flight between cores (`ObjSend` → `ObjRecv`).
    pub routing: u64,
    /// Remainder: nothing attributable to this request was happening
    /// (e.g. the ledger refcount drained while the driver's completion
    /// poll lagged).
    pub idle: u64,
}

impl SpanBreakdown {
    /// Sum of the named components (equals [`SpanBreakdown::total`]).
    pub fn component_sum(&self) -> u64 {
        self.compute + self.lock_wait + self.queue_wait + self.routing + self.idle
    }

    /// The dominant *named* component — the latency-attribution verdict
    /// (idle is excluded from dominance; it is reported alongside).
    pub fn dominant(&self) -> (&'static str, u64) {
        let named = [
            ("compute", self.compute),
            ("lock-wait", self.lock_wait),
            ("queue-wait", self.queue_wait),
            ("routing", self.routing),
        ];
        named
            .into_iter()
            .max_by_key(|&(_, v)| v)
            .unwrap_or(("compute", 0))
    }
}

/// One request's reconstructed causal path with timing.
#[derive(Clone, Debug)]
pub struct SpanTree {
    /// Request id.
    pub request: u64,
    /// `ReqArrive` timestamp, when recorded.
    pub arrived: Option<u64>,
    /// `ReqAdmit` timestamp (span start).
    pub admitted: u64,
    /// `ReqComplete` timestamp (span end).
    pub completed: u64,
    /// The request's invocations, ordered by body start.
    pub invocations: Vec<ObsInvocation>,
    /// Exact partition of `completed - admitted`.
    pub breakdown: SpanBreakdown,
}

impl SpanTree {
    /// Renders the tree as indented text: the request span line, the
    /// partition line, then each invocation under its in-request
    /// producer (forest order; `unit` labels timestamps, e.g. "ns").
    pub fn render(&self, unit: &str) -> String {
        let b = &self.breakdown;
        let mut out = format!(
            "request {}: {}{unit} admit->complete ({} invocations)\n  compute {}{unit} | lock-wait {}{unit} | queue-wait {}{unit} | routing {}{unit} | idle {}{unit}\n",
            self.request,
            b.total,
            self.invocations.len(),
            b.compute,
            b.lock_wait,
            b.queue_wait,
            b.routing,
            b.idle,
        );
        let ids: HashMap<u64, usize> = self
            .invocations
            .iter()
            .enumerate()
            .map(|(i, inv)| (inv.id, i))
            .collect();
        // children[i] = invocations whose first in-request producer is i.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.invocations.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, inv) in self.invocations.iter().enumerate() {
            let parent = inv
                .deps
                .iter()
                .filter_map(|d| d.producer)
                .filter_map(|p| ids.get(&p).copied())
                .find(|&p| p != i);
            match parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        fn walk(
            out: &mut String,
            tree: &SpanTree,
            children: &[Vec<usize>],
            i: usize,
            depth: usize,
            unit: &str,
        ) {
            let inv = &tree.invocations[i];
            let _ = write!(
                out,
                "  {}- inv {} task {} core {}: queued +{}{unit} start +{}{unit} end +{}{unit}",
                "  ".repeat(depth),
                inv.id,
                inv.task,
                inv.core,
                inv.queued.saturating_sub(tree.admitted),
                inv.start.saturating_sub(tree.admitted),
                inv.end.saturating_sub(tree.admitted),
            );
            if inv.retries > 0 {
                let _ = write!(out, " (retries {})", inv.retries);
            }
            if let Some(victim) = inv.stolen_from {
                let _ = write!(out, " (stolen from core {victim})");
            }
            out.push('\n');
            for &c in &children[i] {
                walk(out, tree, children, c, depth + 1, unit);
            }
        }
        for &r in &roots {
            walk(&mut out, self, &children, r, 0, unit);
        }
        out
    }
}

fn clip(lo: u64, hi: u64, start: u64, end: u64) -> Option<(u64, u64)> {
    let s = start.max(lo);
    let e = end.min(hi);
    (s < e).then_some((s, e))
}

/// Sweeps `[lo, hi]` over the prioritized interval classes and returns
/// the exact partition. `classes` is ordered highest priority first;
/// the remainder is returned last (idle).
fn partition(lo: u64, hi: u64, classes: &[Vec<(u64, u64)>]) -> Vec<u64> {
    let mut bounds: Vec<u64> = vec![lo, hi];
    for class in classes {
        for &(s, e) in class {
            bounds.push(s);
            bounds.push(e);
        }
    }
    bounds.retain(|&b| (lo..=hi).contains(&b));
    bounds.sort_unstable();
    bounds.dedup();
    let mut totals = vec![0u64; classes.len() + 1];
    for pair in bounds.windows(2) {
        let (s, e) = (pair[0], pair[1]);
        // Bounds include every interval endpoint, so coverage of the
        // elementary segment [s, e) is all-or-nothing per interval.
        let class = classes
            .iter()
            .position(|c| c.iter().any(|&(cs, ce)| cs <= s && e <= ce));
        match class {
            Some(k) => totals[k] += e - s,
            None => *totals.last_mut().unwrap() += e - s,
        }
    }
    totals
}

/// Reconstructs span trees for `requests` (ascending by request id)
/// from a drained report. Requests with no recorded admit/complete
/// pair are skipped — the scope plane samples ids online, and this
/// materializes trees for exactly the sampled survivors.
pub fn span_trees(report: &TelemetryReport, requests: &[u64]) -> Vec<SpanTree> {
    let graph = ObservedGraph::from_report(report);
    let stats = ServingStats::from_report(report);
    // First LockFailed timestamp per invocation id: the start of its
    // lock-wait window (retries count alone has no time extent).
    let mut first_lock_failed: HashMap<u64, u64> = HashMap::new();
    for e in &report.events {
        if e.kind == EventKind::LockFailed && e.c != crate::event::NO_ID {
            first_lock_failed.entry(e.c).or_insert(e.ts);
        }
    }
    // The request's invocations, grouped once.
    let mut by_request: HashMap<u64, Vec<&ObsInvocation>> = HashMap::new();
    for inv in &graph.invocations {
        by_request.entry(inv.request).or_default().push(inv);
    }
    let mut wanted: Vec<u64> = requests.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    let mut trees = Vec::with_capacity(wanted.len());
    for request in wanted {
        let Some(timeline) = stats
            .timelines
            .iter()
            .find(|t| t.request == request)
            .copied()
        else {
            continue;
        };
        let (Some(admitted), Some(completed)) = (timeline.admitted, timeline.completed) else {
            continue;
        };
        let mut invocations: Vec<ObsInvocation> = by_request
            .get(&request)
            .map(|invs| invs.iter().map(|&inv| inv.clone()).collect())
            .unwrap_or_default();
        invocations.sort_by_key(|inv| (inv.start, inv.id));
        let mut compute = Vec::new();
        let mut lock = Vec::new();
        let mut queue = Vec::new();
        let mut routing = Vec::new();
        for inv in &invocations {
            compute.extend(clip(admitted, completed, inv.start, inv.end));
            if let Some(&failed) = first_lock_failed.get(&inv.id) {
                lock.extend(clip(admitted, completed, failed, inv.start));
            }
            queue.extend(clip(admitted, completed, inv.queued, inv.start));
            for dep in &inv.deps {
                if let (Some(sent), Some(received)) = (dep.sent, dep.received) {
                    routing.extend(clip(admitted, completed, sent, received));
                }
            }
        }
        let totals = partition(admitted, completed, &[compute, lock, queue, routing]);
        trees.push(SpanTree {
            request,
            arrived: timeline.arrived,
            admitted,
            completed,
            invocations,
            breakdown: SpanBreakdown {
                total: completed - admitted,
                compute: totals[0],
                lock_wait: totals[1],
                queue_wait: totals[2],
                routing: totals[3],
                idle: totals[4],
            },
        });
    }
    trees
}

/// All completed request ids in a report, ascending.
pub fn completed_requests(report: &TelemetryReport) -> Vec<u64> {
    ServingStats::from_report(report)
        .timelines
        .iter()
        .filter(|t| t.admitted.is_some() && t.completed.is_some())
        .map(|t| t.request)
        .collect()
}

/// The `latency-attribution` analysis: names the dominant span
/// component for the tail cohort (completions at or above the p99
/// latency). Empty when the report carries no completed requests.
pub fn latency_attribution(report: &TelemetryReport) -> Vec<Finding> {
    let stats = ServingStats::from_report(report);
    if stats.completed == 0 {
        return Vec::new();
    }
    let p99 = stats.latency.p99();
    let mut tail: Vec<(u64, u64)> = stats
        .timelines
        .iter()
        .filter_map(|t| {
            let (admit, done) = (t.admitted?, t.completed?);
            let latency = done.saturating_sub(admit);
            (latency >= p99).then_some((latency, t.request))
        })
        .collect();
    tail.sort_unstable_by(|a, b| b.cmp(a));
    let ids: Vec<u64> = tail.iter().map(|&(_, r)| r).collect();
    let trees = span_trees(report, &ids);
    if trees.is_empty() {
        return Vec::new();
    }
    let mut agg = SpanBreakdown::default();
    for t in &trees {
        agg.total += t.breakdown.total;
        agg.compute += t.breakdown.compute;
        agg.lock_wait += t.breakdown.lock_wait;
        agg.queue_wait += t.breakdown.queue_wait;
        agg.routing += t.breakdown.routing;
        agg.idle += t.breakdown.idle;
    }
    let (name, value) = agg.dominant();
    let share = if agg.total == 0 {
        0.0
    } else {
        value as f64 / agg.total as f64
    };
    let pct = |v: u64| {
        if agg.total == 0 {
            0.0
        } else {
            v as f64 * 100.0 / agg.total as f64
        }
    };
    // A tail dominated by waiting (not computing) is actionable: it
    // points at contention or queueing, not at the workload itself.
    let severity = if name != "compute" && share > 0.5 {
        Severity::Warning
    } else {
        Severity::Info
    };
    let slowest = &trees[trees
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.breakdown.total)
        .map(|(i, _)| i)
        .unwrap_or(0)];
    vec![Finding {
        rule: "latency-attribution",
        severity,
        score: share * 100.0,
        message: format!(
            "tail cohort ({} requests >= p99) is dominated by {name}: {:.1}% of end-to-end latency",
            trees.len(),
            share * 100.0,
        ),
        evidence: vec![
            Evidence::note(format!(
                "compute {:.1}% | lock-wait {:.1}% | queue-wait {:.1}% | routing {:.1}% | idle {:.1}%",
                pct(agg.compute),
                pct(agg.lock_wait),
                pct(agg.queue_wait),
                pct(agg.routing),
                pct(agg.idle),
            )),
            Evidence {
                detail: format!(
                    "slowest sampled request {} ({} end-to-end, {} invocations)",
                    slowest.request,
                    slowest.breakdown.total,
                    slowest.invocations.len(),
                ),
                span: Some((slowest.admitted, slowest.completed)),
                core: None,
            },
        ],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{pack_inv_request, Event, NO_ID};
    use crate::TimeUnit;

    fn ev(ts: u64, core: u32, kind: EventKind, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts,
            kind,
            core,
            a,
            b,
            c,
        }
    }

    /// One request (id 7) through two invocations with every activity
    /// class represented: queue wait, a lock retry, a message hop, and
    /// trailing idle before the completion stamp.
    fn one_request_report() -> TelemetryReport {
        let mut events = vec![
            ev(100, 8, EventKind::ReqArrive, 7, 1, 0),
            ev(1_000, 8, EventKind::ReqAdmit, 7, 1, 0),
            // inv 1: queued at 1200, starts 1500, ends 2500.
            ev(1_200, 0, EventKind::InvQueued, 1, pack_inv_request(4, 7), 2),
            ev(1_200, 0, EventKind::InvLink, 1, NO_ID, 100),
            ev(1_500, 0, EventKind::TaskStart, 2, 4, 1),
            ev(2_000, 0, EventKind::ObjSend, 64, 1, 101),
            ev(2_500, 0, EventKind::TaskEnd, 2, 4, 1),
            // Message in flight 2000→3000 (500ns beyond inv 1's end).
            ev(3_000, 1, EventKind::ObjRecv, 64, 0, 101),
            // inv 2: queued 3000, lock-fails at 3100, starts 3600.
            ev(3_000, 1, EventKind::InvQueued, 2, pack_inv_request(5, 7), 3),
            ev(3_000, 1, EventKind::InvLink, 2, 1, 101),
            ev(3_100, 1, EventKind::LockFailed, 1, 3, 2),
            ev(3_550, 1, EventKind::LockAcquired, 1, 1, 2),
            ev(3_600, 1, EventKind::TaskStart, 3, 5, 2),
            ev(4_400, 1, EventKind::TaskEnd, 3, 5, 2),
            // Completion stamped 600ns later (driver poll lag → idle).
            ev(5_000, 8, EventKind::ReqComplete, 7, 2, 0),
        ];
        events.sort_by_key(|e| (e.ts, e.core));
        TelemetryReport {
            unit: TimeUnit::Nanos,
            wall_ns: 6_000,
            cores: 2,
            events,
            dropped: 0,
            metrics: Default::default(),
        }
    }

    #[test]
    fn partition_is_exact_and_prioritized() {
        let report = one_request_report();
        let trees = span_trees(&report, &[7]);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.request, 7);
        assert_eq!(t.invocations.len(), 2);
        let b = &t.breakdown;
        assert_eq!(b.total, 4_000, "admit 1000 → complete 5000");
        assert_eq!(b.component_sum(), b.total, "exact partition");
        // compute: [1500,2500] + [3600,4400] = 1800.
        assert_eq!(b.compute, 1_800);
        // lock-wait: [3100,3600] = 500 (not double-counted as queue).
        assert_eq!(b.lock_wait, 500);
        // queue-wait: [1200,1500] + [3000,3100] = 400 (the rest of inv
        // 2's queue window is covered by the higher-priority lock-wait).
        assert_eq!(b.queue_wait, 400);
        // routing: [2500,3000] — the message hop minus the overlap
        // with inv 1's compute.
        assert_eq!(b.routing, 500);
        // idle: [1000,1200] pre-formation + [4400,5000] poll lag.
        assert_eq!(b.idle, 800);
    }

    #[test]
    fn unknown_and_incomplete_requests_are_skipped() {
        let report = one_request_report();
        assert!(span_trees(&report, &[42]).is_empty());
        // Duplicate ids collapse to one tree.
        assert_eq!(span_trees(&report, &[7, 7, 42]).len(), 1);
        assert_eq!(completed_requests(&report), vec![7]);
    }

    #[test]
    fn render_shows_the_causal_forest() {
        let report = one_request_report();
        let trees = span_trees(&report, &[7]);
        let text = trees[0].render("ns");
        assert!(text.contains("request 7: 4000ns"), "{text}");
        assert!(text.contains("compute 1800ns"), "{text}");
        // inv 2 is indented under inv 1 (its in-request producer).
        let inv1 = text.find("- inv 1 ").expect("inv 1 line");
        let inv2 = text.find("  - inv 2 ").expect("inv 2 indented");
        assert!(inv2 > inv1);
        assert!(text.contains("(retries 1)"), "{text}");
    }

    #[test]
    fn latency_attribution_names_the_dominant_component() {
        let report = one_request_report();
        let findings = latency_attribution(&report);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, "latency-attribution");
        // compute (1800) is the dominant named component at 45%.
        assert!(f.message.contains("dominated by compute"), "{}", f.message);
        assert_eq!(f.severity, Severity::Info);
        assert!(f.evidence[0].detail.contains("lock-wait 12.5%"));
        // No serving events → no finding.
        assert!(latency_attribution(&TelemetryReport::empty()).is_empty());
    }
}
