//! Synthetic observed-event streams for analysis-layer unit tests.

use crate::event::{Event, EventKind, NO_ID};
use crate::report::TelemetryReport;
use crate::TimeUnit;

fn ev(ts: u64, core: u32, kind: EventKind, a: u64, b: u64, c: u64) -> Event {
    Event {
        ts,
        kind,
        core,
        a,
        b,
        c,
    }
}

/// A hand-built two-core run with full causal linkage:
///
/// - invocation 1 = `startup` (task 0, instance 0, core 0): consumes
///   the injected object (msg 100), creates two work objects
///   (msgs 101/102) and one accumulator (msg 103);
/// - invocation 2 = `work` (task 1, instance 1, core 0): consumes
///   msg 101, releases its object as msg 105;
/// - invocation 3 = `work` (task 1, instance 1): formed on core 0 but
///   **stolen** by core 1; consumes msg 102, releases msg 104;
/// - invocation 4 = `reduce` (task 2, instance 2, core 0): consumes
///   msgs 103/105/104, survives one failed try-lock-all.
///
/// Wall span 10 000 ns over 2 cores; every event carries the ids the
/// analyzer matches on.
pub fn two_core_report() -> TelemetryReport {
    let mut events = vec![
        // Startup object injected by the driver (no ObjSend).
        ev(100, 0, EventKind::ObjRecv, 128, NO_ID, 100),
        ev(150, 0, EventKind::InvQueued, 1, 0, 0),
        ev(150, 0, EventKind::InvLink, 1, NO_ID, 100),
        ev(180, 0, EventKind::LockAcquired, 1, 0, 1),
        ev(200, 0, EventKind::TaskStart, 0, 0, 1),
        ev(900, 0, EventKind::ObjSend, 128, 0, 101),
        ev(950, 0, EventKind::ObjSend, 128, 0, 102),
        ev(980, 0, EventKind::ObjSend, 128, 0, 103),
        ev(1000, 0, EventKind::TaskEnd, 0, 0, 1),
        // Work object 1 arrives; invocation 2 forms locally.
        ev(1050, 0, EventKind::ObjRecv, 128, 0, 103),
        ev(1100, 0, EventKind::ObjRecv, 128, 0, 101),
        ev(1120, 0, EventKind::QueueDepth, 1, 1, 0),
        ev(1150, 0, EventKind::InvQueued, 2, 1, 1),
        ev(1150, 0, EventKind::InvLink, 2, 1, 101),
        // Work object 2 arrives; invocation 3 forms on core 0 ...
        ev(1250, 0, EventKind::ObjRecv, 128, 0, 102),
        ev(1300, 0, EventKind::InvQueued, 3, 1, 1),
        ev(1300, 0, EventKind::InvLink, 3, 1, 102),
        ev(1180, 0, EventKind::LockAcquired, 1, 0, 2),
        ev(1200, 0, EventKind::TaskStart, 1, 1, 2),
        // ... and is stolen by idle core 1.
        ev(1400, 1, EventKind::Steal, 3, 0, 0),
        ev(1450, 1, EventKind::LockAcquired, 1, 0, 3),
        ev(1500, 1, EventKind::TaskStart, 1, 1, 3),
        ev(2100, 0, EventKind::ObjSend, 128, 0, 105),
        ev(2200, 0, EventKind::TaskEnd, 1, 1, 2),
        ev(2250, 0, EventKind::ObjRecv, 128, 0, 105),
        ev(2400, 1, EventKind::ObjSend, 128, 0, 104),
        ev(2500, 1, EventKind::TaskEnd, 1, 1, 3),
        ev(2600, 0, EventKind::ObjRecv, 128, 1, 104),
        // Reduce forms with three causal inputs and one lock retry.
        ev(2700, 0, EventKind::InvQueued, 4, 2, 2),
        ev(2700, 0, EventKind::InvLink, 4, 1, 103),
        ev(2700, 0, EventKind::InvLink, 4, 2, 105),
        ev(2700, 0, EventKind::InvLink, 4, 3, 104),
        ev(2750, 0, EventKind::LockFailed, 2, 2, 4),
        ev(2850, 0, EventKind::LockAcquired, 2, 1, 4),
        ev(2900, 0, EventKind::TaskStart, 2, 2, 4),
        ev(9000, 0, EventKind::TaskEnd, 2, 2, 4),
    ];
    events.sort_by_key(|e| (e.ts, e.core));
    TelemetryReport {
        unit: TimeUnit::Nanos,
        wall_ns: 10_000,
        cores: 2,
        events,
        dropped: 0,
        metrics: Default::default(),
    }
}
