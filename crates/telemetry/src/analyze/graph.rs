//! Causal invocation-graph reconstruction from observed telemetry.
//!
//! The threaded executor records, per invocation, a formation event
//! ([`EventKind::InvQueued`]), one causal edge per consumed object
//! ([`EventKind::InvLink`], carrying the producing invocation's id and
//! the delivering message's id), the dispatch window
//! ([`EventKind::TaskStart`]/[`EventKind::TaskEnd`]), lock outcomes,
//! and thefts ([`EventKind::Steal`]). This module folds that flat
//! event stream back into an [`ObservedGraph`]: the who-enabled-whom
//! DAG the paper's critical-path analysis needs, but over a *real*
//! execution instead of a simulated one. [`ObservedGraph::to_trace`]
//! converts the graph into the scheduler's [`ExecutionTrace`] shape so
//! `bamboo_schedule::critpath` runs on observed data unchanged.

use crate::event::{EventKind, Timestamp, NO_ID};
use crate::report::TelemetryReport;
use bamboo_lang::ids::TaskId;
use bamboo_machine::CoreId;
use bamboo_schedule::trace::{DataDep, ExecutionTrace, TraceTask};
use bamboo_schedule::InstanceId;
use std::collections::HashMap;

/// One causal (data) edge into an invocation: the object it consumed,
/// traced back to the invocation that released or created it.
#[derive(Clone, Debug)]
pub struct ObsEdge {
    /// The producing invocation's id; `None` for external inputs (the
    /// injected startup object).
    pub producer: Option<u64>,
    /// Id of the message that delivered the object ([`NO_ID`] when the
    /// recording executor does not track messages).
    pub msg: u64,
    /// When the delivering message was sent ([`EventKind::ObjSend`]).
    pub sent: Option<Timestamp>,
    /// When it was delivered at the consuming worker
    /// ([`EventKind::ObjRecv`]).
    pub received: Option<Timestamp>,
}

/// One observed invocation with its causal inputs and timing.
#[derive(Clone, Debug)]
pub struct ObsInvocation {
    /// Runtime-minted invocation id (the events' linkage key).
    pub id: u64,
    /// Task id word.
    pub task: u64,
    /// Group-instance id word.
    pub instance: u64,
    /// The serving request the invocation belongs to (0 for batch
    /// runs), recovered from the packed [`EventKind::InvQueued`]
    /// instance word.
    pub request: u64,
    /// The core that executed the body.
    pub core: u32,
    /// The core that formed and first enqueued the invocation.
    pub formed_core: u32,
    /// Queue-enter timestamp (formation).
    pub queued: Timestamp,
    /// Body start.
    pub start: Timestamp,
    /// Body end (exit actions + routing included).
    pub end: Timestamp,
    /// Failed try-lock-all attempts this invocation survived.
    pub retries: u64,
    /// The victim core, when the invocation was work-stolen.
    pub stolen_from: Option<u32>,
    /// Causal inputs (one per consumed object).
    pub deps: Vec<ObsEdge>,
}

impl ObsInvocation {
    /// Formation-to-start latency (queue wait + lock retries).
    pub fn queue_wait(&self) -> u64 {
        self.start.saturating_sub(self.queued)
    }

    /// Body duration.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// The reconstructed causal graph of one recorded execution.
#[derive(Clone, Debug, Default)]
pub struct ObservedGraph {
    /// Completed invocations, ordered by start timestamp.
    pub invocations: Vec<ObsInvocation>,
    /// Event records that could not be assembled into a complete
    /// invocation (formed but never started, or start/end lost to ring
    /// overwrites). Non-zero means the graph under-approximates.
    pub incomplete: usize,
}

#[derive(Default)]
struct Builder {
    task: u64,
    instance: u64,
    request: u64,
    formed_core: u32,
    queued: Option<Timestamp>,
    start: Option<Timestamp>,
    end: Option<Timestamp>,
    core: u32,
    retries: u64,
    stolen_from: Option<u32>,
    deps: Vec<(u64, u64)>, // (producer inv id word, msg id)
}

impl ObservedGraph {
    /// Reconstructs the causal graph from a recorded report. Events
    /// whose invocation-id word is [`NO_ID`] (executors that predate
    /// causal linkage, or the virtual executor's cycle traces) are
    /// skipped; an empty graph means the report carries no linkage.
    pub fn from_report(report: &TelemetryReport) -> Self {
        let mut builders: HashMap<u64, Builder> = HashMap::new();
        let mut sent: HashMap<u64, Timestamp> = HashMap::new();
        let mut received: HashMap<u64, Timestamp> = HashMap::new();
        for e in &report.events {
            match e.kind {
                EventKind::InvQueued => {
                    let (instance, request) = crate::event::unpack_inv_request(e.b);
                    let b = builders.entry(e.a).or_default();
                    b.instance = instance;
                    b.request = request;
                    b.task = e.c;
                    b.formed_core = e.core;
                    b.queued = Some(e.ts);
                }
                EventKind::InvLink => {
                    builders.entry(e.a).or_default().deps.push((e.b, e.c));
                }
                EventKind::TaskStart if e.c != NO_ID => {
                    let b = builders.entry(e.c).or_default();
                    b.start = Some(e.ts);
                    b.core = e.core;
                    b.task = e.a;
                    b.instance = e.b;
                }
                EventKind::TaskEnd if e.c != NO_ID => {
                    builders.entry(e.c).or_default().end = Some(e.ts);
                }
                EventKind::LockAcquired if e.c != NO_ID => {
                    builders.entry(e.c).or_default().retries = e.b;
                }
                EventKind::Steal => {
                    builders.entry(e.a).or_default().stolen_from = Some(e.b as u32);
                }
                EventKind::ObjSend if e.c != NO_ID => {
                    sent.insert(e.c, e.ts);
                }
                EventKind::ObjRecv if e.c != NO_ID => {
                    received.insert(e.c, e.ts);
                }
                _ => {}
            }
        }
        let mut incomplete = 0;
        let mut invocations: Vec<ObsInvocation> = Vec::with_capacity(builders.len());
        for (id, b) in builders {
            let (Some(start), Some(end)) = (b.start, b.end) else {
                incomplete += 1;
                continue;
            };
            invocations.push(ObsInvocation {
                id,
                task: b.task,
                instance: b.instance,
                request: b.request,
                core: b.core,
                formed_core: b.formed_core,
                queued: b.queued.unwrap_or(start),
                start,
                end,
                retries: b.retries,
                stolen_from: b.stolen_from,
                deps: b
                    .deps
                    .into_iter()
                    .map(|(producer, msg)| ObsEdge {
                        producer: (producer != NO_ID).then_some(producer),
                        msg,
                        sent: sent.get(&msg).copied(),
                        received: received.get(&msg).copied(),
                    })
                    .collect(),
            });
        }
        invocations.sort_by_key(|inv| (inv.start, inv.id));
        ObservedGraph {
            invocations,
            incomplete,
        }
    }

    /// Position of invocation `id` in [`Self::invocations`].
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.invocations.iter().position(|inv| inv.id == id)
    }

    /// Invocations executed on a core other than the one that formed
    /// them (the work-stolen subset).
    pub fn stolen(&self) -> impl Iterator<Item = &ObsInvocation> {
        self.invocations
            .iter()
            .filter(|inv| inv.stolen_from.is_some())
    }

    /// The causal edge list as a `(producer task, consumer task)`
    /// multiset. External (startup) edges are excluded. This is the
    /// rate-matching fingerprint: for a deterministic program it must
    /// equal the virtual executor's edge list over the same deployment,
    /// regardless of stealing or interleaving.
    pub fn edge_task_pairs(&self) -> HashMap<(u64, u64), u64> {
        let task_of: HashMap<u64, u64> = self
            .invocations
            .iter()
            .map(|inv| (inv.id, inv.task))
            .collect();
        let mut pairs: HashMap<(u64, u64), u64> = HashMap::new();
        for inv in &self.invocations {
            for dep in &inv.deps {
                if let Some(producer) = dep.producer {
                    if let Some(&ptask) = task_of.get(&producer) {
                        *pairs.entry((ptask, inv.task)).or_insert(0) += 1;
                    }
                }
            }
        }
        pairs
    }

    /// Per-task invocation counts.
    pub fn task_counts(&self) -> HashMap<u64, u64> {
        let mut counts = HashMap::new();
        for inv in &self.invocations {
            *counts.entry(inv.task).or_insert(0) += 1;
        }
        counts
    }

    /// Converts the observed graph into the scheduler's
    /// [`ExecutionTrace`] shape (trace ids = positions in
    /// [`Self::invocations`]), so `bamboo_schedule::critpath` runs on
    /// observed executions unchanged. Dep arrivals use the delivering
    /// message's receive timestamp when recorded, else the formation
    /// timestamp.
    pub fn to_trace(&self) -> ExecutionTrace {
        let index: HashMap<u64, usize> = self
            .invocations
            .iter()
            .enumerate()
            .map(|(i, inv)| (inv.id, i))
            .collect();
        let mut last_on_core: HashMap<u32, usize> = HashMap::new();
        let mut tasks = Vec::with_capacity(self.invocations.len());
        for (i, inv) in self.invocations.iter().enumerate() {
            let deps: Vec<DataDep> = inv
                .deps
                .iter()
                .map(|dep| DataDep {
                    producer: dep.producer.and_then(|p| index.get(&p).copied()),
                    arrival: dep.received.unwrap_or(inv.queued),
                })
                .collect();
            tasks.push(TraceTask {
                id: i,
                task: TaskId::new(inv.task as usize),
                instance: InstanceId(inv.instance as u32),
                core: CoreId::new(inv.core as usize),
                start: inv.start,
                end: inv.end,
                deps,
                prev_on_core: last_on_core.insert(inv.core, i),
            });
        }
        let makespan = tasks.iter().map(|t| t.end).max().unwrap_or(0);
        ExecutionTrace { tasks, makespan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::testutil::two_core_report;

    #[test]
    fn reconstructs_invocations_and_edges() {
        let report = two_core_report();
        let graph = ObservedGraph::from_report(&report);
        assert_eq!(graph.invocations.len(), 4);
        assert_eq!(graph.incomplete, 0);
        // Ordered by start.
        let ids: Vec<u64> = graph.invocations.iter().map(|i| i.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        // The startup invocation has one external dep.
        let startup = &graph.invocations[0];
        assert_eq!(startup.deps.len(), 1);
        assert!(startup.deps[0].producer.is_none());
        // Both workers link back to the startup invocation.
        for worker in &graph.invocations[1..3] {
            assert_eq!(worker.deps[0].producer, Some(1));
            assert!(worker.deps[0].sent.is_some());
            assert!(worker.deps[0].received.is_some());
        }
    }

    #[test]
    fn steal_attribution_survives_reconstruction() {
        let report = two_core_report();
        let graph = ObservedGraph::from_report(&report);
        let stolen: Vec<&ObsInvocation> = graph.stolen().collect();
        assert_eq!(stolen.len(), 1);
        let inv = stolen[0];
        assert_eq!(inv.id, 3);
        assert_eq!(inv.stolen_from, Some(0));
        assert_eq!(inv.core, 1, "executed by the thief");
        assert_eq!(inv.formed_core, 0, "formed at the victim");
        // The stolen invocation's causal edge still points at the true
        // producer, not at the thief.
        assert_eq!(inv.deps[0].producer, Some(1));
    }

    #[test]
    fn edge_task_pairs_form_the_rate_fingerprint() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let pairs = graph.edge_task_pairs();
        // startup(task 0) -> work(task 1) twice; both works feed the
        // reduce(task 2); the accumulator edge is startup -> reduce.
        assert_eq!(pairs.get(&(0, 1)), Some(&2));
        assert_eq!(pairs.get(&(1, 2)), Some(&2));
        assert_eq!(pairs.get(&(0, 2)), Some(&1));
    }

    #[test]
    fn to_trace_feeds_the_critical_path_analysis() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let trace = graph.to_trace();
        assert_eq!(trace.tasks.len(), 4);
        assert_eq!(trace.makespan, 9_000);
        let path = bamboo_schedule::critpath::critical_path(&trace);
        assert!(!path.is_empty());
        // The path ends at the reduce invocation (finishes last).
        let last = *path.last().unwrap();
        assert_eq!(graph.invocations[last].task, 2);
        // And starts at the startup invocation.
        assert_eq!(graph.invocations[path[0]].task, 0);
    }

    #[test]
    fn incomplete_records_are_counted_not_invented() {
        let mut report = two_core_report();
        // Drop every TaskEnd for invocation 4: it must vanish from the
        // graph and be counted incomplete.
        report
            .events
            .retain(|e| !(e.kind == EventKind::TaskEnd && e.c == 4));
        let graph = ObservedGraph::from_report(&report);
        assert_eq!(graph.invocations.len(), 3);
        assert_eq!(graph.incomplete, 1);
    }

    #[test]
    fn empty_report_yields_empty_graph() {
        let graph = ObservedGraph::from_report(&TelemetryReport::empty());
        assert!(graph.invocations.is_empty());
        assert_eq!(graph.incomplete, 0);
    }
}
