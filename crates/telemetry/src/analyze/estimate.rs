//! Online Markov-model re-estimation (DESIGN.md §16).
//!
//! The synthesis pipeline optimizes layouts against a *static* profile
//! captured before deployment. A resident deployment under shifting
//! traffic drifts away from that profile — exit rates, allocation
//! counts, and per-exit cycles all move with the mix. This module
//! rebuilds a [`Profile`] from the *live* execution so the adaptive
//! controller can re-run DSA against reality:
//!
//! - [`LiveEstimator`] — a lock-free accumulator the threaded executor
//!   feeds on every dispatch. Event rings cannot serve this purpose:
//!   they are worker-exclusive and only drained destructively at
//!   session end, while the controller needs a *mid-run* snapshot. The
//!   estimator is a flat array of atomics instead, readable at any
//!   moment from any thread.
//! - [`estimate_profile`] — the offline twin: folds recorded
//!   [`EventKind::TaskExit`]/[`EventKind::TaskAlloc`] events back into
//!   a profile, for post-hoc analysis (`bamboo-doctor`).
//! - [`rate_divergence`] — the scalar the `adapt-improves-or-holds`
//!   doctor check gates on: how far two profiles' exit-rate
//!   distributions sit apart.
//!
//! Cycles are the *charged* cost-model cycles, not wall nanoseconds:
//! charged cycles are a pure function of the task body, so an estimated
//! profile is deterministic under stepped pacing — which is what makes
//! migration decisions reproducible at any worker-thread count.

use crate::event::{unpack_task_exit, EventKind};
use crate::report::TelemetryReport;
use bamboo_lang::ids::TaskId;
use bamboo_lang::spec::ProgramSpec;
use bamboo_profile::{ExitStats, Profile, TaskProfile};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free live profile accumulator. See the module docs.
///
/// One per resident run (created by the executor when an adapt policy
/// is present); workers call [`LiveEstimator::record`] after each task
/// body, the controller calls [`LiveEstimator::snapshot`] on its tick.
#[derive(Debug)]
pub struct LiveEstimator {
    program: String,
    /// Per task: `(first exit slot, exit count, site count)` into the
    /// flat arrays.
    shape: Vec<(usize, usize, usize)>,
    /// Invocation counts, one slot per (task, exit).
    counts: Vec<AtomicU64>,
    /// Total charged cycles, one slot per (task, exit).
    cycles: Vec<AtomicU64>,
    /// Allocation totals, `sites-per-task` slots per (task, exit).
    allocs: Vec<AtomicU64>,
    /// Per task: first slot into `allocs` (exit-major).
    alloc_base: Vec<usize>,
    /// Total recorded invocations (cheap snapshot gate).
    total: AtomicU64,
}

impl LiveEstimator {
    /// An estimator shaped for `spec`: one accumulator slot per
    /// (task, exit) and per (task, exit, allocation site).
    pub fn new(spec: &ProgramSpec) -> Self {
        let mut shape = Vec::with_capacity(spec.tasks.len());
        let mut alloc_base = Vec::with_capacity(spec.tasks.len());
        let mut exit_slots = 0usize;
        let mut alloc_slots = 0usize;
        for task in &spec.tasks {
            shape.push((exit_slots, task.exits.len(), task.alloc_sites.len()));
            alloc_base.push(alloc_slots);
            exit_slots += task.exits.len();
            alloc_slots += task.exits.len() * task.alloc_sites.len();
        }
        LiveEstimator {
            program: spec.name.clone(),
            shape,
            counts: (0..exit_slots).map(|_| AtomicU64::new(0)).collect(),
            cycles: (0..exit_slots).map(|_| AtomicU64::new(0)).collect(),
            allocs: (0..alloc_slots).map(|_| AtomicU64::new(0)).collect(),
            alloc_base,
            total: AtomicU64::new(0),
        }
    }

    /// Records one invocation: `task` took `exit` after charging
    /// `cycles`, allocating `allocs[site]` objects per site. Lock-free;
    /// out-of-range ids are ignored (a shape-mismatched recorder must
    /// not corrupt neighbouring slots).
    pub fn record(&self, task: usize, exit: usize, cycles: u64, allocs: &[u64]) {
        let Some(&(base, exits, sites)) = self.shape.get(task) else {
            return;
        };
        if exit >= exits {
            return;
        }
        let slot = base + exit;
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.cycles[slot].fetch_add(cycles, Ordering::Relaxed);
        let abase = self.alloc_base[task] + exit * sites;
        for (site, &n) in allocs.iter().enumerate().take(sites) {
            if n > 0 {
                self.allocs[abase + site].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total invocations recorded so far.
    pub fn invocations(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Materializes the accumulated statistics as a [`Profile`].
    ///
    /// Tasks with zero observed invocations take their statistics from
    /// `baseline` when one is given — the Markov model refuses to
    /// predict a never-profiled task, so a partial live view must be
    /// completed by the static profile it is refining. Sequences are
    /// left empty: an estimate carries aggregate rates only, and the
    /// controller simulates with replay disabled.
    pub fn snapshot(&self, input: &str, baseline: Option<&Profile>) -> Profile {
        let mut tasks = Vec::with_capacity(self.shape.len());
        let mut total_cycles = 0u64;
        for (task, &(base, exits, sites)) in self.shape.iter().enumerate() {
            let mut tp = TaskProfile {
                exits: Vec::with_capacity(exits),
                sequence: Vec::new(),
            };
            let abase = self.alloc_base[task];
            let mut observed = 0u64;
            for exit in 0..exits {
                let count = self.counts[base + exit].load(Ordering::Relaxed);
                let cyc = self.cycles[base + exit].load(Ordering::Relaxed);
                observed += count;
                total_cycles += cyc;
                tp.exits.push(ExitStats {
                    count,
                    total_cycles: cyc,
                    site_allocs: (0..sites)
                        .map(|s| self.allocs[abase + exit * sites + s].load(Ordering::Relaxed))
                        .collect(),
                });
            }
            if observed == 0 {
                if let Some(b) = baseline.and_then(|b| b.tasks.get(task)) {
                    let mut fallback = b.clone();
                    fallback.sequence.clear();
                    total_cycles += fallback.exits.iter().map(|e| e.total_cycles).sum::<u64>();
                    tasks.push(fallback);
                    continue;
                }
            }
            tasks.push(tp);
        }
        Profile {
            program: self.program.clone(),
            input: input.to_string(),
            tasks,
            total_cycles,
        }
    }
}

/// A stable FNV-1a fingerprint of a profile's aggregate statistics
/// (counts, cycles, allocation totals per (task, exit)). The adaptive
/// controller keys its persistent `SimCache` on this: while the
/// estimated profile is unchanged between ticks, every previously
/// simulated layout replays for free; when it moves, the cache is
/// cleared (simulation results are a function of the profile).
pub fn profile_fingerprint(profile: &Profile) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(FNV_PRIME)
    }
    let mut h = FNV_OFFSET;
    for tp in &profile.tasks {
        h = eat(h, tp.exits.len() as u64);
        for es in &tp.exits {
            h = eat(h, es.count);
            h = eat(h, es.total_cycles);
            for &a in &es.site_allocs {
                h = eat(h, a);
            }
        }
    }
    h
}

/// Folds recorded [`EventKind::TaskExit`] / [`EventKind::TaskAlloc`]
/// events back into a [`Profile`] — the offline twin of
/// [`LiveEstimator`], for post-hoc analysis of a run that recorded the
/// `adapt.*` sample stream. Tasks the report never observed fall back
/// to `baseline` exactly as in [`LiveEstimator::snapshot`].
pub fn estimate_profile(
    report: &TelemetryReport,
    spec: &ProgramSpec,
    input: &str,
    baseline: Option<&Profile>,
) -> Profile {
    let estimator = LiveEstimator::new(spec);
    let mut allocs_scratch: Vec<u64> = Vec::new();
    for event in &report.events {
        match event.kind {
            EventKind::TaskExit => {
                let (task, exit) = unpack_task_exit(event.a);
                estimator.record(task as usize, exit as usize, event.b, &[]);
            }
            EventKind::TaskAlloc => {
                let (task, exit) = unpack_task_exit(event.a);
                let (task, exit, site) = (task as usize, exit as usize, event.b as usize);
                let Some(&(_, exits, sites)) = estimator.shape.get(task) else {
                    continue;
                };
                if exit >= exits || site >= sites {
                    continue;
                }
                allocs_scratch.clear();
                allocs_scratch.resize(sites, 0);
                allocs_scratch[site] = event.c;
                // Allocation-only record: counts stay untouched by
                // feeding the slot directly, not via `record` (which
                // would add a phantom invocation).
                let abase = estimator.alloc_base[task] + exit * sites;
                estimator.allocs[abase + site].fetch_add(event.c, Ordering::Relaxed);
            }
            _ => {}
        }
    }
    estimator.snapshot(input, baseline)
}

/// How far apart two profiles' exit-rate distributions sit, in
/// `[0, 1]`: the invocation-weighted mean, over tasks observed in
/// both, of the total-variation distance between their per-task exit
/// distributions. 0 means every shared task takes its exits at
/// identical rates; 1 means they disagree completely. Tasks observed
/// in only one profile contribute their full weight at distance 1.
pub fn rate_divergence(observed: &Profile, model: &Profile) -> f64 {
    let tasks = observed.tasks.len().max(model.tasks.len());
    let mut weight_total = 0.0f64;
    let mut weighted = 0.0f64;
    for t in 0..tasks {
        let empty = TaskProfile::default();
        let a = observed.tasks.get(t).unwrap_or(&empty);
        let b = model.tasks.get(t).unwrap_or(&empty);
        let (na, nb) = (a.invocations(), b.invocations());
        if na == 0 && nb == 0 {
            continue;
        }
        let weight = (na + nb) as f64;
        weight_total += weight;
        if na == 0 || nb == 0 {
            weighted += weight;
            continue;
        }
        let exits = a.exits.len().max(b.exits.len());
        let mut tv = 0.0f64;
        for e in 0..exits {
            let pa = a.exits.get(e).map_or(0.0, |s| s.count as f64 / na as f64);
            let pb = b.exits.get(e).map_or(0.0, |s| s.count as f64 / nb as f64);
            tv += (pa - pb).abs();
        }
        weighted += weight * (tv / 2.0);
    }
    if weight_total == 0.0 {
        0.0
    } else {
        weighted / weight_total
    }
}

/// Convenience: the tasks of `spec` the profile observed at least once.
pub fn observed_tasks(profile: &Profile, spec: &ProgramSpec) -> Vec<TaskId> {
    (0..spec.tasks.len())
        .filter(|&t| profile.tasks.get(t).is_some_and(|tp| tp.invocations() > 0))
        .map(TaskId::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_lang::builder::ProgramBuilder;
    use bamboo_lang::spec::FlagExpr;

    fn spec() -> ProgramSpec {
        let mut b: ProgramBuilder<()> = ProgramBuilder::new("est");
        let s = b.class("StartupObject", &["initialstate"]);
        let w = b.class("W", &["ready"]);
        let init = b.flag(s, "initialstate");
        let ready = b.flag(w, "ready");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .alloc(w, &[(ready, true)], &[])
            .exit("", |e| e.set(0, init, false))
            .body(())
            .finish();
        b.task("work")
            .param("w", w, FlagExpr::flag(ready))
            .exit("more", |e| e.set(0, ready, true))
            .exit("done", |e| e.set(0, ready, false))
            .body(())
            .finish();
        b.build().unwrap().spec
    }

    #[test]
    fn estimator_accumulates_and_snapshots() {
        let spec = spec();
        let est = LiveEstimator::new(&spec);
        est.record(0, 0, 100, &[4]);
        for _ in 0..3 {
            est.record(1, 0, 10, &[]);
        }
        est.record(1, 1, 20, &[]);
        assert_eq!(est.invocations(), 5);
        let p = est.snapshot("live", None);
        assert_eq!(p.total_cycles, 150);
        assert_eq!(p.tasks[0].exits[0].count, 1);
        assert_eq!(p.tasks[0].exits[0].site_allocs, vec![4]);
        assert_eq!(p.tasks[1].exits[0].count, 3);
        assert_eq!(p.tasks[1].exits[0].mean_cycles(), 10);
        assert_eq!(p.tasks[1].exits[1].count, 1);
        assert!(p.tasks.iter().all(|t| t.sequence.is_empty()));
    }

    #[test]
    fn out_of_range_records_are_ignored() {
        let spec = spec();
        let est = LiveEstimator::new(&spec);
        est.record(99, 0, 10, &[]);
        est.record(0, 99, 10, &[]);
        est.record(0, 0, 10, &[1, 2, 3, 4, 5, 6]); // excess sites dropped
        assert_eq!(est.invocations(), 1);
        let p = est.snapshot("live", None);
        assert_eq!(p.tasks[0].exits[0].site_allocs, vec![1]);
    }

    #[test]
    fn unobserved_tasks_fall_back_to_baseline() {
        let spec = spec();
        let est = LiveEstimator::new(&spec);
        est.record(0, 0, 50, &[2]);
        // Baseline knows `work`; the live view never saw it.
        let base_est = LiveEstimator::new(&spec);
        base_est.record(1, 0, 7, &[]);
        let baseline = base_est.snapshot("base", None);
        let p = est.snapshot("live", Some(&baseline));
        assert_eq!(p.tasks[1].exits[0].count, 1);
        assert_eq!(p.tasks[1].exits[0].mean_cycles(), 7);
        // Without a baseline the task stays unobserved.
        let p = est.snapshot("live", None);
        assert_eq!(p.tasks[1].invocations(), 0);
        assert_eq!(observed_tasks(&p, &spec), vec![TaskId::new(0)]);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let spec = spec();
        let est = LiveEstimator::new(&spec);
        est.record(0, 0, 100, &[4]);
        let a = profile_fingerprint(&est.snapshot("x", None));
        let b = profile_fingerprint(&est.snapshot("y", None));
        assert_eq!(a, b, "input label must not affect the fingerprint");
        est.record(1, 0, 10, &[]);
        let c = profile_fingerprint(&est.snapshot("x", None));
        assert_ne!(a, c, "new observations must move the fingerprint");
    }

    #[test]
    fn divergence_is_zero_on_self_and_positive_on_shift() {
        let spec = spec();
        let est = LiveEstimator::new(&spec);
        est.record(1, 0, 10, &[]);
        est.record(1, 0, 10, &[]);
        est.record(1, 1, 10, &[]);
        let a = est.snapshot("a", None);
        assert_eq!(rate_divergence(&a, &a), 0.0);
        // Shifted: `work` now overwhelmingly takes exit 1.
        let est = LiveEstimator::new(&spec);
        est.record(1, 0, 10, &[]);
        est.record(1, 1, 10, &[]);
        est.record(1, 1, 10, &[]);
        let b = est.snapshot("b", None);
        let d = rate_divergence(&a, &b);
        assert!(d > 0.0 && d <= 1.0, "divergence {d}");
    }

    #[test]
    fn offline_estimate_matches_live() {
        use crate::Telemetry;
        let spec = spec();
        let telemetry = Telemetry::enabled(1);
        let mut sink = telemetry.worker(0);
        sink.task_exit(1, 0, 0, 100, 1);
        sink.task_alloc(1, 0, 0, 0, 4);
        sink.task_exit(2, 1, 0, 10, 2);
        sink.task_exit(3, 1, 1, 20, 3);
        sink.submit();
        let offline = estimate_profile(&telemetry.report(), &spec, "live", None);

        let est = LiveEstimator::new(&spec);
        est.record(0, 0, 100, &[4]);
        est.record(1, 0, 10, &[]);
        est.record(1, 1, 20, &[]);
        let live = est.snapshot("live", None);
        assert_eq!(offline, live);
    }
}
