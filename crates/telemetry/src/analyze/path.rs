//! The observed critical path.
//!
//! [`ObservedPath::from_graph`] converts an [`ObservedGraph`] into the
//! scheduler's trace shape and runs `bamboo_schedule::critpath` on it —
//! the paper's §4.5.1 analysis, applied to a *real* execution instead
//! of a simulated one. The result is the chain of invocations whose
//! completion gated the makespan, split into compute and wait.

use super::graph::ObservedGraph;
use crate::event::Timestamp;
use bamboo_lang::spec::ProgramSpec;
use bamboo_schedule::critpath;
use std::fmt::Write as _;

/// One invocation on the observed critical path.
#[derive(Clone, Copy, Debug)]
pub struct PathStep {
    /// Runtime-minted invocation id.
    pub inv: u64,
    /// Task id word.
    pub task: u64,
    /// Group-instance id word.
    pub instance: u64,
    /// Executing core.
    pub core: u32,
    /// Body start.
    pub start: Timestamp,
    /// Body end.
    pub end: Timestamp,
    /// Formation-to-start latency.
    pub queue_wait: u64,
    /// Whether the invocation was work-stolen.
    pub stolen: bool,
}

/// The critical path of an observed execution.
#[derive(Clone, Debug)]
pub struct ObservedPath {
    /// Positions (into [`ObservedGraph::invocations`]) of the path, in
    /// execution order.
    pub indexes: Vec<usize>,
    /// End of the last invocation (the observed makespan).
    pub makespan: u64,
    /// Sum of body durations along the path.
    pub compute: u64,
    /// Makespan minus path compute: time the path spent waiting on
    /// queues, locks, or transfers. (Saturating: bodies on the path may
    /// overlap slightly because objects are released mid-body.)
    pub wait: u64,
    /// Path invocations that started later than their data was ready
    /// (resource-delayed, §4.5.2 — the DSA's migration targets).
    pub resource_delayed: usize,
    /// The path, resolved into per-invocation records.
    pub steps: Vec<PathStep>,
}

impl ObservedPath {
    /// Runs the critical-path analysis over the observed graph.
    pub fn from_graph(graph: &ObservedGraph) -> Self {
        let trace = graph.to_trace();
        let indexes = critpath::critical_path(&trace);
        let resource_delayed = critpath::resource_delayed(&trace, &indexes).len();
        let compute: u64 = indexes.iter().map(|&i| trace.tasks[i].duration()).sum();
        let steps = indexes
            .iter()
            .map(|&i| {
                let inv = &graph.invocations[i];
                PathStep {
                    inv: inv.id,
                    task: inv.task,
                    instance: inv.instance,
                    core: inv.core,
                    start: inv.start,
                    end: inv.end,
                    queue_wait: inv.queue_wait(),
                    stolen: inv.stolen_from.is_some(),
                }
            })
            .collect();
        ObservedPath {
            indexes,
            makespan: trace.makespan,
            compute,
            wait: trace.makespan.saturating_sub(compute),
            resource_delayed,
            steps,
        }
    }

    /// Fraction of the makespan the path spent computing (clamped to 1;
    /// a low share means the execution was gated by waiting, not work).
    pub fn compute_share(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            (self.compute as f64 / self.makespan as f64).min(1.0)
        }
    }

    /// Renders the path as an aligned table; task names resolve through
    /// `spec` when given.
    pub fn table(&self, spec: Option<&ProgramSpec>) -> String {
        let mut out = format!(
            "observed critical path: {} steps, makespan {}, compute {} ({:.1}%), wait {}, {} resource-delayed\n",
            self.steps.len(),
            self.makespan,
            self.compute,
            100.0 * self.compute_share(),
            self.wait,
            self.resource_delayed,
        );
        let _ = writeln!(
            out,
            "   # task             inv  core        start          end   queue-wait"
        );
        for (i, s) in self.steps.iter().enumerate() {
            let name = spec
                .and_then(|sp| sp.tasks.get(s.task as usize))
                .map(|t| t.name.clone())
                .unwrap_or_else(|| format!("task{}", s.task));
            let _ = writeln!(
                out,
                "{i:>4} {name:<16} {:>4} {:>5} {:>12} {:>12} {:>12}{}",
                s.inv,
                s.core,
                s.start,
                s.end,
                s.queue_wait,
                if s.stolen { "  (stolen)" } else { "" },
            );
        }
        out
    }

    /// Serializes the path as a JSON object.
    pub fn json(&self) -> String {
        let mut out = format!(
            "{{\"makespan\":{},\"compute\":{},\"wait\":{},\"resource_delayed\":{},\"steps\":[",
            self.makespan, self.compute, self.wait, self.resource_delayed
        );
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"inv\":{},\"task\":{},\"instance\":{},\"core\":{},\"start\":{},\"end\":{},\"queue_wait\":{},\"stolen\":{}}}",
                s.inv, s.task, s.instance, s.core, s.start, s.end, s.queue_wait, s.stolen
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::testutil::two_core_report;
    use crate::json;

    #[test]
    fn path_runs_startup_to_reduce() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let path = ObservedPath::from_graph(&graph);
        assert_eq!(path.makespan, 9_000);
        assert_eq!(path.steps.first().map(|s| s.task), Some(0));
        assert_eq!(path.steps.last().map(|s| s.task), Some(2));
        assert_eq!(path.compute + path.wait, path.makespan);
        assert!(path.compute_share() > 0.0 && path.compute_share() <= 1.0);
    }

    #[test]
    fn stolen_steps_are_flagged() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let path = ObservedPath::from_graph(&graph);
        // The fixture's path goes through the stolen work invocation
        // (its output arrives last at the reduce).
        assert!(path.steps.iter().any(|s| s.stolen));
    }

    #[test]
    fn table_and_json_render() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let path = ObservedPath::from_graph(&graph);
        let table = path.table(None);
        assert!(table.contains("observed critical path"), "{table}");
        assert!(table.contains("(stolen)"), "{table}");
        let doc = json::parse(&path.json()).unwrap();
        assert_eq!(doc.get("makespan").unwrap().as_f64(), Some(9_000.0));
        assert_eq!(
            doc.get("steps").unwrap().as_arr().unwrap().len(),
            path.steps.len()
        );
    }
}
