//! The CI perf-regression gate.
//!
//! `BENCH_threaded.json` (written by the bench crate's A/B harness on a
//! reference machine) is the baseline; a fresh run on the current build
//! is the observation. The gate's checks are chosen to be meaningful on
//! a *different* machine than the one that recorded the baseline:
//!
//! * invocation counts are deterministic and must match **exactly** —
//!   a mismatch is a functional regression, not noise;
//! * lock retries per invocation get a small absolute tolerance band —
//!   this is the check that catches an accidentally introduced retry
//!   loop (the synthetic-slowdown acceptance test);
//! * throughput and speedup get generous floors (CI containers are
//!   slow and noisy, but a real regression collapses them by integer
//!   factors);
//! * the observed critical path must do *some* compute — a near-zero
//!   compute share means the executor spent the run waiting, which no
//!   amount of machine noise explains.

use crate::json::{self, write_str, Value};
use std::fmt::Write as _;

/// Absolute slack on lock retries per invocation.
pub const RETRY_SLACK_PER_INVOCATION: f64 = 0.25;
/// Observed throughput must reach this fraction of the recorded one.
pub const THROUGHPUT_FLOOR_FRACTION: f64 = 0.05;
/// Observed dispatch speedup must reach this fraction of the recorded one.
pub const SPEEDUP_FLOOR_FRACTION: f64 = 0.35;
/// Minimum compute share of the observed critical path.
pub const COMPUTE_SHARE_FLOOR: f64 = 0.01;

/// One benchmark's recorded reference numbers (the `optimized` row of
/// `BENCH_threaded.json`, plus the A/B speedup).
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineBench {
    /// Benchmark name as recorded (e.g. `"KMeans"`).
    pub name: String,
    /// Invocations per run (deterministic).
    pub invocations: f64,
    /// Lock retries per run.
    pub lock_retries: f64,
    /// Best wall time over the recorded reps, microseconds.
    pub best_wall_us: f64,
    /// Invocations dispatched per millisecond.
    pub throughput: f64,
    /// Optimized-over-baseline dispatch-throughput speedup.
    pub speedup: f64,
}

/// The parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Core count of the machine model the deployments were planned for.
    pub machine_cores: u64,
    /// One entry per recorded benchmark.
    pub benches: Vec<BaselineBench>,
}

/// Parses a `BENCH_threaded.json` document.
///
/// # Errors
///
/// Returns a message when the text is not JSON or required members are
/// missing/mistyped.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text)?;
    let machine_cores = doc
        .get("machine_cores")
        .and_then(Value::as_f64)
        .ok_or("missing machine_cores")? as u64;
    let Some(Value::Obj(benches)) = doc.get("benches") else {
        return Err("missing benches object".into());
    };
    let mut out = Vec::with_capacity(benches.len());
    for (name, bench) in benches {
        let optimized = bench
            .get("optimized")
            .ok_or_else(|| format!("{name}: missing optimized"))?;
        let field = |key: &str| -> Result<f64, String> {
            optimized
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing optimized.{key}"))
        };
        out.push(BaselineBench {
            name: name.clone(),
            invocations: field("invocations")?,
            lock_retries: field("lock_retries")?,
            best_wall_us: field("best_wall_us")?,
            throughput: field("throughput_inv_per_ms")?,
            speedup: bench
                .get("dispatch_throughput_speedup")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing dispatch_throughput_speedup"))?,
        });
    }
    Ok(Baseline {
        machine_cores,
        benches: out,
    })
}

/// One benchmark's numbers measured on the build under test.
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Benchmark name; matched against [`BaselineBench::name`].
    pub name: String,
    /// Invocations per run.
    pub invocations: f64,
    /// Lock retries per run.
    pub lock_retries: f64,
    /// Best wall time, microseconds.
    pub best_wall_us: f64,
    /// Invocations dispatched per millisecond.
    pub throughput: f64,
    /// Optimized-over-baseline dispatch-throughput speedup.
    pub speedup: f64,
    /// Compute share of the observed critical path (0..=1).
    pub compute_share: f64,
}

/// One evaluated tolerance check.
#[derive(Clone, Debug)]
pub struct Check {
    /// Benchmark the check belongs to.
    pub bench: String,
    /// Stable check identifier.
    pub name: &'static str,
    /// The measured value.
    pub observed: f64,
    /// The boundary it was compared against.
    pub limit: f64,
    /// Whether the check passed.
    pub pass: bool,
    /// Human-readable comparison.
    pub detail: String,
}

/// The gate's complete output.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Every evaluated check.
    pub checks: Vec<Check>,
}

impl Verdict {
    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    /// Renders the verdict as an aligned table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "regression gate: {} ({} checks, {} failed)\n",
            if self.pass() { "PASS" } else { "FAIL" },
            self.checks.len(),
            self.failures(),
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "  [{}] {:<12} {:<28} {}",
                if c.pass { "ok" } else { "FAIL" },
                c.bench,
                c.name,
                c.detail
            );
        }
        out
    }

    /// Serializes the verdict as a JSON document (the CI artifact).
    ///
    /// When any `serving-*` (or `adapt-*`, `scope-*`) checks are
    /// present a `serving` (`adapt`, `scope`) section summarizes them,
    /// so CI jobs gating only on one surface can read one member
    /// instead of filtering the flat check list.
    pub fn json(&self) -> String {
        let mut out = format!("{{\"pass\":{}", self.pass());
        let serving: Vec<&Check> = self
            .checks
            .iter()
            .filter(|c| c.name.starts_with("serving-"))
            .collect();
        if !serving.is_empty() {
            let _ = write!(
                out,
                ",\"serving\":{{\"pass\":{},\"checks\":{},\"failed\":{}}}",
                serving.iter().all(|c| c.pass),
                serving.len(),
                serving.iter().filter(|c| !c.pass).count(),
            );
        }
        let adapt: Vec<&Check> = self
            .checks
            .iter()
            .filter(|c| c.name.starts_with("adapt-"))
            .collect();
        if !adapt.is_empty() {
            let _ = write!(
                out,
                ",\"adapt\":{{\"pass\":{},\"checks\":{},\"failed\":{}}}",
                adapt.iter().all(|c| c.pass),
                adapt.len(),
                adapt.iter().filter(|c| !c.pass).count(),
            );
        }
        let scope: Vec<&Check> = self
            .checks
            .iter()
            .filter(|c| c.name.starts_with("scope-"))
            .collect();
        if !scope.is_empty() {
            let _ = write!(
                out,
                ",\"scope\":{{\"pass\":{},\"checks\":{},\"failed\":{}}}",
                scope.iter().all(|c| c.pass),
                scope.len(),
                scope.iter().filter(|c| !c.pass).count(),
            );
        }
        out.push_str(",\"checks\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"bench\":");
            write_str(&mut out, &c.bench);
            out.push_str(",\"check\":");
            write_str(&mut out, c.name);
            out.push_str(",\"observed\":");
            json::write_f64(&mut out, c.observed);
            out.push_str(",\"limit\":");
            json::write_f64(&mut out, c.limit);
            let _ = write!(out, ",\"pass\":{}", c.pass);
            out.push_str(",\"detail\":");
            write_str(&mut out, &c.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// One benchmark's recorded synthesis reference numbers (from
/// `BENCH_dsa.json`, written by the bench crate's `dsa` harness).
#[derive(Clone, Debug, PartialEq)]
pub struct DsaBaselineBench {
    /// Benchmark name as recorded (e.g. `"KMeans"`).
    pub name: String,
    /// Best serial (1 thread, memoization off) synthesis wall time, µs.
    pub serial_wall_us: f64,
    /// Best parallel (all threads, memoized) synthesis wall time, µs.
    pub parallel_wall_us: f64,
    /// Serial-over-parallel wall-time speedup.
    pub speedup: f64,
    /// Simulations the parallel configuration ran (deterministic).
    pub simulations: f64,
    /// Simulation-cache hits of the parallel configuration (deterministic).
    pub cache_hits: f64,
    /// Best simulated makespan of the synthesized plan (deterministic).
    pub best_makespan: f64,
}

/// The parsed `BENCH_dsa.json` baseline.
#[derive(Clone, Debug, Default)]
pub struct DsaBaseline {
    /// Core count of the machine model synthesis targeted.
    pub machine_cores: u64,
    /// Worker threads available on the recording host.
    pub host_threads: u64,
    /// One entry per recorded benchmark.
    pub benches: Vec<DsaBaselineBench>,
}

/// Parses a `BENCH_dsa.json` document.
///
/// # Errors
///
/// Returns a message when the text is not JSON or required members are
/// missing/mistyped.
pub fn parse_dsa_baseline(text: &str) -> Result<DsaBaseline, String> {
    let doc = json::parse(text)?;
    let top = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing {key}"))
    };
    let machine_cores = top("machine_cores")? as u64;
    let host_threads = top("host_threads")? as u64;
    let Some(Value::Obj(benches)) = doc.get("benches") else {
        return Err("missing benches object".into());
    };
    let mut out = Vec::with_capacity(benches.len());
    for (name, bench) in benches {
        let field = |key: &str| -> Result<f64, String> {
            bench
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing {key}"))
        };
        out.push(DsaBaselineBench {
            name: name.clone(),
            serial_wall_us: field("serial_wall_us")?,
            parallel_wall_us: field("parallel_wall_us")?,
            speedup: field("wall_speedup")?,
            simulations: field("simulations")?,
            cache_hits: field("cache_hits")?,
            best_makespan: field("best_makespan")?,
        });
    }
    Ok(DsaBaseline {
        machine_cores,
        host_threads,
        benches: out,
    })
}

/// One benchmark's synthesis numbers measured on the build under test.
#[derive(Clone, Debug, Default)]
pub struct DsaObservation {
    /// Benchmark name; matched against [`DsaBaselineBench::name`].
    pub name: String,
    /// Best makespan synthesized by the serial configuration.
    pub serial_makespan: f64,
    /// Best makespan synthesized by the parallel configuration.
    pub parallel_makespan: f64,
    /// Simulations the parallel configuration ran.
    pub simulations: f64,
    /// Serial-over-parallel wall-time speedup measured now.
    pub wall_speedup: f64,
}

/// Minimum host threads before the DSA speedup check is meaningful.
pub const DSA_SPEEDUP_MIN_HOST_THREADS: u64 = 4;
/// Observed DSA wall speedup must reach this fraction of the recorded one
/// (when both hosts have enough threads).
pub const DSA_SPEEDUP_FLOOR_FRACTION: f64 = 0.35;

/// Evaluates synthesis observations against the `BENCH_dsa.json`
/// baseline, returning checks to append to the verdict.
///
/// Determinism checks are exact — synthesis is bit-reproducible from a
/// seed on any host. The wall-speedup floor only applies when both the
/// recording host and `host_threads` (the measuring host) have at least
/// [`DSA_SPEEDUP_MIN_HOST_THREADS`] workers; below that the check passes
/// with an explanatory detail, because a serial host cannot exhibit
/// parallel speedup and the determinism checks still hold the line.
pub fn evaluate_dsa(
    baseline: &DsaBaseline,
    observations: &[DsaObservation],
    host_threads: u64,
) -> Vec<Check> {
    let mut checks = Vec::new();
    for base in &baseline.benches {
        let Some(obs) = observations.iter().find(|o| o.name == base.name) else {
            checks.push(check(
                &base.name,
                "dsa-bench-present",
                0.0,
                1.0,
                false,
                "must be",
            ));
            continue;
        };
        checks.push(check(
            &base.name,
            "dsa-determinism",
            obs.parallel_makespan,
            obs.serial_makespan,
            obs.parallel_makespan == obs.serial_makespan,
            "==",
        ));
        checks.push(check(
            &base.name,
            "dsa-makespan-exact",
            obs.parallel_makespan,
            base.best_makespan,
            obs.parallel_makespan == base.best_makespan,
            "==",
        ));
        checks.push(check(
            &base.name,
            "dsa-sims-exact",
            obs.simulations,
            base.simulations,
            obs.simulations == base.simulations,
            "==",
        ));
        if host_threads >= DSA_SPEEDUP_MIN_HOST_THREADS
            && baseline.host_threads >= DSA_SPEEDUP_MIN_HOST_THREADS
        {
            let floor = base.speedup * DSA_SPEEDUP_FLOOR_FRACTION;
            checks.push(check(
                &base.name,
                "dsa-speedup-floor",
                obs.wall_speedup,
                floor,
                obs.wall_speedup >= floor,
                ">=",
            ));
        } else {
            checks.push(Check {
                bench: base.name.clone(),
                name: "dsa-speedup-floor",
                observed: obs.wall_speedup,
                limit: 0.0,
                pass: true,
                detail: format!(
                    "skipped: host has {host_threads} thread(s), baseline recorded with {} (need >= {DSA_SPEEDUP_MIN_HOST_THREADS} on both)",
                    baseline.host_threads,
                ),
            });
        }
    }
    checks
}

/// One benchmark's chaos-run measurements: a clean (fault-free) run and
/// two same-seed faulty runs under the default fault plan.
#[derive(Clone, Debug, Default)]
pub struct ChaosObservation {
    /// Benchmark name.
    pub name: String,
    /// Rendered fault schedule of the first faulty run.
    pub schedule_a: String,
    /// Rendered fault schedule of the second same-seed faulty run.
    pub schedule_b: String,
    /// Result checksum of the fault-free run.
    pub clean_checksum: u64,
    /// Result checksum of the first faulty run.
    pub faulty_checksum: u64,
    /// Result checksum of the second faulty run.
    pub faulty_checksum_b: u64,
    /// Whether every run terminated (no hang, no error).
    pub terminated: bool,
    /// Faults that actually fired in the first faulty run.
    pub faults_injected: u64,
}

/// Evaluates chaos observations: the determinism contract (same seed ⇒
/// byte-identical fault schedule) and recovery transparency (faulty
/// output identical to the fault-free run), per benchmark.
///
/// `chaos-fault-activity` is a meta-check on the harness itself: a plan
/// that injects nothing would make the other checks vacuous. Boolean
/// outcomes are encoded 1.0/0.0 in [`Check::observed`].
pub fn evaluate_chaos(observations: &[ChaosObservation]) -> Vec<Check> {
    let mut checks = Vec::new();
    for obs in observations {
        checks.push(check(
            &obs.name,
            "chaos-terminates",
            if obs.terminated { 1.0 } else { 0.0 },
            1.0,
            obs.terminated,
            "==",
        ));
        let schedules_match = !obs.schedule_a.is_empty() && obs.schedule_a == obs.schedule_b;
        checks.push(Check {
            bench: obs.name.clone(),
            name: "chaos-schedule-deterministic",
            observed: if schedules_match { 1.0 } else { 0.0 },
            limit: 1.0,
            pass: schedules_match,
            detail: if schedules_match {
                "same seed, byte-identical fault schedule".into()
            } else {
                format!(
                    "schedules diverge:\n    a: {}\n    b: {}",
                    obs.schedule_a.replace('\n', "; "),
                    obs.schedule_b.replace('\n', "; ")
                )
            },
        });
        let outputs_match = obs.faulty_checksum == obs.clean_checksum
            && obs.faulty_checksum_b == obs.clean_checksum;
        checks.push(Check {
            bench: obs.name.clone(),
            name: "chaos-output-identical",
            observed: obs.faulty_checksum as f64,
            limit: obs.clean_checksum as f64,
            pass: outputs_match,
            detail: format!(
                "clean {:#x} vs faulty {:#x}/{:#x}",
                obs.clean_checksum, obs.faulty_checksum, obs.faulty_checksum_b
            ),
        });
        checks.push(check(
            &obs.name,
            "chaos-fault-activity",
            obs.faults_injected as f64,
            1.0,
            obs.faults_injected >= 1,
            ">=",
        ));
    }
    checks
}

/// One application's recorded serving reference numbers (from
/// `BENCH_serving.json`, written by the bench crate's `serving` harness).
#[derive(Clone, Debug, PartialEq)]
pub struct ServingBaselineBench {
    /// Application name as recorded (e.g. `"KMeans"`).
    pub name: String,
    /// p99 latency of an uncontended (solo) request, microseconds.
    pub solo_p99_us: f64,
    /// The p99 service-level objective the sweep held, microseconds.
    pub slo_p99_us: f64,
    /// Highest offered load (requests/second) that met the SLO with
    /// zero shedding.
    pub max_sustainable_rps: f64,
    /// The recorded adaptive-vs-frozen comparison, when the recording
    /// harness ran one (absent on baselines from before the adaptive
    /// re-layout loop existed).
    pub adapt: Option<AdaptBaseline>,
    /// The recorded scope-off-vs-scope-on overhead comparison, when the
    /// recording harness ran one (absent on baselines from before the
    /// live observability plane existed).
    pub scope: Option<ScopeBaseline>,
}

/// One application's recorded scope-overhead numbers (the `scope`
/// member of a `BENCH_serving.json` bench): two legs serve the same
/// seeded traffic at the recorded operating point, one with the live
/// observability plane off and one with it on.
#[derive(Clone, Debug, PartialEq)]
pub struct ScopeBaseline {
    /// p99 with the scope plane off, microseconds.
    pub off_p99_us: f64,
    /// p99 with the scope plane on, microseconds.
    pub on_p99_us: f64,
    /// Completed requests/second with the scope plane off.
    pub off_rps: f64,
    /// Completed requests/second with the scope plane on.
    pub on_rps: f64,
}

/// One application's recorded adaptive-vs-frozen numbers (the `adapt`
/// member of a `BENCH_serving.json` bench): both legs serve the same
/// shifting bursty mix from the same deliberately stale layout; the
/// frozen leg keeps it, the adaptive leg hot-migrates off it.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptBaseline {
    /// p99 of the mix under the stale layout, microseconds.
    pub frozen_p99_us: f64,
    /// p99 of the mix under the layout the controller converged on
    /// (the post-relayout latency), microseconds.
    pub adaptive_p99_us: f64,
    /// Hot relayouts the adaptive leg committed.
    pub relayouts: f64,
    /// Every leg completed every admitted request.
    pub exact: bool,
}

/// The parsed `BENCH_serving.json` baseline.
#[derive(Clone, Debug, Default)]
pub struct ServingBaseline {
    /// Core count of the machine model the deployments were planned for.
    pub machine_cores: u64,
    /// SLO multiplier over solo p99 the recording sweep used.
    pub slo_multiplier: f64,
    /// One entry per recorded application.
    pub benches: Vec<ServingBaselineBench>,
}

/// Parses a `BENCH_serving.json` document.
///
/// # Errors
///
/// Returns a message when the text is not JSON or required members are
/// missing/mistyped.
pub fn parse_serving_baseline(text: &str) -> Result<ServingBaseline, String> {
    let doc = json::parse(text)?;
    let top = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing {key}"))
    };
    let machine_cores = top("machine_cores")? as u64;
    let slo_multiplier = top("slo_multiplier")?;
    let Some(Value::Obj(benches)) = doc.get("benches") else {
        return Err("missing benches object".into());
    };
    let mut out = Vec::with_capacity(benches.len());
    for (name, bench) in benches {
        let field = |key: &str| -> Result<f64, String> {
            bench
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing {key}"))
        };
        let adapt = match bench.get("adapt") {
            None => None,
            Some(adapt) => {
                let afield = |key: &str| -> Result<f64, String> {
                    adapt
                        .get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("{name}: missing adapt.{key}"))
                };
                Some(AdaptBaseline {
                    frozen_p99_us: afield("frozen_p99_us")?,
                    adaptive_p99_us: afield("adaptive_p99_us")?,
                    relayouts: afield("relayouts")?,
                    exact: matches!(adapt.get("exact"), Some(Value::Bool(true))),
                })
            }
        };
        let scope = match bench.get("scope") {
            None => None,
            Some(scope) => {
                let sfield = |key: &str| -> Result<f64, String> {
                    scope
                        .get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("{name}: missing scope.{key}"))
                };
                Some(ScopeBaseline {
                    off_p99_us: sfield("off_p99_us")?,
                    on_p99_us: sfield("on_p99_us")?,
                    off_rps: sfield("off_rps")?,
                    on_rps: sfield("on_rps")?,
                })
            }
        };
        out.push(ServingBaselineBench {
            name: name.clone(),
            solo_p99_us: field("solo_p99_us")?,
            slo_p99_us: field("slo_p99_us")?,
            max_sustainable_rps: field("max_sustainable_rps")?,
            adapt,
            scope,
        });
    }
    Ok(ServingBaseline {
        machine_cores,
        slo_multiplier,
        benches: out,
    })
}

/// One application's serving numbers measured on the build under test:
/// a short fixed-seed open-loop run at a fraction of the recorded
/// sustainable load.
#[derive(Clone, Debug, Default)]
pub struct ServingObservation {
    /// Application name; matched against [`ServingBaselineBench::name`].
    pub name: String,
    /// Offered load of the probe run, requests/second.
    pub offered_rps: f64,
    /// Completed requests per second of wall time.
    pub completed_rps: f64,
    /// Requests past admission.
    pub admitted: f64,
    /// Requests whose ledger entry reached zero.
    pub completed: f64,
    /// Requests refused at admission.
    pub shed: f64,
    /// Invocations shed on the router's overflow path.
    pub router_shed: f64,
    /// Observed p99 latency, microseconds.
    pub p99_us: f64,
}

/// Observed p99 may exceed the recorded SLO by this factor — the
/// baseline host and the gating host can differ wildly, but a real
/// latency regression (a stalled ledger, a lost completion retried into
/// a timeout) blows past any constant factor.
pub const SERVING_P99_HOST_SLACK: f64 = 20.0;
/// Observed completion throughput must reach this fraction of the
/// recorded max sustainable load.
pub const SERVING_THROUGHPUT_FLOOR_FRACTION: f64 = 0.05;

/// Evaluates serving observations against the `BENCH_serving.json`
/// baseline, returning checks to append to the verdict (they also feed
/// the verdict's `serving` JSON section).
///
/// Request accounting is exact on any host — every admitted request
/// must complete and a clean low-load probe must shed nothing, at
/// admission or on the router. Latency and throughput get the usual
/// cross-host slack: p99 within [`SERVING_P99_HOST_SLACK`]× the
/// recorded SLO, completion throughput above
/// [`SERVING_THROUGHPUT_FLOOR_FRACTION`] of the recorded sustainable
/// load.
pub fn evaluate_serving(
    baseline: &ServingBaseline,
    observations: &[ServingObservation],
) -> Vec<Check> {
    let mut checks = Vec::new();
    for base in &baseline.benches {
        let Some(obs) = observations.iter().find(|o| o.name == base.name) else {
            checks.push(check(
                &base.name,
                "serving-bench-present",
                0.0,
                1.0,
                false,
                "must be",
            ));
            continue;
        };
        checks.push(check(
            &base.name,
            "serving-completions-exact",
            obs.completed,
            obs.admitted,
            obs.completed == obs.admitted && obs.admitted > 0.0,
            "==",
        ));
        checks.push(check(
            &base.name,
            "serving-shed-clean",
            obs.shed + obs.router_shed,
            0.0,
            obs.shed + obs.router_shed == 0.0,
            "==",
        ));
        let p99_limit = base.slo_p99_us * SERVING_P99_HOST_SLACK;
        checks.push(check(
            &base.name,
            "serving-p99-slo",
            obs.p99_us,
            p99_limit,
            obs.p99_us <= p99_limit,
            "<=",
        ));
        let floor = base.max_sustainable_rps * SERVING_THROUGHPUT_FLOOR_FRACTION;
        checks.push(check(
            &base.name,
            "serving-throughput-floor",
            obs.completed_rps,
            floor,
            obs.completed_rps >= floor,
            ">=",
        ));
    }
    checks
}

/// One application's live adaptive-probe numbers on the build under
/// test: a deterministic (stepped-pacing, fixed-seed) serve from a
/// deliberately stale layout with the re-layout controller armed.
#[derive(Clone, Debug, Default)]
pub struct AdaptObservation {
    /// Application name; matched against [`ServingBaselineBench::name`].
    pub name: String,
    /// Hot relayouts the controller committed.
    pub relayouts: f64,
    /// Requests past admission.
    pub admitted: f64,
    /// Requests whose ledger entry reached zero.
    pub completed: f64,
    /// Observed↔baseline exit-rate divergence before the first
    /// relayout, when measured.
    pub pre_divergence: Option<f64>,
    /// Divergence after the last relayout, when measured.
    pub post_divergence: Option<f64>,
}

/// Post-relayout divergence may exceed the pre-relayout one by this
/// factor before `adapt-improves-or-holds` fails — migrating must never
/// make the model fit *worse*, but the two snapshots are estimated from
/// different (arrival-dependent) sample counts, so an exact `<=` would
/// flake on estimator noise.
pub const ADAPT_DIVERGENCE_SLACK: f64 = 1.10;
/// How many recorded apps the adaptive leg must beat the frozen leg on
/// (post-relayout p99 strictly below the stale layout's).
pub const ADAPT_BASELINE_MIN_WINS: f64 = 2.0;

/// Evaluates the adaptive re-layout loop, returning `adapt-*` checks to
/// append to the verdict (they also feed the verdict's `adapt` JSON
/// section). No-op when the baseline predates the adaptive recording
/// (no bench has an `adapt` member).
///
/// Two kinds of evidence:
///
/// * **recorded** — the baseline's own adaptive-vs-frozen comparison
///   must be exact everywhere and the adaptive leg must win on at least
///   [`ADAPT_BASELINE_MIN_WINS`] recorded apps;
/// * **live** — per observed probe, the controller must commit at least
///   one hot relayout, account for every request exactly, and leave the
///   observed↔model rate divergence no worse than before
///   (`adapt-improves-or-holds`, within [`ADAPT_DIVERGENCE_SLACK`]).
pub fn evaluate_adapt(baseline: &ServingBaseline, observations: &[AdaptObservation]) -> Vec<Check> {
    let recorded: Vec<(&ServingBaselineBench, &AdaptBaseline)> = baseline
        .benches
        .iter()
        .filter_map(|b| b.adapt.as_ref().map(|a| (b, a)))
        .collect();
    if recorded.is_empty() {
        return Vec::new();
    }
    let mut checks = Vec::new();
    let wins = recorded
        .iter()
        .filter(|(_, a)| a.adaptive_p99_us < a.frozen_p99_us)
        .count() as f64;
    checks.push(check(
        "aggregate",
        "adapt-baseline-p99-wins",
        wins,
        ADAPT_BASELINE_MIN_WINS.min(recorded.len() as f64),
        wins >= ADAPT_BASELINE_MIN_WINS.min(recorded.len() as f64),
        ">=",
    ));
    for (base, adapt) in &recorded {
        checks.push(check(
            &base.name,
            "adapt-baseline-exact",
            if adapt.exact { 1.0 } else { 0.0 },
            1.0,
            adapt.exact,
            "==",
        ));
        let Some(obs) = observations.iter().find(|o| o.name == base.name) else {
            checks.push(check(
                &base.name,
                "adapt-bench-present",
                0.0,
                1.0,
                false,
                "must be",
            ));
            continue;
        };
        checks.extend(evaluate_adapt_probe(std::slice::from_ref(obs)));
    }
    checks
}

/// The live-probe subset of the `adapt-*` checks — per observation: at
/// least one hot relayout committed, exact request accounting, and
/// `adapt-improves-or-holds`. Standalone entry point for the doctor's
/// `--adapt-smoke` mode, which has no recorded baseline to gate against.
pub fn evaluate_adapt_probe(observations: &[AdaptObservation]) -> Vec<Check> {
    let mut checks = Vec::new();
    for obs in observations {
        checks.push(check(
            &obs.name,
            "adapt-relayout-occurred",
            obs.relayouts,
            1.0,
            obs.relayouts >= 1.0,
            ">=",
        ));
        checks.push(check(
            &obs.name,
            "adapt-completions-exact",
            obs.completed,
            obs.admitted,
            obs.completed == obs.admitted && obs.admitted > 0.0,
            "==",
        ));
        // "Holds" is trivially true when nothing migrated (no post
        // snapshot) or the baseline model was never attached.
        let (observed, limit, pass) = match (obs.pre_divergence, obs.post_divergence) {
            (Some(pre), Some(post)) => {
                let limit = pre * ADAPT_DIVERGENCE_SLACK;
                (post, limit, post <= limit)
            }
            (pre, _) => (0.0, pre.unwrap_or(0.0), true),
        };
        checks.push(check(
            &obs.name,
            "adapt-improves-or-holds",
            observed,
            limit,
            pass,
            "<=",
        ));
    }
    checks
}

/// One application's live scope-probe numbers on the build under test:
/// a deterministic (stepped-pacing, fixed-seed) serve with the live
/// observability plane armed, plus the span trees reconstructed for the
/// tail-sampled requests.
#[derive(Clone, Debug, Default)]
pub struct ScopeObservation {
    /// Application name; matched against [`ServingBaselineBench::name`].
    pub name: String,
    /// Arrivals the scope snapshot counted.
    pub arrived: f64,
    /// Admissions the scope snapshot counted.
    pub admitted: f64,
    /// Completions the scope snapshot counted.
    pub completed: f64,
    /// Sheds the scope snapshot counted.
    pub shed: f64,
    /// Tail-sampled requests whose span tree was reconstructed.
    pub trees: f64,
    /// Whether every reconstructed span tree's breakdown (compute +
    /// lock-wait + queue-wait + routing + idle) summed to its total
    /// latency *exactly*.
    pub partition_exact: bool,
}

/// Scope-on p99 may exceed scope-off p99 by this factor before
/// `scope-baseline-p99-overhead` fails (the ≤3% overhead budget,
/// recorded on the baseline host so it is exempt from cross-host
/// slack).
pub const SCOPE_P99_OVERHEAD_SLACK: f64 = 1.03;
/// Scope-on completion throughput must reach this fraction of the
/// scope-off throughput recorded at the same operating point.
pub const SCOPE_THROUGHPUT_FLOOR_FRACTION: f64 = 0.97;

/// Evaluates the live observability plane, returning `scope-*` checks
/// to append to the verdict (they also feed the verdict's `scope` JSON
/// section). No-op when the baseline predates the scope recording (no
/// bench has a `scope` member).
///
/// Two kinds of evidence:
///
/// * **recorded** — the baseline's own scope-off-vs-scope-on comparison
///   was measured on one host at one operating point, so it gates the
///   overhead budget tightly: scope-on p99 within
///   [`SCOPE_P99_OVERHEAD_SLACK`]× of scope-off, scope-on throughput
///   above [`SCOPE_THROUGHPUT_FLOOR_FRACTION`] of scope-off;
/// * **live** — per observed probe, the snapshot's request accounting
///   must balance exactly and every tail-sampled span tree must
///   partition its latency exactly ([`evaluate_scope_probe`]).
pub fn evaluate_scope(baseline: &ServingBaseline, observations: &[ScopeObservation]) -> Vec<Check> {
    let recorded: Vec<(&ServingBaselineBench, &ScopeBaseline)> = baseline
        .benches
        .iter()
        .filter_map(|b| b.scope.as_ref().map(|s| (b, s)))
        .collect();
    if recorded.is_empty() {
        return Vec::new();
    }
    let mut checks = Vec::new();
    for (base, scope) in &recorded {
        let p99_limit = scope.off_p99_us * SCOPE_P99_OVERHEAD_SLACK;
        checks.push(check(
            &base.name,
            "scope-baseline-p99-overhead",
            scope.on_p99_us,
            p99_limit,
            scope.on_p99_us <= p99_limit,
            "<=",
        ));
        let rps_floor = scope.off_rps * SCOPE_THROUGHPUT_FLOOR_FRACTION;
        checks.push(check(
            &base.name,
            "scope-baseline-throughput",
            scope.on_rps,
            rps_floor,
            scope.on_rps >= rps_floor,
            ">=",
        ));
        let Some(obs) = observations.iter().find(|o| o.name == base.name) else {
            checks.push(check(
                &base.name,
                "scope-bench-present",
                0.0,
                1.0,
                false,
                "must be",
            ));
            continue;
        };
        checks.extend(evaluate_scope_probe(std::slice::from_ref(obs)));
    }
    checks
}

/// The live-probe subset of the `scope-*` checks — per observation:
/// the snapshot's request accounting balances exactly (arrived =
/// admitted + shed, completed = admitted on a drained run) and every
/// tail-sampled span tree partitions its latency exactly. Standalone
/// entry point for the doctor's `--scope-smoke` mode, which has no
/// recorded baseline to gate against.
pub fn evaluate_scope_probe(observations: &[ScopeObservation]) -> Vec<Check> {
    let mut checks = Vec::new();
    for obs in observations {
        let balanced = obs.arrived == obs.admitted + obs.shed
            && obs.completed == obs.admitted
            && obs.admitted > 0.0;
        checks.push(Check {
            bench: obs.name.clone(),
            name: "scope-accounting-exact",
            observed: obs.completed,
            limit: obs.admitted,
            pass: balanced,
            detail: format!(
                "arrived {} = admitted {} + shed {}, completed {}",
                obs.arrived, obs.admitted, obs.shed, obs.completed
            ),
        });
        checks.push(check(
            &obs.name,
            "scope-sampled-trees",
            obs.trees,
            1.0,
            obs.trees >= 1.0,
            ">=",
        ));
        checks.push(check(
            &obs.name,
            "scope-partition-exact",
            if obs.partition_exact { 1.0 } else { 0.0 },
            1.0,
            obs.partition_exact,
            "==",
        ));
    }
    checks
}

fn check(
    bench: &str,
    name: &'static str,
    observed: f64,
    limit: f64,
    pass: bool,
    cmp: &str,
) -> Check {
    Check {
        bench: bench.to_string(),
        name,
        observed,
        limit,
        pass,
        detail: format!("observed {observed:.3} {cmp} {limit:.3}"),
    }
}

/// Evaluates every observation against its recorded baseline.
///
/// A baseline benchmark with no matching observation fails its
/// `bench-present` check; observations without a baseline are ignored
/// (new benchmarks gate only once recorded).
pub fn evaluate(baseline: &Baseline, observations: &[Observation]) -> Verdict {
    let mut checks = Vec::new();
    for base in &baseline.benches {
        let Some(obs) = observations.iter().find(|o| o.name == base.name) else {
            checks.push(check(
                &base.name,
                "bench-present",
                0.0,
                1.0,
                false,
                "must be",
            ));
            continue;
        };
        checks.push(check(
            &base.name,
            "invocations-exact",
            obs.invocations,
            base.invocations,
            obs.invocations == base.invocations,
            "==",
        ));
        let base_rpi = if base.invocations > 0.0 {
            base.lock_retries / base.invocations
        } else {
            0.0
        };
        let obs_rpi = if obs.invocations > 0.0 {
            obs.lock_retries / obs.invocations
        } else {
            0.0
        };
        let rpi_limit = base_rpi + RETRY_SLACK_PER_INVOCATION;
        checks.push(check(
            &base.name,
            "retries-per-invocation",
            obs_rpi,
            rpi_limit,
            obs_rpi <= rpi_limit,
            "<=",
        ));
        let throughput_floor = base.throughput * THROUGHPUT_FLOOR_FRACTION;
        checks.push(check(
            &base.name,
            "throughput-floor",
            obs.throughput,
            throughput_floor,
            obs.throughput >= throughput_floor,
            ">=",
        ));
        let speedup_floor = base.speedup * SPEEDUP_FLOOR_FRACTION;
        checks.push(check(
            &base.name,
            "speedup-floor",
            obs.speedup,
            speedup_floor,
            obs.speedup >= speedup_floor,
            ">=",
        ));
        checks.push(check(
            &base.name,
            "critpath-compute-share",
            obs.compute_share,
            COMPUTE_SHARE_FLOOR,
            obs.compute_share >= COMPUTE_SHARE_FLOOR,
            ">=",
        ));
    }
    Verdict { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "machine_cores": 62,
      "scale": "small",
      "reps": 15,
      "benches": {
        "KMeans": {
          "baseline": { "best_wall_us": 2747, "invocations": 37, "throughput_inv_per_ms": 13.47, "lock_retries": 0, "steals": 0 },
          "optimized": { "best_wall_us": 1816, "median_wall_us": 2286, "invocations": 37, "throughput_inv_per_ms": 20.37, "lock_retries": 0, "steals": 0 },
          "dispatch_throughput_speedup": 1.512
        }
      }
    }"#;

    fn healthy_observation() -> Observation {
        Observation {
            name: "KMeans".into(),
            invocations: 37.0,
            lock_retries: 0.0,
            best_wall_us: 2500.0,
            throughput: 14.0,
            speedup: 1.3,
            compute_share: 0.4,
        }
    }

    #[test]
    fn baseline_parses() {
        let baseline = parse_baseline(BASELINE).unwrap();
        assert_eq!(baseline.machine_cores, 62);
        assert_eq!(baseline.benches.len(), 1);
        let km = &baseline.benches[0];
        assert_eq!(km.name, "KMeans");
        assert_eq!(km.invocations, 37.0);
        assert_eq!(km.throughput, 20.37);
        assert_eq!(km.speedup, 1.512);
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("nonsense").is_err());
    }

    #[test]
    fn healthy_run_passes() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let verdict = evaluate(&baseline, &[healthy_observation()]);
        assert!(verdict.pass(), "{}", verdict.table());
        assert_eq!(verdict.checks.len(), 5);
    }

    #[test]
    fn injected_retry_loop_fails_the_gate() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let mut obs = healthy_observation();
        // A lock-retry loop makes every invocation retry at least once:
        // 37 invocations, 40 retries — way past the 0.25/invocation band.
        obs.lock_retries = 40.0;
        let verdict = evaluate(&baseline, &[obs]);
        assert!(!verdict.pass());
        let failed: Vec<&Check> = verdict.checks.iter().filter(|c| !c.pass).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "retries-per-invocation");
    }

    #[test]
    fn invocation_drift_and_missing_bench_fail() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let mut obs = healthy_observation();
        obs.invocations = 36.0;
        let verdict = evaluate(&baseline, &[obs]);
        assert!(verdict
            .checks
            .iter()
            .any(|c| c.name == "invocations-exact" && !c.pass));
        let verdict = evaluate(&baseline, &[]);
        assert!(!verdict.pass());
        assert!(verdict
            .checks
            .iter()
            .any(|c| c.name == "bench-present" && !c.pass));
    }

    const DSA_BASELINE: &str = r#"{
      "machine_cores": 62,
      "scale": "original",
      "reps": 5,
      "host_threads": 8,
      "benches": {
        "KMeans": {
          "serial_wall_us": 102000, "parallel_wall_us": 34000, "wall_speedup": 3.0,
          "simulations": 80, "cache_hits": 16, "best_makespan": 3168000000.0,
          "sims_per_sec_serial": 941.2, "sims_per_sec_parallel": 2352.9
        }
      }
    }"#;

    fn healthy_dsa_observation() -> DsaObservation {
        DsaObservation {
            name: "KMeans".into(),
            serial_makespan: 3168000000.0,
            parallel_makespan: 3168000000.0,
            simulations: 80.0,
            wall_speedup: 2.1,
        }
    }

    #[test]
    fn dsa_baseline_parses() {
        let baseline = parse_dsa_baseline(DSA_BASELINE).unwrap();
        assert_eq!(baseline.machine_cores, 62);
        assert_eq!(baseline.host_threads, 8);
        assert_eq!(baseline.benches.len(), 1);
        let km = &baseline.benches[0];
        assert_eq!(km.simulations, 80.0);
        assert_eq!(km.cache_hits, 16.0);
        assert_eq!(km.speedup, 3.0);
        assert!(parse_dsa_baseline("{}").is_err());
    }

    #[test]
    fn healthy_dsa_run_passes() {
        let baseline = parse_dsa_baseline(DSA_BASELINE).unwrap();
        let checks = evaluate_dsa(&baseline, &[healthy_dsa_observation()], 8);
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn dsa_nondeterminism_and_drift_fail() {
        let baseline = parse_dsa_baseline(DSA_BASELINE).unwrap();
        let mut obs = healthy_dsa_observation();
        obs.parallel_makespan = 3168000001.0;
        let checks = evaluate_dsa(&baseline, &[obs], 8);
        assert!(checks
            .iter()
            .any(|c| c.name == "dsa-determinism" && !c.pass));
        assert!(checks
            .iter()
            .any(|c| c.name == "dsa-makespan-exact" && !c.pass));
        let mut obs = healthy_dsa_observation();
        obs.simulations = 81.0;
        let checks = evaluate_dsa(&baseline, &[obs], 8);
        assert!(checks.iter().any(|c| c.name == "dsa-sims-exact" && !c.pass));
        let checks = evaluate_dsa(&baseline, &[], 8);
        assert!(checks
            .iter()
            .any(|c| c.name == "dsa-bench-present" && !c.pass));
    }

    #[test]
    fn dsa_speedup_floor_is_host_aware() {
        let baseline = parse_dsa_baseline(DSA_BASELINE).unwrap();
        // A collapsed speedup fails on a capable host...
        let mut obs = healthy_dsa_observation();
        obs.wall_speedup = 0.9;
        let checks = evaluate_dsa(&baseline, &[obs.clone()], 8);
        let floor = checks
            .iter()
            .find(|c| c.name == "dsa-speedup-floor")
            .unwrap();
        assert!(!floor.pass);
        // ...but is skipped (passing, explained) on a serial host, where
        // no parallel speedup is physically possible.
        let checks = evaluate_dsa(&baseline, &[obs], 1);
        let floor = checks
            .iter()
            .find(|c| c.name == "dsa-speedup-floor")
            .unwrap();
        assert!(floor.pass);
        assert!(floor.detail.contains("skipped"));
    }

    fn healthy_chaos_observation() -> ChaosObservation {
        ChaosObservation {
            name: "KMeans".into(),
            schedule_a: "kill core 3 after 2 dispatches\ndrop 2% of messages".into(),
            schedule_b: "kill core 3 after 2 dispatches\ndrop 2% of messages".into(),
            clean_checksum: 0xdead_beef,
            faulty_checksum: 0xdead_beef,
            faulty_checksum_b: 0xdead_beef,
            terminated: true,
            faults_injected: 5,
        }
    }

    #[test]
    fn healthy_chaos_run_passes() {
        let checks = evaluate_chaos(&[healthy_chaos_observation()]);
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn chaos_divergence_and_corruption_fail() {
        let mut obs = healthy_chaos_observation();
        obs.schedule_b = "kill core 5 after 2 dispatches".into();
        let checks = evaluate_chaos(&[obs]);
        let sched = checks
            .iter()
            .find(|c| c.name == "chaos-schedule-deterministic")
            .unwrap();
        assert!(!sched.pass);
        assert!(sched.detail.contains("diverge"), "{}", sched.detail);

        let mut obs = healthy_chaos_observation();
        obs.faulty_checksum_b = 1;
        let checks = evaluate_chaos(&[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "chaos-output-identical" && !c.pass));

        let mut obs = healthy_chaos_observation();
        obs.terminated = false;
        obs.faults_injected = 0;
        let checks = evaluate_chaos(&[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "chaos-terminates" && !c.pass));
        assert!(checks
            .iter()
            .any(|c| c.name == "chaos-fault-activity" && !c.pass));

        // An empty schedule must not pass vacuously.
        let mut obs = healthy_chaos_observation();
        obs.schedule_a = String::new();
        obs.schedule_b = String::new();
        let checks = evaluate_chaos(&[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "chaos-schedule-deterministic" && !c.pass));
    }

    const SERVING_BASELINE: &str = r#"{
      "machine_cores": 8,
      "scale": "small",
      "seed": 42,
      "slo_multiplier": 10.0,
      "benches": {
        "KMeans": {
          "solo_p99_us": 900.0, "slo_p99_us": 9000.0, "max_sustainable_rps": 1600.0,
          "at_sustainable": { "offered_rps": 1600.0, "p50_us": 700.0, "p99_us": 4100.0, "p999_us": 5000.0, "admitted": 40, "completed": 40, "shed": 0 }
        }
      }
    }"#;

    fn healthy_serving_observation() -> ServingObservation {
        ServingObservation {
            name: "KMeans".into(),
            offered_rps: 160.0,
            completed_rps: 152.5,
            admitted: 24.0,
            completed: 24.0,
            shed: 0.0,
            router_shed: 0.0,
            p99_us: 2400.0,
        }
    }

    #[test]
    fn serving_baseline_parses() {
        let baseline = parse_serving_baseline(SERVING_BASELINE).unwrap();
        assert_eq!(baseline.machine_cores, 8);
        assert_eq!(baseline.slo_multiplier, 10.0);
        assert_eq!(baseline.benches.len(), 1);
        let km = &baseline.benches[0];
        assert_eq!(km.name, "KMeans");
        assert_eq!(km.solo_p99_us, 900.0);
        assert_eq!(km.slo_p99_us, 9000.0);
        assert_eq!(km.max_sustainable_rps, 1600.0);
        assert!(parse_serving_baseline("{}").is_err());
        assert!(parse_serving_baseline("nonsense").is_err());
    }

    #[test]
    fn healthy_serving_run_passes() {
        let baseline = parse_serving_baseline(SERVING_BASELINE).unwrap();
        let checks = evaluate_serving(&baseline, &[healthy_serving_observation()]);
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn serving_loss_shed_and_latency_fail() {
        let baseline = parse_serving_baseline(SERVING_BASELINE).unwrap();
        // A lost completion (request ledger leak) is a functional bug.
        let mut obs = healthy_serving_observation();
        obs.completed = 23.0;
        let checks = evaluate_serving(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "serving-completions-exact" && !c.pass));
        // Shedding at 5% of the recorded sustainable load is a
        // regression in admission or the router, not host noise.
        let mut obs = healthy_serving_observation();
        obs.shed = 2.0;
        let checks = evaluate_serving(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "serving-shed-clean" && !c.pass));
        let mut obs = healthy_serving_observation();
        obs.router_shed = 1.0;
        let checks = evaluate_serving(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "serving-shed-clean" && !c.pass));
        // p99 past the host-slack band fails.
        let mut obs = healthy_serving_observation();
        obs.p99_us = 9000.0 * SERVING_P99_HOST_SLACK + 1.0;
        let checks = evaluate_serving(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "serving-p99-slo" && !c.pass));
        // Collapsed completion throughput fails.
        let mut obs = healthy_serving_observation();
        obs.completed_rps = 1600.0 * SERVING_THROUGHPUT_FLOOR_FRACTION - 1.0;
        let checks = evaluate_serving(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "serving-throughput-floor" && !c.pass));
        // Missing app fails its presence check.
        let checks = evaluate_serving(&baseline, &[]);
        assert!(checks
            .iter()
            .any(|c| c.name == "serving-bench-present" && !c.pass));
    }

    #[test]
    fn serving_section_appears_in_verdict_json() {
        let baseline = parse_serving_baseline(SERVING_BASELINE).unwrap();
        let mut verdict = Verdict::default();
        // Without serving checks, no serving section.
        let doc = crate::json::parse(&verdict.json()).unwrap();
        assert!(doc.get("serving").is_none());
        verdict.checks.extend(evaluate_serving(
            &baseline,
            &[healthy_serving_observation()],
        ));
        let doc = crate::json::parse(&verdict.json()).unwrap();
        let serving = doc.get("serving").expect("serving section");
        assert_eq!(serving.get("pass"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(serving.get("checks").and_then(Value::as_f64), Some(4.0));
        assert_eq!(serving.get("failed").and_then(Value::as_f64), Some(0.0));
        // A failing serving check flips the section.
        let mut obs = healthy_serving_observation();
        obs.completed = 0.0;
        verdict.checks = evaluate_serving(&baseline, &[obs]);
        let doc = crate::json::parse(&verdict.json()).unwrap();
        let serving = doc.get("serving").expect("serving section");
        assert_eq!(serving.get("pass"), Some(&crate::json::Value::Bool(false)));
    }

    const ADAPT_BASELINE: &str = r#"{
      "machine_cores": 8,
      "scale": "small",
      "seed": 42,
      "slo_multiplier": 10.0,
      "benches": {
        "KMeans": {
          "solo_p99_us": 900.0, "slo_p99_us": 9000.0, "max_sustainable_rps": 1600.0,
          "adapt": { "frozen_p99_us": 4300.0, "adaptive_p99_us": 1900.0, "midrun_p99_us": 5100.0, "relayouts": 1, "layout_epoch": 1, "decisions": 18, "pre_divergence": 0.31, "post_divergence": 0.12, "exact": true }
        },
        "Series": {
          "solo_p99_us": 230.0, "slo_p99_us": 5000.0, "max_sustainable_rps": 6400.0,
          "adapt": { "frozen_p99_us": 2200.0, "adaptive_p99_us": 2100.0, "relayouts": 1, "exact": true }
        }
      }
    }"#;

    fn healthy_adapt_observation(name: &str) -> AdaptObservation {
        AdaptObservation {
            name: name.into(),
            relayouts: 1.0,
            admitted: 24.0,
            completed: 24.0,
            pre_divergence: Some(0.4),
            post_divergence: Some(0.2),
        }
    }

    #[test]
    fn adapt_baseline_parses_and_stays_optional() {
        // Pre-adaptive baselines (no adapt member) still parse.
        let old = parse_serving_baseline(SERVING_BASELINE).unwrap();
        assert!(old.benches[0].adapt.is_none());
        assert!(evaluate_adapt(&old, &[]).is_empty());

        let baseline = parse_serving_baseline(ADAPT_BASELINE).unwrap();
        let km = baseline
            .benches
            .iter()
            .find(|b| b.name == "KMeans")
            .unwrap();
        let adapt = km.adapt.as_ref().expect("adapt section parsed");
        assert_eq!(adapt.frozen_p99_us, 4300.0);
        assert_eq!(adapt.adaptive_p99_us, 1900.0);
        assert_eq!(adapt.relayouts, 1.0);
        assert!(adapt.exact);
    }

    #[test]
    fn healthy_adapt_probe_passes() {
        let baseline = parse_serving_baseline(ADAPT_BASELINE).unwrap();
        let obs = [
            healthy_adapt_observation("KMeans"),
            healthy_adapt_observation("Series"),
        ];
        let checks = evaluate_adapt(&baseline, &obs);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
        assert!(checks.iter().any(|c| c.name == "adapt-baseline-p99-wins"));
        assert!(checks.iter().any(|c| c.name == "adapt-improves-or-holds"));
    }

    #[test]
    fn adapt_regressions_fail() {
        let baseline = parse_serving_baseline(ADAPT_BASELINE).unwrap();
        // No relayout on the stale-layout probe: the loop is dead.
        let mut obs = healthy_adapt_observation("KMeans");
        obs.relayouts = 0.0;
        let checks = evaluate_adapt(&baseline, &[obs, healthy_adapt_observation("Series")]);
        assert!(checks
            .iter()
            .any(|c| c.name == "adapt-relayout-occurred" && !c.pass));
        // A migration that loses a request is a ledger bug.
        let mut obs = healthy_adapt_observation("KMeans");
        obs.completed = 23.0;
        let checks = evaluate_adapt(&baseline, &[obs, healthy_adapt_observation("Series")]);
        assert!(checks
            .iter()
            .any(|c| c.name == "adapt-completions-exact" && !c.pass));
        // Divergence clearly worse after migrating fails improves-or-holds.
        let mut obs = healthy_adapt_observation("KMeans");
        obs.pre_divergence = Some(0.1);
        obs.post_divergence = Some(0.5);
        let checks = evaluate_adapt(&baseline, &[obs, healthy_adapt_observation("Series")]);
        assert!(checks
            .iter()
            .any(|c| c.name == "adapt-improves-or-holds" && !c.pass));
        // ...but no relayout (no post snapshot) holds trivially.
        let mut obs = healthy_adapt_observation("KMeans");
        obs.post_divergence = None;
        let checks = evaluate_adapt(&baseline, &[obs, healthy_adapt_observation("Series")]);
        assert!(checks
            .iter()
            .all(|c| c.name != "adapt-improves-or-holds" || c.pass));
        // A missing probe fails presence.
        let checks = evaluate_adapt(&baseline, &[healthy_adapt_observation("KMeans")]);
        assert!(checks
            .iter()
            .any(|c| c.name == "adapt-bench-present" && !c.pass));
    }

    #[test]
    fn adapt_baseline_wins_check_counts() {
        let mut baseline = parse_serving_baseline(ADAPT_BASELINE).unwrap();
        // Flip both recorded comparisons to losses: the aggregate check
        // fails even though every live probe is healthy.
        for bench in &mut baseline.benches {
            if let Some(adapt) = &mut bench.adapt {
                adapt.adaptive_p99_us = adapt.frozen_p99_us + 1.0;
            }
        }
        let obs = [
            healthy_adapt_observation("KMeans"),
            healthy_adapt_observation("Series"),
        ];
        let checks = evaluate_adapt(&baseline, &obs);
        let wins = checks
            .iter()
            .find(|c| c.name == "adapt-baseline-p99-wins")
            .unwrap();
        assert!(!wins.pass);
        assert_eq!(wins.observed, 0.0);
    }

    #[test]
    fn adapt_section_appears_in_verdict_json() {
        let baseline = parse_serving_baseline(ADAPT_BASELINE).unwrap();
        let mut verdict = Verdict::default();
        let doc = crate::json::parse(&verdict.json()).unwrap();
        assert!(doc.get("adapt").is_none());
        verdict.checks.extend(evaluate_adapt(
            &baseline,
            &[
                healthy_adapt_observation("KMeans"),
                healthy_adapt_observation("Series"),
            ],
        ));
        let doc = crate::json::parse(&verdict.json()).unwrap();
        let adapt = doc.get("adapt").expect("adapt section");
        assert_eq!(adapt.get("pass"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(adapt.get("failed").and_then(Value::as_f64), Some(0.0));
    }

    const SCOPE_BASELINE: &str = r#"{
      "machine_cores": 8,
      "scale": "small",
      "seed": 42,
      "slo_multiplier": 10.0,
      "benches": {
        "KMeans": {
          "solo_p99_us": 900.0, "slo_p99_us": 9000.0, "max_sustainable_rps": 1600.0,
          "scope": { "off_p99_us": 4000.0, "on_p99_us": 4080.0, "off_rps": 1500.0, "on_rps": 1490.0 }
        }
      }
    }"#;

    fn healthy_scope_observation() -> ScopeObservation {
        ScopeObservation {
            name: "KMeans".into(),
            arrived: 26.0,
            admitted: 24.0,
            completed: 24.0,
            shed: 2.0,
            trees: 4.0,
            partition_exact: true,
        }
    }

    #[test]
    fn scope_baseline_parses_and_stays_optional() {
        // Pre-scope baselines (no scope member) still parse.
        let old = parse_serving_baseline(SERVING_BASELINE).unwrap();
        assert!(old.benches[0].scope.is_none());
        assert!(evaluate_scope(&old, &[]).is_empty());

        let baseline = parse_serving_baseline(SCOPE_BASELINE).unwrap();
        let scope = baseline.benches[0].scope.as_ref().expect("scope parsed");
        assert_eq!(scope.off_p99_us, 4000.0);
        assert_eq!(scope.on_p99_us, 4080.0);
        assert_eq!(scope.off_rps, 1500.0);
        assert_eq!(scope.on_rps, 1490.0);
    }

    #[test]
    fn healthy_scope_probe_passes() {
        let baseline = parse_serving_baseline(SCOPE_BASELINE).unwrap();
        let checks = evaluate_scope(&baseline, &[healthy_scope_observation()]);
        assert_eq!(checks.len(), 5);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-baseline-p99-overhead"));
        assert!(checks.iter().any(|c| c.name == "scope-partition-exact"));
    }

    #[test]
    fn scope_regressions_fail() {
        // Recorded overhead past the 3% budget fails.
        let mut baseline = parse_serving_baseline(SCOPE_BASELINE).unwrap();
        if let Some(scope) = &mut baseline.benches[0].scope {
            scope.on_p99_us = scope.off_p99_us * SCOPE_P99_OVERHEAD_SLACK + 1.0;
        }
        let checks = evaluate_scope(&baseline, &[healthy_scope_observation()]);
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-baseline-p99-overhead" && !c.pass));
        // Collapsed scope-on throughput fails.
        let mut baseline = parse_serving_baseline(SCOPE_BASELINE).unwrap();
        if let Some(scope) = &mut baseline.benches[0].scope {
            scope.on_rps = scope.off_rps * SCOPE_THROUGHPUT_FLOOR_FRACTION - 1.0;
        }
        let checks = evaluate_scope(&baseline, &[healthy_scope_observation()]);
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-baseline-throughput" && !c.pass));
        // A snapshot that loses a request fails accounting.
        let baseline = parse_serving_baseline(SCOPE_BASELINE).unwrap();
        let mut obs = healthy_scope_observation();
        obs.completed = 23.0;
        let checks = evaluate_scope(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-accounting-exact" && !c.pass));
        // An inexact partition is a reconstruction bug.
        let mut obs = healthy_scope_observation();
        obs.partition_exact = false;
        let checks = evaluate_scope(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-partition-exact" && !c.pass));
        // No sampled trees means the sampler is dead.
        let mut obs = healthy_scope_observation();
        obs.trees = 0.0;
        let checks = evaluate_scope(&baseline, &[obs]);
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-sampled-trees" && !c.pass));
        // A missing probe fails presence.
        let checks = evaluate_scope(&baseline, &[]);
        assert!(checks
            .iter()
            .any(|c| c.name == "scope-bench-present" && !c.pass));
    }

    #[test]
    fn scope_section_appears_in_verdict_json() {
        let baseline = parse_serving_baseline(SCOPE_BASELINE).unwrap();
        let mut verdict = Verdict::default();
        let doc = crate::json::parse(&verdict.json()).unwrap();
        assert!(doc.get("scope").is_none());
        verdict
            .checks
            .extend(evaluate_scope(&baseline, &[healthy_scope_observation()]));
        let doc = crate::json::parse(&verdict.json()).unwrap();
        let scope = doc.get("scope").expect("scope section");
        assert_eq!(scope.get("pass"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(scope.get("checks").and_then(Value::as_f64), Some(5.0));
        assert_eq!(scope.get("failed").and_then(Value::as_f64), Some(0.0));
    }

    #[test]
    fn verdict_json_parses_back() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let verdict = evaluate(&baseline, &[healthy_observation()]);
        let doc = crate::json::parse(&verdict.json()).unwrap();
        assert_eq!(doc.get("pass"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(doc.get("checks").unwrap().as_arr().unwrap().len(), 5);
    }
}
