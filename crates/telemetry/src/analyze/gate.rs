//! The CI perf-regression gate.
//!
//! `BENCH_threaded.json` (written by the bench crate's A/B harness on a
//! reference machine) is the baseline; a fresh run on the current build
//! is the observation. The gate's checks are chosen to be meaningful on
//! a *different* machine than the one that recorded the baseline:
//!
//! * invocation counts are deterministic and must match **exactly** —
//!   a mismatch is a functional regression, not noise;
//! * lock retries per invocation get a small absolute tolerance band —
//!   this is the check that catches an accidentally introduced retry
//!   loop (the synthetic-slowdown acceptance test);
//! * throughput and speedup get generous floors (CI containers are
//!   slow and noisy, but a real regression collapses them by integer
//!   factors);
//! * the observed critical path must do *some* compute — a near-zero
//!   compute share means the executor spent the run waiting, which no
//!   amount of machine noise explains.

use crate::json::{self, write_str, Value};
use std::fmt::Write as _;

/// Absolute slack on lock retries per invocation.
pub const RETRY_SLACK_PER_INVOCATION: f64 = 0.25;
/// Observed throughput must reach this fraction of the recorded one.
pub const THROUGHPUT_FLOOR_FRACTION: f64 = 0.05;
/// Observed dispatch speedup must reach this fraction of the recorded one.
pub const SPEEDUP_FLOOR_FRACTION: f64 = 0.35;
/// Minimum compute share of the observed critical path.
pub const COMPUTE_SHARE_FLOOR: f64 = 0.01;

/// One benchmark's recorded reference numbers (the `optimized` row of
/// `BENCH_threaded.json`, plus the A/B speedup).
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineBench {
    /// Benchmark name as recorded (e.g. `"KMeans"`).
    pub name: String,
    /// Invocations per run (deterministic).
    pub invocations: f64,
    /// Lock retries per run.
    pub lock_retries: f64,
    /// Best wall time over the recorded reps, microseconds.
    pub best_wall_us: f64,
    /// Invocations dispatched per millisecond.
    pub throughput: f64,
    /// Optimized-over-baseline dispatch-throughput speedup.
    pub speedup: f64,
}

/// The parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Core count of the machine model the deployments were planned for.
    pub machine_cores: u64,
    /// One entry per recorded benchmark.
    pub benches: Vec<BaselineBench>,
}

/// Parses a `BENCH_threaded.json` document.
///
/// # Errors
///
/// Returns a message when the text is not JSON or required members are
/// missing/mistyped.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text)?;
    let machine_cores = doc
        .get("machine_cores")
        .and_then(Value::as_f64)
        .ok_or("missing machine_cores")? as u64;
    let Some(Value::Obj(benches)) = doc.get("benches") else {
        return Err("missing benches object".into());
    };
    let mut out = Vec::with_capacity(benches.len());
    for (name, bench) in benches {
        let optimized = bench.get("optimized").ok_or_else(|| format!("{name}: missing optimized"))?;
        let field = |key: &str| -> Result<f64, String> {
            optimized
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing optimized.{key}"))
        };
        out.push(BaselineBench {
            name: name.clone(),
            invocations: field("invocations")?,
            lock_retries: field("lock_retries")?,
            best_wall_us: field("best_wall_us")?,
            throughput: field("throughput_inv_per_ms")?,
            speedup: bench
                .get("dispatch_throughput_speedup")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing dispatch_throughput_speedup"))?,
        });
    }
    Ok(Baseline { machine_cores, benches: out })
}

/// One benchmark's numbers measured on the build under test.
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Benchmark name; matched against [`BaselineBench::name`].
    pub name: String,
    /// Invocations per run.
    pub invocations: f64,
    /// Lock retries per run.
    pub lock_retries: f64,
    /// Best wall time, microseconds.
    pub best_wall_us: f64,
    /// Invocations dispatched per millisecond.
    pub throughput: f64,
    /// Optimized-over-baseline dispatch-throughput speedup.
    pub speedup: f64,
    /// Compute share of the observed critical path (0..=1).
    pub compute_share: f64,
}

/// One evaluated tolerance check.
#[derive(Clone, Debug)]
pub struct Check {
    /// Benchmark the check belongs to.
    pub bench: String,
    /// Stable check identifier.
    pub name: &'static str,
    /// The measured value.
    pub observed: f64,
    /// The boundary it was compared against.
    pub limit: f64,
    /// Whether the check passed.
    pub pass: bool,
    /// Human-readable comparison.
    pub detail: String,
}

/// The gate's complete output.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// Every evaluated check.
    pub checks: Vec<Check>,
}

impl Verdict {
    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    /// Renders the verdict as an aligned table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "regression gate: {} ({} checks, {} failed)\n",
            if self.pass() { "PASS" } else { "FAIL" },
            self.checks.len(),
            self.failures(),
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "  [{}] {:<12} {:<28} {}",
                if c.pass { "ok" } else { "FAIL" },
                c.bench,
                c.name,
                c.detail
            );
        }
        out
    }

    /// Serializes the verdict as a JSON document (the CI artifact).
    pub fn json(&self) -> String {
        let mut out = format!("{{\"pass\":{},\"checks\":[", self.pass());
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"bench\":");
            write_str(&mut out, &c.bench);
            out.push_str(",\"check\":");
            write_str(&mut out, c.name);
            out.push_str(",\"observed\":");
            json::write_f64(&mut out, c.observed);
            out.push_str(",\"limit\":");
            json::write_f64(&mut out, c.limit);
            let _ = write!(out, ",\"pass\":{}", c.pass);
            out.push_str(",\"detail\":");
            write_str(&mut out, &c.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn check(bench: &str, name: &'static str, observed: f64, limit: f64, pass: bool, cmp: &str) -> Check {
    Check {
        bench: bench.to_string(),
        name,
        observed,
        limit,
        pass,
        detail: format!("observed {observed:.3} {cmp} {limit:.3}"),
    }
}

/// Evaluates every observation against its recorded baseline.
///
/// A baseline benchmark with no matching observation fails its
/// `bench-present` check; observations without a baseline are ignored
/// (new benchmarks gate only once recorded).
pub fn evaluate(baseline: &Baseline, observations: &[Observation]) -> Verdict {
    let mut checks = Vec::new();
    for base in &baseline.benches {
        let Some(obs) = observations.iter().find(|o| o.name == base.name) else {
            checks.push(check(&base.name, "bench-present", 0.0, 1.0, false, "must be"));
            continue;
        };
        checks.push(check(
            &base.name,
            "invocations-exact",
            obs.invocations,
            base.invocations,
            obs.invocations == base.invocations,
            "==",
        ));
        let base_rpi = if base.invocations > 0.0 { base.lock_retries / base.invocations } else { 0.0 };
        let obs_rpi = if obs.invocations > 0.0 { obs.lock_retries / obs.invocations } else { 0.0 };
        let rpi_limit = base_rpi + RETRY_SLACK_PER_INVOCATION;
        checks.push(check(
            &base.name,
            "retries-per-invocation",
            obs_rpi,
            rpi_limit,
            obs_rpi <= rpi_limit,
            "<=",
        ));
        let throughput_floor = base.throughput * THROUGHPUT_FLOOR_FRACTION;
        checks.push(check(
            &base.name,
            "throughput-floor",
            obs.throughput,
            throughput_floor,
            obs.throughput >= throughput_floor,
            ">=",
        ));
        let speedup_floor = base.speedup * SPEEDUP_FLOOR_FRACTION;
        checks.push(check(
            &base.name,
            "speedup-floor",
            obs.speedup,
            speedup_floor,
            obs.speedup >= speedup_floor,
            ">=",
        ));
        checks.push(check(
            &base.name,
            "critpath-compute-share",
            obs.compute_share,
            COMPUTE_SHARE_FLOOR,
            obs.compute_share >= COMPUTE_SHARE_FLOOR,
            ">=",
        ));
    }
    Verdict { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "machine_cores": 62,
      "scale": "small",
      "reps": 15,
      "benches": {
        "KMeans": {
          "baseline": { "best_wall_us": 2747, "invocations": 37, "throughput_inv_per_ms": 13.47, "lock_retries": 0, "steals": 0 },
          "optimized": { "best_wall_us": 1816, "median_wall_us": 2286, "invocations": 37, "throughput_inv_per_ms": 20.37, "lock_retries": 0, "steals": 0 },
          "dispatch_throughput_speedup": 1.512
        }
      }
    }"#;

    fn healthy_observation() -> Observation {
        Observation {
            name: "KMeans".into(),
            invocations: 37.0,
            lock_retries: 0.0,
            best_wall_us: 2500.0,
            throughput: 14.0,
            speedup: 1.3,
            compute_share: 0.4,
        }
    }

    #[test]
    fn baseline_parses() {
        let baseline = parse_baseline(BASELINE).unwrap();
        assert_eq!(baseline.machine_cores, 62);
        assert_eq!(baseline.benches.len(), 1);
        let km = &baseline.benches[0];
        assert_eq!(km.name, "KMeans");
        assert_eq!(km.invocations, 37.0);
        assert_eq!(km.throughput, 20.37);
        assert_eq!(km.speedup, 1.512);
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("nonsense").is_err());
    }

    #[test]
    fn healthy_run_passes() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let verdict = evaluate(&baseline, &[healthy_observation()]);
        assert!(verdict.pass(), "{}", verdict.table());
        assert_eq!(verdict.checks.len(), 5);
    }

    #[test]
    fn injected_retry_loop_fails_the_gate() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let mut obs = healthy_observation();
        // A lock-retry loop makes every invocation retry at least once:
        // 37 invocations, 40 retries — way past the 0.25/invocation band.
        obs.lock_retries = 40.0;
        let verdict = evaluate(&baseline, &[obs]);
        assert!(!verdict.pass());
        let failed: Vec<&Check> = verdict.checks.iter().filter(|c| !c.pass).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "retries-per-invocation");
    }

    #[test]
    fn invocation_drift_and_missing_bench_fail() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let mut obs = healthy_observation();
        obs.invocations = 36.0;
        let verdict = evaluate(&baseline, &[obs]);
        assert!(verdict.checks.iter().any(|c| c.name == "invocations-exact" && !c.pass));
        let verdict = evaluate(&baseline, &[]);
        assert!(!verdict.pass());
        assert!(verdict.checks.iter().any(|c| c.name == "bench-present" && !c.pass));
    }

    #[test]
    fn verdict_json_parses_back() {
        let baseline = parse_baseline(BASELINE).unwrap();
        let verdict = evaluate(&baseline, &[healthy_observation()]);
        let doc = crate::json::parse(&verdict.json()).unwrap();
        assert_eq!(doc.get("pass"), Some(&crate::json::Value::Bool(true)));
        assert_eq!(doc.get("checks").unwrap().as_arr().unwrap().len(), 5);
    }
}
