//! Serving-mode analysis: request latencies out of the event stream.
//!
//! The serving front-end (`bamboo-serving`) stamps every request's
//! lifecycle into the ordinary event rings — [`EventKind::ReqArrive`],
//! [`EventKind::ReqAdmit`], [`EventKind::ReqShed`],
//! [`EventKind::ReqComplete`] — so latency distributions fall out of a
//! recorded [`TelemetryReport`] with no serving-specific recording
//! machinery: pair each request's admit and complete timestamps and
//! feed the spans into a [`LatencyHistogram`].

use crate::event::EventKind;
use crate::report::TelemetryReport;
use std::fmt::Write as _;

/// Sub-buckets per power-of-two octave: ~3% relative resolution,
/// HDR-histogram style (log-bucketed, fixed memory, any range).
const SUBS: u64 = 32;
/// Values below `SUBS * 2` get exact unit buckets.
const LINEAR_LIMIT: u64 = SUBS * 2;

/// A log-bucketed latency histogram (HDR style): exact below 64,
/// ~3%-relative-error buckets above, O(1) record, fixed memory.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    buckets: Vec<(usize, u64)>, // sparse (bucket index, count), sorted
    count: u64,
    sum: u64,
    max: u64,
    min: u64, // meaningful only when count > 0
}

fn bucket_of(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as u64; // >= 6
    let sub = (value >> (octave - 5)) & (SUBS - 1);
    (LINEAR_LIMIT + (octave - 6) * SUBS + sub) as usize
}

/// Upper bound of the values mapping to `bucket` (the quantile
/// estimate the histogram reports).
fn bucket_top(bucket: usize) -> u64 {
    let bucket = bucket as u64;
    if bucket < LINEAR_LIMIT {
        return bucket;
    }
    let rel = bucket - LINEAR_LIMIT;
    let octave = rel / SUBS + 6;
    let sub = rel % SUBS;
    // Bucket covers [base + sub*w, base + (sub+1)*w) where w = 2^(octave-5).
    (1u64 << octave) + (sub + 1) * (1u64 << (octave - 5)) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_of(value);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Folds another histogram's samples into this one (used to
    /// aggregate per-window histograms into run totals).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (exact, not bucketed; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in [0, 1]: the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`,
    /// clamped to the observed `[min, max]` range.
    ///
    /// Edge cases are explicit rather than incidental:
    /// * **empty** → 0 for every `q`;
    /// * **single sample** → that exact sample for every `q` (the
    ///   clamp collapses the bucket estimate onto the one value);
    /// * **high quantiles on small windows** (e.g. p999 with fewer than
    ///   1000 samples) → the exact observed max, never a bucket top
    ///   above anything that was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_top(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// p999 shorthand.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// One-line human summary (`unit` is a label, e.g. "us").
    pub fn summary(&self, unit: &str) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "n={} mean={:.1}{unit} p50={}{unit} p99={}{unit} p999={}{unit} max={}{unit}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max
        );
        out
    }
}

/// Per-request lifecycle milestones reconstructed from the event
/// stream (timestamps in the report's time base).
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestTimeline {
    /// Request id.
    pub request: u64,
    /// `ReqArrive` timestamp, if recorded.
    pub arrived: Option<u64>,
    /// `ReqAdmit` timestamp, if recorded.
    pub admitted: Option<u64>,
    /// `ReqComplete` timestamp, if recorded.
    pub completed: Option<u64>,
    /// Invocations the request executed (from the complete event).
    pub invocations: u64,
}

/// Serving statistics reconstructed from a recorded report: arrival /
/// admission / shed / completion counts and the admit→complete latency
/// distribution.
#[derive(Clone, Debug, Default)]
pub struct ServingStats {
    /// `ReqArrive` events seen.
    pub arrivals: u64,
    /// `ReqAdmit` events seen.
    pub admitted: u64,
    /// `ReqShed` events seen.
    pub shed: u64,
    /// `ReqComplete` events seen.
    pub completed: u64,
    /// Admit→complete latency per completed request, in the report's
    /// time base (nanoseconds for threaded runs).
    pub latency: LatencyHistogram,
    /// Every request with at least one lifecycle event, sorted by id.
    pub timelines: Vec<RequestTimeline>,
}

impl ServingStats {
    /// Reconstructs serving statistics by pairing each request id's
    /// admit and complete events.
    pub fn from_report(report: &TelemetryReport) -> Self {
        let mut stats = ServingStats::default();
        let mut timelines: Vec<RequestTimeline> = Vec::new();
        let slot = |req: u64, rows: &mut Vec<RequestTimeline>| -> usize {
            match rows.binary_search_by_key(&req, |t| t.request) {
                Ok(pos) => pos,
                Err(pos) => {
                    rows.insert(
                        pos,
                        RequestTimeline {
                            request: req,
                            ..RequestTimeline::default()
                        },
                    );
                    pos
                }
            }
        };
        for e in &report.events {
            match e.kind {
                EventKind::ReqArrive => {
                    stats.arrivals += 1;
                    let i = slot(e.a, &mut timelines);
                    timelines[i].arrived = Some(e.ts);
                }
                EventKind::ReqAdmit => {
                    stats.admitted += 1;
                    let i = slot(e.a, &mut timelines);
                    timelines[i].admitted = Some(e.ts);
                }
                EventKind::ReqShed => stats.shed += 1,
                EventKind::ReqComplete => {
                    stats.completed += 1;
                    let i = slot(e.a, &mut timelines);
                    timelines[i].completed = Some(e.ts);
                    timelines[i].invocations = e.b;
                }
                _ => {}
            }
        }
        for t in &timelines {
            if let (Some(admit), Some(done)) = (t.admitted, t.completed) {
                stats.latency.record(done.saturating_sub(admit));
            }
        }
        stats.timelines = timelines;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::TimeUnit;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 5, 17, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn large_values_stay_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 123_456_789] {
            h.record(v);
            let est = bucket_top(bucket_of(v));
            assert!(est >= v, "estimate {est} below sample {v}");
            assert!(
                (est - v) as f64 / v as f64 <= 1.0 / SUBS as f64,
                "estimate {est} more than 1/{SUBS} above {v}"
            );
        }
    }

    #[test]
    fn quantiles_order_and_clamp_to_max() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p999 <= h.max());
        // p50 of 100..100_000 uniform is ~50_000; the bucket estimate
        // must land within one bucket width (~3%).
        assert!((45_000..=55_000).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_window_reports_the_sample_exactly() {
        // 10_000 falls in a ~3%-wide bucket whose top is above the
        // sample; every quantile must still report the sample itself.
        let mut h = LatencyHistogram::new();
        h.record(10_000);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 10_000, "q={q}");
        }
        assert_eq!(h.min(), 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn p999_on_small_windows_is_the_observed_max() {
        // With fewer than 1000 samples the p999 rank lands on the last
        // sample; the estimate must be the exact max, not a bucket top.
        let mut h = LatencyHistogram::new();
        for v in [70_000u64, 80_000, 90_001] {
            h.record(v);
        }
        assert_eq!(h.p999(), 90_001);
        assert_eq!(h.quantile(1.0), 90_001);
        // And the low end clamps to the observed min.
        assert!(h.quantile(0.0) >= 70_000);
    }

    #[test]
    fn merge_combines_counts_min_max_and_quantiles() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            a.record(v);
        }
        for v in [5u64, 50_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 50_000);
        assert_eq!(a.sum(), 100 + 200 + 300 + 5 + 50_000);
        assert_eq!(a.quantile(0.0), 5);
        assert_eq!(a.quantile(1.0), 50_000);
        // Merging an empty histogram is a no-op.
        let before = a.count();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), before);
        // Merging into an empty histogram copies min/max.
        let mut c = LatencyHistogram::new();
        c.merge(&a);
        assert_eq!(c.min(), 5);
        assert_eq!(c.max(), 50_000);
    }

    #[test]
    fn stats_pair_admit_and_complete_by_request() {
        let mut report = TelemetryReport::empty();
        report.unit = TimeUnit::Nanos;
        let ev = |ts, kind, a, b| Event {
            ts,
            kind,
            core: 9,
            a,
            b,
            c: 0,
        };
        report.events = vec![
            ev(10, EventKind::ReqArrive, 1, 1),
            ev(11, EventKind::ReqAdmit, 1, 1),
            ev(20, EventKind::ReqArrive, 2, 1),
            ev(21, EventKind::ReqShed, 2, 2),
            ev(511, EventKind::ReqComplete, 1, 37),
        ];
        let stats = ServingStats::from_report(&report);
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.latency.count(), 1);
        assert_eq!(stats.latency.max(), 500);
        let t = stats
            .timelines
            .iter()
            .find(|t| t.request == 1)
            .expect("request 1 timeline");
        assert_eq!(t.invocations, 37);
        assert_eq!(t.arrived, Some(10));
    }
}
