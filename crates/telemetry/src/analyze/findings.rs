//! Ranked findings: the diagnosis's actionable output.

use crate::event::Timestamp;
use crate::json::write_str;
use std::fmt::Write as _;

/// How much a finding matters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context worth knowing; not a problem by itself.
    Info,
    /// A measurable inefficiency.
    Warning,
    /// A correctness-adjacent divergence (e.g. the observed causal
    /// structure contradicts the predicted one).
    Critical,
}

impl Severity {
    /// Short uppercase label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        }
    }
}

/// One piece of supporting evidence: a free-form detail, optionally
/// anchored to a time span and core so it can be found in a trace
/// viewer.
#[derive(Clone, Debug)]
pub struct Evidence {
    /// What was observed.
    pub detail: String,
    /// Time window the evidence covers, in the report's unit.
    pub span: Option<(Timestamp, Timestamp)>,
    /// Core the evidence is anchored to.
    pub core: Option<u32>,
}

impl Evidence {
    /// Evidence with no anchor.
    pub fn note(detail: impl Into<String>) -> Self {
        Evidence {
            detail: detail.into(),
            span: None,
            core: None,
        }
    }

    /// Evidence anchored to a time span on a core.
    pub fn at(detail: impl Into<String>, span: (Timestamp, Timestamp), core: u32) -> Self {
        Evidence {
            detail: detail.into(),
            span: Some(span),
            core: Some(core),
        }
    }
}

/// One diagnosis finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule identifier (e.g. `"lock-contention"`).
    pub rule: &'static str,
    /// How much it matters.
    pub severity: Severity,
    /// Magnitude used to rank findings of equal severity (rule-specific
    /// units; bigger is worse).
    pub score: f64,
    /// One-line human-readable statement.
    pub message: String,
    /// Supporting evidence spans.
    pub evidence: Vec<Evidence>,
}

/// Sorts findings most-severe first, then by descending score.
pub fn rank(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(b.score.total_cmp(&a.score))
            .then(a.rule.cmp(b.rule))
    });
}

/// Renders a ranked findings table with indented evidence lines.
pub fn render_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "findings: none\n".into();
    }
    let mut out = format!("findings ({}):\n", findings.len());
    for (i, f) in findings.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>3}. [{}] {:<24} {}",
            i + 1,
            f.severity.label(),
            f.rule,
            f.message
        );
        for e in &f.evidence {
            let anchor = match (e.span, e.core) {
                (Some((a, b)), Some(core)) => format!(" [core {core}, {a}..{b}]"),
                (Some((a, b)), None) => format!(" [{a}..{b}]"),
                (None, Some(core)) => format!(" [core {core}]"),
                (None, None) => String::new(),
            };
            let _ = writeln!(out, "       - {}{anchor}", e.detail);
        }
    }
    out
}

/// Serializes findings as a JSON array.
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        write_str(&mut out, f.rule);
        let _ = write!(out, ",\"severity\":\"{}\",\"score\":", f.severity.label());
        crate::json::write_f64(&mut out, f.score);
        out.push_str(",\"message\":");
        write_str(&mut out, &f.message);
        out.push_str(",\"evidence\":[");
        for (j, e) in f.evidence.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"detail\":");
            write_str(&mut out, &e.detail);
            if let Some((a, b)) = e.span {
                let _ = write!(out, ",\"span\":[{a},{b}]");
            }
            if let Some(core) = e.core {
                let _ = write!(out, ",\"core\":{core}");
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn f(rule: &'static str, severity: Severity, score: f64) -> Finding {
        Finding {
            rule,
            severity,
            score,
            message: format!("{rule} happened"),
            evidence: vec![],
        }
    }

    #[test]
    fn ranking_orders_by_severity_then_score() {
        let mut findings = vec![
            f("small-warn", Severity::Warning, 1.0),
            f("info", Severity::Info, 99.0),
            f("crit", Severity::Critical, 0.1),
            f("big-warn", Severity::Warning, 5.0),
        ];
        rank(&mut findings);
        let rules: Vec<&str> = findings.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["crit", "big-warn", "small-warn", "info"]);
    }

    #[test]
    fn table_shows_evidence_anchors() {
        let mut finding = f("lock-contention", Severity::Warning, 2.0);
        finding
            .evidence
            .push(Evidence::at("3 retries on reduce", (2700, 2900), 0));
        finding
            .evidence
            .push(Evidence::note("all retries on one class set"));
        let table = render_table(&[finding]);
        assert!(table.contains("[WARN] lock-contention"), "{table}");
        assert!(table.contains("[core 0, 2700..2900]"), "{table}");
        assert_eq!(render_table(&[]), "findings: none\n");
    }

    #[test]
    fn json_round_trips() {
        let mut finding = f("steal-storm", Severity::Info, 0.5);
        finding
            .evidence
            .push(Evidence::at("1 steal", (1400, 1400), 1));
        let doc = json::parse(&findings_json(&[finding])).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("rule").unwrap().as_str(), Some("steal-storm"));
        assert_eq!(arr[0].get("severity").unwrap().as_str(), Some("INFO"));
        let ev = arr[0].get("evidence").unwrap().as_arr().unwrap();
        assert_eq!(ev[0].get("core").unwrap().as_f64(), Some(1.0));
    }
}
