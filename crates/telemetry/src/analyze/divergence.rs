//! Finding generators: local pathologies and predicted-vs-observed
//! divergence scoring.
//!
//! Local rules need only the observed execution: lock contention,
//! steal pressure, per-core load imbalance, and wait-dominated critical
//! paths. Divergence rules align the observed causal graph against the
//! virtual executor's predicted [`ExecutionTrace`] over the same
//! deployment: the invocation-count and causal-edge multisets must
//! match exactly (they are determined by the program, not the
//! schedule), while per-task time shares and utilization may drift and
//! are scored.

use super::findings::{Evidence, Finding, Severity};
use super::graph::ObservedGraph;
use super::ledger::Ledger;
use super::path::ObservedPath;
use crate::event::{fault_code, recover_code, EventKind};
use crate::report::TelemetryReport;
use bamboo_schedule::trace::ExecutionTrace;
use std::collections::HashMap;

/// Findings derivable from the observed execution alone.
pub fn local_findings(
    graph: &ObservedGraph,
    ledger: &Ledger,
    path: Option<&ObservedPath>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let n = graph.invocations.len();
    if n == 0 {
        return out;
    }

    if let Some(path) = path {
        // The anchor finding: where the makespan went. Always present,
        // so every diagnosis has at least one ranked entry.
        let mut evidence: Vec<Evidence> = path
            .steps
            .iter()
            .max_by_key(|s| s.end.saturating_sub(s.start))
            .map(|s| {
                Evidence::at(
                    format!("longest path step: task {} (invocation {})", s.task, s.inv),
                    (s.start, s.end),
                    s.core,
                )
            })
            .into_iter()
            .collect();
        evidence.push(Evidence::note(format!(
            "path compute {} vs wait {} ({} resource-delayed steps)",
            path.compute, path.wait, path.resource_delayed
        )));
        out.push(Finding {
            rule: "critical-path",
            severity: Severity::Info,
            score: path.wait as f64,
            message: format!(
                "critical path covers {} of {} invocations; compute is {:.1}% of makespan {}",
                path.steps.len(),
                n,
                100.0 * path.compute_share(),
                path.makespan
            ),
            evidence,
        });

        if path.compute_share() < 0.5 {
            out.push(Finding {
                rule: "wait-dominated-path",
                severity: Severity::Warning,
                score: 1.0 - path.compute_share(),
                message: format!(
                    "the critical path waits more than it computes ({:.1}% compute)",
                    100.0 * path.compute_share()
                ),
                evidence: vec![Evidence::note(format!(
                    "wait {} vs compute {}; queue waits on path: {}",
                    path.wait,
                    path.compute,
                    path.steps.iter().map(|s| s.queue_wait).sum::<u64>()
                ))],
            });
        }
    }

    let retries: u64 = graph.invocations.iter().map(|inv| inv.retries).sum();
    if retries > 0 {
        let per_inv = retries as f64 / n as f64;
        let mut worst: Vec<_> = graph.invocations.iter().filter(|i| i.retries > 0).collect();
        worst.sort_by_key(|i| std::cmp::Reverse(i.retries));
        let evidence = worst
            .iter()
            .take(3)
            .map(|i| {
                Evidence::at(
                    format!("task {} invocation {}: {} retries", i.task, i.id, i.retries),
                    (i.queued, i.start),
                    i.core,
                )
            })
            .collect();
        out.push(Finding {
            rule: "lock-contention",
            severity: if per_inv > 1.0 { Severity::Critical } else { Severity::Warning },
            score: per_inv,
            message: format!(
                "{retries} failed try-lock-all attempts across {n} invocations ({per_inv:.2}/invocation)"
            ),
            evidence,
        });
    }

    let stolen: Vec<_> = graph.stolen().collect();
    if !stolen.is_empty() {
        let ratio = stolen.len() as f64 / n as f64;
        let evidence = stolen
            .iter()
            .take(3)
            .map(|i| {
                Evidence::at(
                    format!(
                        "invocation {} of task {} stolen from core {}",
                        i.id,
                        i.task,
                        i.stolen_from.unwrap_or(0)
                    ),
                    (i.queued, i.start),
                    i.core,
                )
            })
            .collect();
        out.push(Finding {
            rule: "steal-storm",
            severity: if ratio > 0.25 && stolen.len() >= 4 {
                Severity::Warning
            } else {
                Severity::Info
            },
            score: ratio,
            message: format!(
                "{} of {} invocations were work-stolen ({:.0}%) — the planned layout underfeeds some cores",
                stolen.len(),
                n,
                100.0 * ratio
            ),
            evidence,
        });
    }

    let active: Vec<_> = ledger.cores.iter().filter(|row| row.compute > 0).collect();
    if active.len() >= 2 {
        let mean = active.iter().map(|r| r.compute).sum::<u64>() as f64 / active.len() as f64;
        let busiest = active.iter().max_by_key(|r| r.compute).unwrap();
        let lightest = active.iter().min_by_key(|r| r.compute).unwrap();
        let ratio = busiest.compute as f64 / mean;
        if ratio > 1.5 {
            out.push(Finding {
                rule: "load-imbalance",
                severity: Severity::Warning,
                score: ratio,
                message: format!(
                    "core {} carries {:.1}x the mean compute load",
                    busiest.core, ratio
                ),
                evidence: vec![
                    Evidence::at(
                        format!(
                            "busiest: core {} computed {}",
                            busiest.core, busiest.compute
                        ),
                        (0, ledger.span),
                        busiest.core,
                    ),
                    Evidence::at(
                        format!(
                            "lightest active: core {} computed {}",
                            lightest.core, lightest.compute
                        ),
                        (0, ledger.span),
                        lightest.core,
                    ),
                ],
            });
        }
    }

    out
}

/// Findings attributing slowdown to *injected* faults: when the run
/// carried a chaos plan, every `fault.*` event names its cause
/// precisely, so the diagnosis can say "core 3 was killed and peers
/// absorbed its work" instead of guessing from symptoms. Recovery
/// events are matched against their faults to price the recovery cost.
pub fn fault_findings(report: &TelemetryReport) -> Vec<Finding> {
    let mut out = Vec::new();
    let faults: Vec<_> = report
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Fault)
        .collect();
    if faults.is_empty() {
        return out;
    }
    let recovers: Vec<_> = report
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Recover)
        .collect();

    // Core kills: name the dead core and price its failover.
    for kill in faults.iter().filter(|e| e.a == fault_code::CORE_KILL) {
        let dead_core = kill.b;
        let drained = recovers
            .iter()
            .filter(|e| e.a == recover_code::FAILOVER_DRAIN && u64::from(e.core) == dead_core)
            .map(|e| e.b)
            .sum::<u64>();
        let rerouted = recovers
            .iter()
            .filter(|e| e.a == recover_code::REROUTE)
            .count();
        out.push(Finding {
            rule: "injected-core-kill",
            severity: Severity::Warning,
            score: 1.0 + drained as f64 + rerouted as f64,
            message: format!(
                "core {dead_core} was killed by the fault plan; {drained} buffered object(s) \
                 failed over and {rerouted} send(s) re-routed to live replicas"
            ),
            evidence: vec![Evidence::at(
                format!("fault.core_kill on core {dead_core}"),
                (kill.ts, kill.ts),
                kill.core,
            )],
        });
    }

    // Message drops: redelivery pressure is injected latency, not a
    // runtime defect.
    let drops: Vec<_> = faults
        .iter()
        .filter(|e| e.a == fault_code::MSG_DROP)
        .collect();
    if !drops.is_empty() {
        let attempts: u64 = drops.iter().map(|e| e.b).sum();
        let redelivered = recovers
            .iter()
            .filter(|e| e.a == recover_code::REDELIVER)
            .count();
        let worst = drops.iter().max_by_key(|e| e.b).expect("non-empty drops");
        out.push(Finding {
            rule: "injected-message-drops",
            severity: Severity::Info,
            score: attempts as f64,
            message: format!(
                "{} message(s) were dropped by the fault plan ({attempts} simulated \
                 retransmission(s), {redelivered} redelivered with backoff)",
                drops.len()
            ),
            evidence: vec![Evidence::at(
                format!("worst message {} needed {} attempt(s)", worst.c, worst.b),
                (worst.ts, worst.ts),
                worst.core,
            )],
        });
    }

    // Stalls, delays, and lock slowdowns: pure injected latency.
    let latency: Vec<_> = faults
        .iter()
        .filter(|e| {
            matches!(
                e.a,
                fault_code::CORE_STALL | fault_code::MSG_DELAY | fault_code::LOCK_SLOW
            )
        })
        .collect();
    if !latency.is_empty() {
        let injected_ns: u64 = latency.iter().map(|e| e.b).sum();
        let worst = latency
            .iter()
            .max_by_key(|e| e.b)
            .expect("non-empty latency faults");
        out.push(Finding {
            rule: "injected-latency",
            severity: Severity::Info,
            score: injected_ns as f64,
            message: format!(
                "{} stall/delay/slowdown fault(s) injected ~{injected_ns} ns of artificial latency",
                latency.len()
            ),
            evidence: vec![Evidence::at(
                format!(
                    "largest single injection: {} ns on core {}",
                    worst.b, worst.core
                ),
                (worst.ts, worst.ts),
                worst.core,
            )],
        });
    }

    out
}

/// Findings from aligning the observed graph against the virtual
/// executor's predicted trace over the same deployment.
pub fn predicted_vs_observed(graph: &ObservedGraph, predicted: &ExecutionTrace) -> Vec<Finding> {
    let mut out = Vec::new();
    if graph.invocations.is_empty() || predicted.tasks.is_empty() {
        return out;
    }

    // Invocation counts per task are schedule-independent: any mismatch
    // means the executors disagree about the program itself.
    let obs_counts = graph.task_counts();
    let mut pred_counts: HashMap<u64, u64> = HashMap::new();
    for t in &predicted.tasks {
        *pred_counts.entry(t.task.index() as u64).or_insert(0) += 1;
    }
    let mut count_diffs: Vec<(u64, u64, u64)> = Vec::new();
    let mut tasks: Vec<u64> = obs_counts
        .keys()
        .chain(pred_counts.keys())
        .copied()
        .collect();
    tasks.sort_unstable();
    tasks.dedup();
    for task in tasks {
        let obs = obs_counts.get(&task).copied().unwrap_or(0);
        let pred = pred_counts.get(&task).copied().unwrap_or(0);
        if obs != pred {
            count_diffs.push((task, pred, obs));
        }
    }
    if !count_diffs.is_empty() {
        let score: u64 = count_diffs.iter().map(|(_, p, o)| p.abs_diff(*o)).sum();
        out.push(Finding {
            rule: "rate-matching-violation",
            severity: Severity::Critical,
            score: score as f64,
            message: format!(
                "invocation counts diverge from the prediction for {} task(s)",
                count_diffs.len()
            ),
            evidence: count_diffs
                .iter()
                .take(5)
                .map(|(task, pred, obs)| {
                    Evidence::note(format!("task {task}: predicted {pred}, observed {obs}"))
                })
                .collect(),
        });
    }

    // The causal-edge multiset ((producer task, consumer task) pairs)
    // is likewise determined by the dataflow, not the schedule.
    let obs_pairs = graph.edge_task_pairs();
    let mut pred_pairs: HashMap<(u64, u64), u64> = HashMap::new();
    for t in &predicted.tasks {
        for d in &t.deps {
            if let Some(p) = d.producer {
                let ptask = predicted.tasks[p].task.index() as u64;
                *pred_pairs
                    .entry((ptask, t.task.index() as u64))
                    .or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<(u64, u64)> = obs_pairs.keys().chain(pred_pairs.keys()).copied().collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut edge_diffs: Vec<((u64, u64), u64, u64)> = Vec::new();
    for pair in pairs {
        let obs = obs_pairs.get(&pair).copied().unwrap_or(0);
        let pred = pred_pairs.get(&pair).copied().unwrap_or(0);
        if obs != pred {
            edge_diffs.push((pair, pred, obs));
        }
    }
    if !edge_diffs.is_empty() {
        let score: u64 = edge_diffs.iter().map(|(_, p, o)| p.abs_diff(*o)).sum();
        out.push(Finding {
            rule: "causal-edge-divergence",
            severity: Severity::Critical,
            score: score as f64,
            message: format!(
                "{} causal task-pair edge(s) differ between prediction and observation",
                edge_diffs.len()
            ),
            evidence: edge_diffs
                .iter()
                .take(5)
                .map(|((p, c), pred, obs)| {
                    Evidence::note(format!(
                        "edge task {p} -> task {c}: predicted x{pred}, observed x{obs}"
                    ))
                })
                .collect(),
        });
    }

    // Per-task busy-time shares: the profile the synthesis optimized
    // for vs what really ran. Units differ (cycles vs ns), so compare
    // normalized shares.
    let mut obs_busy: HashMap<u64, u64> = HashMap::new();
    for inv in &graph.invocations {
        *obs_busy.entry(inv.task).or_insert(0) += inv.duration();
    }
    let mut pred_busy: HashMap<u64, u64> = HashMap::new();
    for t in &predicted.tasks {
        *pred_busy.entry(t.task.index() as u64).or_insert(0) += t.duration();
    }
    let obs_total: u64 = obs_busy.values().sum();
    let pred_total: u64 = pred_busy.values().sum();
    if obs_total > 0 && pred_total > 0 {
        let mut drifts: Vec<(u64, f64, f64)> = Vec::new();
        for (&task, &busy) in &obs_busy {
            let obs_share = busy as f64 / obs_total as f64;
            let pred_share = pred_busy.get(&task).copied().unwrap_or(0) as f64 / pred_total as f64;
            if (obs_share - pred_share).abs() > 0.15 {
                drifts.push((task, pred_share, obs_share));
            }
        }
        if !drifts.is_empty() {
            drifts.sort_by(|a, b| (b.2 - b.1).abs().total_cmp(&(a.2 - a.1).abs()));
            let score = drifts
                .iter()
                .map(|(_, p, o)| (o - p).abs())
                .fold(0.0, f64::max);
            out.push(Finding {
                rule: "task-weight-divergence",
                severity: Severity::Warning,
                score,
                message: format!(
                    "{} task(s) consume a different share of busy time than profiled",
                    drifts.len()
                ),
                evidence: drifts
                    .iter()
                    .take(3)
                    .map(|(task, pred, obs)| {
                        Evidence::note(format!(
                            "task {task}: predicted {:.0}% of busy time, observed {:.0}%",
                            100.0 * pred,
                            100.0 * obs
                        ))
                    })
                    .collect(),
            });
        }
    }

    // Utilization drift is informational: real schedulers rarely hit
    // simulated packing.
    let obs_trace = graph.to_trace();
    let obs_cores = {
        let mut cores: Vec<u32> = graph.invocations.iter().map(|i| i.core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    };
    let pred_cores = {
        let mut cores: Vec<usize> = predicted.tasks.iter().map(|t| t.core.index()).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    };
    let obs_util = obs_trace.utilization(obs_cores.max(1));
    let pred_util = predicted.utilization(pred_cores.max(1));
    if (obs_util - pred_util).abs() > 0.25 {
        out.push(Finding {
            rule: "utilization-divergence",
            severity: Severity::Info,
            score: (obs_util - pred_util).abs(),
            message: format!(
                "observed utilization {:.0}% vs predicted {:.0}%",
                100.0 * obs_util,
                100.0 * pred_util
            ),
            evidence: vec![Evidence::note(format!(
                "observed over {obs_cores} active core(s), predicted over {pred_cores}"
            ))],
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::testutil::two_core_report;
    use bamboo_lang::ids::TaskId;
    use bamboo_machine::CoreId;
    use bamboo_schedule::trace::{DataDep, TraceTask};
    use bamboo_schedule::InstanceId;

    fn tt(
        id: usize,
        task: usize,
        core: usize,
        start: u64,
        end: u64,
        deps: Vec<DataDep>,
    ) -> TraceTask {
        TraceTask {
            id,
            task: TaskId::new(task),
            instance: InstanceId(task as u32),
            core: CoreId::new(core),
            start,
            end,
            deps,
            prev_on_core: None,
        }
    }

    /// A prediction whose counts/edges match the observed fixture:
    /// startup -> work x2 -> reduce, plus the accumulator edge.
    fn matching_prediction() -> ExecutionTrace {
        let tasks = vec![
            tt(
                0,
                0,
                0,
                0,
                1000,
                vec![DataDep {
                    producer: None,
                    arrival: 0,
                }],
            ),
            tt(
                1,
                1,
                0,
                1000,
                2200,
                vec![DataDep {
                    producer: Some(0),
                    arrival: 1000,
                }],
            ),
            tt(
                2,
                1,
                1,
                1000,
                2000,
                vec![DataDep {
                    producer: Some(0),
                    arrival: 1000,
                }],
            ),
            tt(
                3,
                2,
                0,
                2200,
                8200,
                vec![
                    DataDep {
                        producer: Some(0),
                        arrival: 1050,
                    },
                    DataDep {
                        producer: Some(1),
                        arrival: 2200,
                    },
                    DataDep {
                        producer: Some(2),
                        arrival: 2100,
                    },
                ],
            ),
        ];
        ExecutionTrace {
            tasks,
            makespan: 8200,
        }
    }

    #[test]
    fn local_findings_always_include_the_critical_path() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let ledger = Ledger::from_report(&two_core_report());
        let path = ObservedPath::from_graph(&graph);
        let findings = local_findings(&graph, &ledger, Some(&path));
        assert!(findings.iter().any(|f| f.rule == "critical-path"));
        // The fixture has one lock retry and one steal.
        assert!(findings.iter().any(|f| f.rule == "lock-contention"));
        assert!(findings.iter().any(|f| f.rule == "steal-storm"));
        for f in &findings {
            assert!(!f.evidence.is_empty(), "{} has no evidence", f.rule);
        }
    }

    #[test]
    fn matching_prediction_raises_no_critical_findings() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let findings = predicted_vs_observed(&graph, &matching_prediction());
        assert!(
            !findings.iter().any(|f| f.severity == Severity::Critical),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_invocation_is_a_rate_matching_violation() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let mut predicted = matching_prediction();
        predicted.tasks.remove(2); // drop one work invocation
        let findings = predicted_vs_observed(&graph, &predicted);
        let rate = findings
            .iter()
            .find(|f| f.rule == "rate-matching-violation")
            .expect("count mismatch flagged");
        assert_eq!(rate.severity, Severity::Critical);
        assert!(rate.evidence.iter().any(|e| e.detail.contains("task 1")));
    }

    #[test]
    fn rewired_edge_is_a_causal_divergence() {
        let graph = ObservedGraph::from_report(&two_core_report());
        let mut predicted = matching_prediction();
        // Rewire the accumulator edge: reduce's first dep now claims to
        // come from a work invocation instead of startup.
        predicted.tasks[3].deps[0].producer = Some(1);
        let findings = predicted_vs_observed(&graph, &predicted);
        assert!(
            findings.iter().any(|f| f.rule == "causal-edge-divergence"),
            "{findings:?}"
        );
    }

    #[test]
    fn empty_inputs_produce_no_findings() {
        let graph = ObservedGraph::default();
        assert!(predicted_vs_observed(&graph, &matching_prediction()).is_empty());
        let ledger = Ledger::default();
        assert!(local_findings(&graph, &ledger, None).is_empty());
    }

    #[test]
    fn fault_findings_attribute_injected_faults() {
        use crate::event::Event;
        let mut report = TelemetryReport::empty();
        report.events = vec![
            Event {
                ts: 10,
                kind: EventKind::Fault,
                core: 2,
                a: fault_code::CORE_KILL,
                b: 2,
                c: u64::MAX,
            },
            Event {
                ts: 12,
                kind: EventKind::Recover,
                core: 2,
                a: recover_code::FAILOVER_DRAIN,
                b: 3,
                c: u64::MAX,
            },
            Event {
                ts: 14,
                kind: EventKind::Recover,
                core: 0,
                a: recover_code::REROUTE,
                b: 1,
                c: 9,
            },
            Event {
                ts: 20,
                kind: EventKind::Fault,
                core: 0,
                a: fault_code::MSG_DROP,
                b: 2,
                c: 9,
            },
            Event {
                ts: 21,
                kind: EventKind::Recover,
                core: 0,
                a: recover_code::REDELIVER,
                b: 2,
                c: 9,
            },
            Event {
                ts: 30,
                kind: EventKind::Fault,
                core: 1,
                a: fault_code::MSG_DELAY,
                b: 50_000,
                c: 11,
            },
        ];
        let findings = fault_findings(&report);
        let kill = findings
            .iter()
            .find(|f| f.rule == "injected-core-kill")
            .expect("kill finding");
        assert!(kill.message.contains("core 2"), "{}", kill.message);
        assert!(
            kill.message.contains("3 buffered object(s)"),
            "{}",
            kill.message
        );
        let drops = findings
            .iter()
            .find(|f| f.rule == "injected-message-drops")
            .expect("drop finding");
        assert!(drops.message.contains("1 message(s)"), "{}", drops.message);
        assert!(findings.iter().any(|f| f.rule == "injected-latency"));
        for f in &findings {
            assert!(!f.evidence.is_empty(), "{} has no evidence", f.rule);
        }
    }

    #[test]
    fn fault_free_report_yields_no_fault_findings() {
        assert!(fault_findings(&two_core_report()).is_empty());
        assert!(fault_findings(&TelemetryReport::empty()).is_empty());
    }
}
