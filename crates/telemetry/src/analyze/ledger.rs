//! Per-core time-breakdown ledger.
//!
//! Every core's session span is partitioned into six buckets by
//! walking its event stream once: each gap between consecutive events
//! is attributed to the activity that *ended* with the later event
//! (inside a task body it is compute regardless). The partition is
//! constructive — nothing is estimated, every moment lands in exactly
//! one bucket — so per-core buckets sum to the span exactly, and the
//! whole ledger sums to `span × cores`.

use crate::event::EventKind;
use crate::report::TelemetryReport;
use crate::TimeUnit;
use std::fmt::Write as _;

/// One core's time partition. All fields are in the report's
/// [`TimeUnit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreLedger {
    /// The core index.
    pub core: u32,
    /// Time inside task bodies (includes exit actions and routing done
    /// by the body's worker — the executor's unit of useful work).
    pub compute: u64,
    /// Time ended by a lock failure, or by an acquisition that needed
    /// retries: the parameter-lock protocol stalling progress.
    pub lock_wait: u64,
    /// Time between an invocation being runnable and its body starting
    /// (dispatch latency, contention-free).
    pub queue_wait: u64,
    /// Time ended by a successful steal: scanning and popping remote
    /// queues.
    pub steal: u64,
    /// Time ended by message/bookkeeping work outside a body (sends,
    /// invocation formation, queue samples).
    pub routing: u64,
    /// Time ended by an object arrival, plus the tail after the last
    /// event: the core genuinely had nothing to do.
    pub idle: u64,
}

impl CoreLedger {
    /// Sum of all buckets; equals the ledger's span by construction.
    pub fn total(&self) -> u64 {
        self.compute + self.lock_wait + self.queue_wait + self.steal + self.routing + self.idle
    }

    /// Compute share of the span (0 when the span is empty).
    pub fn utilization(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.compute as f64 / total as f64
        }
    }
}

/// The per-core time breakdown of one recorded session.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    /// The partitioned span (per core).
    pub span: u64,
    /// Time base of `span` and every bucket.
    pub unit: TimeUnit,
    /// One row per core the session was created with (cores that never
    /// recorded an event are fully idle).
    pub cores: Vec<CoreLedger>,
}

impl Ledger {
    /// Builds the ledger by partitioning each core's event stream.
    pub fn from_report(report: &TelemetryReport) -> Self {
        let span = match report.unit {
            TimeUnit::Nanos => report.wall_ns.max(report.last_ts()),
            TimeUnit::Cycles => report.last_ts(),
        };
        let max_core = report.events.iter().map(|e| e.core + 1).max().unwrap_or(0) as usize;
        let n = report.cores.max(max_core);
        let mut cores: Vec<CoreLedger> = (0..n)
            .map(|core| CoreLedger {
                core: core as u32,
                ..CoreLedger::default()
            })
            .collect();
        for row in &mut cores {
            let mut cursor = 0u64;
            let mut in_task = false;
            for e in report.events_on(row.core) {
                let gap = e.ts.saturating_sub(cursor);
                let bucket = if in_task {
                    &mut row.compute
                } else {
                    match e.kind {
                        EventKind::TaskStart => &mut row.queue_wait,
                        // An end without a recorded start: the body was
                        // running even though the opening event was lost.
                        EventKind::TaskEnd => &mut row.compute,
                        EventKind::LockFailed => &mut row.lock_wait,
                        EventKind::LockAcquired if e.b > 0 => &mut row.lock_wait,
                        EventKind::LockAcquired => &mut row.queue_wait,
                        EventKind::Steal => &mut row.steal,
                        // Time leading up to a fault firing is ordinary
                        // idleness; time leading up to a completed
                        // recovery action was spent re-routing work.
                        // Serving ingress events land on the driver's
                        // pseudo-core: the gap leading up to an arrival
                        // or a detected completion is time the core was
                        // not doing its own work (idle); admitting or
                        // shedding a request is routing-side work.
                        EventKind::ObjRecv
                        | EventKind::Fault
                        | EventKind::ReqArrive
                        | EventKind::ReqComplete => &mut row.idle,
                        EventKind::ObjSend
                        | EventKind::QueueDepth
                        | EventKind::InvQueued
                        | EventKind::InvLink
                        | EventKind::Recover
                        | EventKind::ReqAdmit
                        | EventKind::ReqShed
                        | EventKind::Relayout => &mut row.routing,
                        // Estimation samples are emitted inside the
                        // body span (before TaskEnd); the gap leading
                        // up to one is compute, already attributed by
                        // the `in_task` arm — standalone they carry no
                        // wait semantics.
                        EventKind::TaskExit | EventKind::TaskAlloc => &mut row.compute,
                    }
                };
                *bucket += gap;
                cursor = e.ts.max(cursor);
                match e.kind {
                    EventKind::TaskStart => in_task = true,
                    EventKind::TaskEnd => in_task = false,
                    _ => {}
                }
            }
            // Tail after the last event. A body left open (lost end
            // event) still counts as compute.
            let tail = span.saturating_sub(cursor);
            if in_task {
                row.compute += tail;
            } else {
                row.idle += tail;
            }
        }
        Ledger {
            span,
            unit: report.unit,
            cores,
        }
    }

    /// The whole-session aggregate (core field is meaningless).
    pub fn totals(&self) -> CoreLedger {
        let mut total = CoreLedger::default();
        for row in &self.cores {
            total.compute += row.compute;
            total.lock_wait += row.lock_wait;
            total.queue_wait += row.queue_wait;
            total.steal += row.steal;
            total.routing += row.routing;
            total.idle += row.idle;
        }
        total
    }

    /// Renders the breakdown as an aligned table, one row per core plus
    /// a totals row.
    pub fn table(&self) -> String {
        let label = match self.unit {
            TimeUnit::Nanos => "ns",
            TimeUnit::Cycles => "cycles",
        };
        let mut out = format!(
            "per-core time breakdown (span {} {} per core)\n",
            self.span, label
        );
        let _ = writeln!(
            out,
            "core      compute    lock-wait   queue-wait        steal      routing         idle  util%"
        );
        let mut render = |name: String, row: &CoreLedger| {
            let _ = writeln!(
                out,
                "{name:>4} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6.1}",
                row.compute,
                row.lock_wait,
                row.queue_wait,
                row.steal,
                row.routing,
                row.idle,
                100.0 * row.utilization(),
            );
        };
        for row in &self.cores {
            render(row.core.to_string(), row);
        }
        render("all".into(), &self.totals());
        out
    }

    /// Serializes the ledger as a JSON object (`span`, `unit`, `cores`
    /// array of bucket objects).
    pub fn json(&self) -> String {
        let unit = match self.unit {
            TimeUnit::Nanos => "ns",
            TimeUnit::Cycles => "cycles",
        };
        let mut out = format!("{{\"span\":{},\"unit\":\"{unit}\",\"cores\":[", self.span);
        for (i, row) in self.cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"core\":{},\"compute\":{},\"lock_wait\":{},\"queue_wait\":{},\"steal\":{},\"routing\":{},\"idle\":{}}}",
                row.core, row.compute, row.lock_wait, row.queue_wait, row.steal, row.routing, row.idle
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::testutil::two_core_report;
    use crate::json;

    #[test]
    fn buckets_sum_exactly_to_the_span() {
        let report = two_core_report();
        let ledger = Ledger::from_report(&report);
        assert_eq!(ledger.span, 10_000);
        assert_eq!(ledger.cores.len(), 2);
        for row in &ledger.cores {
            assert_eq!(
                row.total(),
                ledger.span,
                "core {} partition leaks",
                row.core
            );
        }
        assert_eq!(ledger.totals().total(), ledger.span * 2);
    }

    #[test]
    fn buckets_attribute_the_right_activities() {
        let ledger = Ledger::from_report(&two_core_report());
        let core0 = &ledger.cores[0];
        let core1 = &ledger.cores[1];
        // Core 0 survived a failed try-lock-all and a retried acquire.
        assert!(core0.lock_wait > 0);
        assert!(core0.compute > core1.compute, "core 0 ran startup + reduce");
        // Core 1's only acquisition path was a steal; its tail is idle.
        assert!(core1.steal > 0);
        assert!(core1.idle > core0.idle);
        assert_eq!(core0.steal, 0);
    }

    #[test]
    fn idle_cores_are_fully_idle() {
        let mut report = two_core_report();
        report.cores = 3; // session created with a third, silent worker
        let ledger = Ledger::from_report(&report);
        assert_eq!(ledger.cores.len(), 3);
        assert_eq!(ledger.cores[2].idle, ledger.span);
        assert_eq!(ledger.cores[2].total(), ledger.span);
    }

    #[test]
    fn table_and_json_render() {
        let ledger = Ledger::from_report(&two_core_report());
        let table = ledger.table();
        assert!(table.contains("span 10000 ns"), "{table}");
        assert!(table.lines().any(|l| l.trim_start().starts_with("all ")));
        let doc = json::parse(&ledger.json()).unwrap();
        assert_eq!(doc.get("span").unwrap().as_f64(), Some(10_000.0));
        assert_eq!(doc.get("cores").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn empty_report_yields_empty_ledger() {
        let ledger = Ledger::from_report(&crate::report::TelemetryReport::empty());
        assert_eq!(ledger.span, 0);
        assert!(ledger.cores.is_empty());
        assert_eq!(ledger.totals().total(), 0);
    }
}
