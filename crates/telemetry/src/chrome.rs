//! Chrome `chrome://tracing` / Perfetto JSON export.
//!
//! This is the single place in the workspace that knows the Chrome
//! trace-event format. Both recorded telemetry
//! ([`crate::TelemetryReport`]) and predicted schedules
//! ([`bamboo_schedule::trace::ExecutionTrace`], from the scheduling
//! simulator or the virtual executor) render through it, so a predicted
//! and an observed timeline can sit side by side in one file as two
//! "processes" (pid 1 = predicted, pid 2 = observed).
//!
//! Format notes: each event is one JSON object; `ph` is the phase
//! ("X" complete, "i" instant, "C" counter, "M" metadata); `ts` and
//! `dur` are microseconds; `pid`/`tid` pick the row. Load the file via
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::event::EventKind;
use crate::json::{write_f64, write_str};
use crate::report::TelemetryReport;
use crate::TimeUnit;
use bamboo_lang::spec::ProgramSpec;
use bamboo_schedule::trace::ExecutionTrace;
use std::fmt::Write as _;

/// Conventional pid for predicted (simulated) timelines.
pub const PID_PREDICTED: u64 = 1;
/// Conventional pid for observed (executed) timelines.
pub const PID_OBSERVED: u64 = 2;

/// An in-progress Chrome trace document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn event_header(&mut self, ph: &str, name: &str, pid: u64, tid: u64, ts_us: f64) -> String {
        let mut e = String::with_capacity(96);
        e.push_str("{\"name\":");
        write_str(&mut e, name);
        let _ = write!(e, ",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":");
        write_f64(&mut e, ts_us);
        e
    }

    /// Adds a `process_name` metadata event so the viewer labels `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut e = self.event_header("M", "process_name", pid, 0, 0.0);
        e.push_str(",\"args\":{\"name\":");
        write_str(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Adds a `thread_name` metadata event so the viewer labels a core row.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut e = self.event_header("M", "thread_name", pid, tid, 0.0);
        e.push_str(",\"args\":{\"name\":");
        write_str(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Adds a complete ("X") slice: `name` ran on row `tid` of process
    /// `pid` from `ts_us` for `dur_us` microseconds. `args` are extra
    /// `(key, value)` pairs shown in the viewer's detail pane.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, f64)],
    ) {
        let mut e = self.event_header("X", name, pid, tid, ts_us);
        e.push_str(",\"dur\":");
        write_f64(&mut e, dur_us.max(0.001)); // zero-width slices vanish in the viewer
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                write_str(&mut e, k);
                e.push(':');
                write_f64(&mut e, *v);
            }
            e.push('}');
        }
        e.push('}');
        self.events.push(e);
    }

    /// Adds a thread-scoped instant ("i") marker.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64) {
        let mut e = self.event_header("i", name, pid, tid, ts_us);
        e.push_str(",\"s\":\"t\"}");
        self.events.push(e);
    }

    /// Adds a counter ("C") sample; the viewer plots `series` over time.
    pub fn counter(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: f64,
        series: &str,
        value: f64,
    ) {
        let mut e = self.event_header("C", name, pid, tid, ts_us);
        e.push_str(",\"args\":{");
        write_str(&mut e, series);
        e.push(':');
        write_f64(&mut e, value);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Serializes the document (`{"traceEvents": [...], ...}`).
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(64 + self.events.iter().map(|e| e.len() + 2).sum::<usize>());
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders an [`ExecutionTrace`] (one slice per task invocation,
    /// one row per core) into process `pid`. Cycles map 1:1 to
    /// microseconds so predicted timelines are directly readable.
    pub fn push_execution_trace(
        &mut self,
        pid: u64,
        label: &str,
        trace: &ExecutionTrace,
        spec: &ProgramSpec,
    ) {
        self.process_name(pid, label);
        let mut cores: Vec<usize> = trace.tasks.iter().map(|t| t.core.index()).collect();
        cores.sort_unstable();
        cores.dedup();
        for &core in &cores {
            self.thread_name(pid, core as u64, &format!("core {core}"));
        }
        for t in &trace.tasks {
            let name = &spec.task(t.task).name;
            let data_ready = t.data_ready();
            self.complete(
                pid,
                t.core.index() as u64,
                name,
                t.start as f64,
                (t.end - t.start) as f64,
                &[
                    ("instance", t.instance.index() as f64),
                    ("trace_id", t.id as f64),
                    ("data_ready", data_ready as f64),
                ],
            );
        }
    }

    /// Renders a recorded [`TelemetryReport`] into process `pid`:
    /// task slices per core (from paired start/end events), instants
    /// for lock contention, and counter tracks for queue depth and
    /// payload traffic.
    pub fn push_report(
        &mut self,
        pid: u64,
        label: &str,
        report: &TelemetryReport,
        spec: &ProgramSpec,
    ) {
        self.process_name(pid, label);
        for &core in &report.active_cores() {
            self.thread_name(pid, core as u64, &format!("core {core}"));
        }
        let to_us = |ts: u64| match report.unit {
            TimeUnit::Nanos => ts as f64 / 1000.0,
            TimeUnit::Cycles => ts as f64,
        };
        // One pending (ts, task, instance) slot per core: task bodies on a
        // worker never nest, so pairing start→end is a stack of depth 1.
        let max_core = report.events.iter().map(|e| e.core).max().unwrap_or(0) as usize;
        let mut open: Vec<Option<(u64, u64, u64)>> = vec![None; max_core + 1];
        let mut sent: Vec<u64> = vec![0; max_core + 1];
        for e in &report.events {
            let core = e.core as usize;
            let tid = e.core as u64;
            match e.kind {
                EventKind::TaskStart => open[core] = Some((e.ts, e.a, e.b)),
                EventKind::TaskEnd => {
                    if let Some((start, task, instance)) = open[core].take() {
                        let name = spec
                            .tasks
                            .get(task as usize)
                            .map(|t| t.name.as_str())
                            .unwrap_or("task");
                        self.complete(
                            pid,
                            tid,
                            name,
                            to_us(start),
                            to_us(e.ts.saturating_sub(start).max(1)),
                            &[("instance", instance as f64)],
                        );
                    }
                }
                EventKind::LockFailed => self.instant(pid, tid, "lock contention", to_us(e.ts)),
                EventKind::Steal => self.instant(pid, tid, "steal", to_us(e.ts)),
                EventKind::Fault => self.instant(pid, tid, "fault", to_us(e.ts)),
                EventKind::Recover => self.instant(pid, tid, "recover", to_us(e.ts)),
                EventKind::QueueDepth => {
                    self.counter(
                        pid,
                        tid,
                        &format!("queue depth (core {core})"),
                        to_us(e.ts),
                        "queued",
                        e.a as f64,
                    );
                }
                EventKind::ObjSend => {
                    sent[core] += e.a;
                    self.counter(
                        pid,
                        tid,
                        &format!("bytes sent (core {core})"),
                        to_us(e.ts),
                        "bytes",
                        sent[core] as f64,
                    );
                }
                EventKind::ReqShed => self.instant(pid, tid, "request shed", to_us(e.ts)),
                EventKind::ReqComplete => {
                    self.instant(pid, tid, "request complete", to_us(e.ts));
                }
                EventKind::Relayout => self.instant(pid, tid, "relayout", to_us(e.ts)),
                EventKind::LockAcquired
                | EventKind::ObjRecv
                | EventKind::InvQueued
                | EventKind::InvLink
                | EventKind::ReqArrive
                | EventKind::ReqAdmit
                | EventKind::TaskExit
                | EventKind::TaskAlloc => {}
            }
        }
    }
}

/// Serializes one [`ExecutionTrace`] to a complete Chrome trace document.
pub fn execution_trace_json(trace: &ExecutionTrace, spec: &ProgramSpec, label: &str) -> String {
    let mut chrome = ChromeTrace::new();
    chrome.push_execution_trace(PID_PREDICTED, label, trace, spec);
    chrome.finish()
}

/// Serializes a predicted and an observed [`ExecutionTrace`] side by
/// side (pids [`PID_PREDICTED`] and [`PID_OBSERVED`]) — the paper's
/// Fig. 6/9 comparison as one loadable timeline.
pub fn side_by_side_json(
    predicted: &ExecutionTrace,
    observed: &ExecutionTrace,
    spec: &ProgramSpec,
) -> String {
    let mut chrome = ChromeTrace::new();
    chrome.push_execution_trace(PID_PREDICTED, "predicted (simulator)", predicted, spec);
    chrome.push_execution_trace(PID_OBSERVED, "observed (executor)", observed, spec);
    chrome.finish()
}

/// Serializes a recorded [`TelemetryReport`] to a complete Chrome trace
/// document.
pub fn report_json(report: &TelemetryReport, spec: &ProgramSpec, label: &str) -> String {
    let mut chrome = ChromeTrace::new();
    chrome.push_report(PID_OBSERVED, label, report, spec);
    chrome.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn events_serialize_as_valid_json() {
        let mut chrome = ChromeTrace::new();
        chrome.process_name(1, "predicted");
        chrome.thread_name(1, 0, "core 0");
        chrome.complete(1, 0, "blur \"x\"", 10.0, 5.5, &[("instance", 3.0)]);
        chrome.instant(1, 0, "lock contention", 12.0);
        chrome.counter(1, 0, "queue", 13.0, "queued", 4.0);
        let doc = json::parse(&chrome.finish()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5);
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
            assert!(e.get("ts").is_some());
        }
        let slice = &events[2];
        assert_eq!(slice.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(slice.get("name").unwrap().as_str(), Some("blur \"x\""));
        assert_eq!(slice.get("dur").unwrap().as_f64(), Some(5.5));
        assert_eq!(
            slice.get("args").unwrap().get("instance").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn zero_duration_slices_get_minimum_width() {
        let mut chrome = ChromeTrace::new();
        chrome.complete(1, 0, "t", 0.0, 0.0, &[]);
        let doc = json::parse(&chrome.finish()).unwrap();
        let dur = doc.get("traceEvents").unwrap().as_arr().unwrap()[0]
            .get("dur")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(dur > 0.0);
    }
}
