//! Execution traces (the paper's Figure 6).
//!
//! Both the scheduling simulator and the runtime's virtual-time executor
//! emit an [`ExecutionTrace`]: one record per task invocation with its
//! core, start/end times, the arrivals of its parameter objects (data
//! edges), and its predecessor on the same core (resource edge). The
//! critical-path analysis consumes this structure.

use crate::layout::InstanceId;
use bamboo_lang::ids::TaskId;
use bamboo_machine::CoreId;
use bamboo_profile::Cycles;

/// One data dependence of an invocation: a parameter object's arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DataDep {
    /// The invocation that produced/released the object; `None` for the
    /// injected startup object.
    pub producer: Option<usize>,
    /// When the object arrived at the consuming core (after transfer).
    pub arrival: Cycles,
}

/// One task invocation in a trace.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceTask {
    /// Index of this record within the trace.
    pub id: usize,
    /// The invoked task.
    pub task: TaskId,
    /// The group instance that executed it.
    pub instance: InstanceId,
    /// The hosting core.
    pub core: CoreId,
    /// Start time.
    pub start: Cycles,
    /// End time.
    pub end: Cycles,
    /// Parameter arrivals.
    pub deps: Vec<DataDep>,
    /// The previous invocation on the same core, if any.
    pub prev_on_core: Option<usize>,
}

impl TraceTask {
    /// When all parameter objects were available at the core.
    pub fn data_ready(&self) -> Cycles {
        self.deps.iter().map(|d| d.arrival).max().unwrap_or(0)
    }

    /// The invocation's duration.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// A complete trace of one (simulated or real) execution.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionTrace {
    /// Invocation records, ordered by start time.
    pub tasks: Vec<TraceTask>,
    /// Completion time of the whole execution.
    pub makespan: Cycles,
}

impl ExecutionTrace {
    /// Total busy cycles across all cores.
    pub fn busy_cycles(&self) -> Cycles {
        self.tasks.iter().map(|t| t.duration()).sum()
    }

    /// Fraction of `cores`' capacity spent doing useful work.
    pub fn utilization(&self, cores: usize) -> f64 {
        if self.makespan == 0 || cores == 0 {
            return 0.0;
        }
        self.busy_cycles() as f64 / (self.makespan as f64 * cores as f64)
    }

    /// The invocation that finishes last, if any.
    pub fn last(&self) -> Option<&TraceTask> {
        self.tasks.iter().max_by_key(|t| t.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: usize, core: usize, start: u64, end: u64) -> TraceTask {
        TraceTask {
            id,
            task: TaskId::new(0),
            instance: InstanceId(0),
            core: CoreId::new(core),
            start,
            end,
            deps: vec![],
            prev_on_core: None,
        }
    }

    #[test]
    fn data_ready_is_max_arrival() {
        let mut task = t(0, 0, 10, 20);
        task.deps = vec![
            DataDep {
                producer: None,
                arrival: 3,
            },
            DataDep {
                producer: Some(1),
                arrival: 9,
            },
        ];
        assert_eq!(task.data_ready(), 9);
    }

    #[test]
    fn utilization_counts_busy_share() {
        let trace = ExecutionTrace {
            tasks: vec![t(0, 0, 0, 10), t(1, 1, 0, 10)],
            makespan: 20,
        };
        assert!((trace.utilization(2) - 0.5).abs() < 1e-9);
        assert_eq!(trace.busy_cycles(), 20);
    }

    #[test]
    fn last_returns_latest_end() {
        let trace = ExecutionTrace {
            tasks: vec![t(0, 0, 0, 10), t(1, 1, 5, 30)],
            makespan: 30,
        };
        assert_eq!(trace.last().map(|x| x.id), Some(1));
    }
}
