#![warn(missing_docs)]

//! # bamboo-schedule
//!
//! Implementation synthesis for Bamboo programs (Zhou & Demsky, PLDI
//! 2010, sections 4.3-4.5): the machinery that turns a program's combined
//! state transition graph plus profile data into an optimized many-core
//! layout.
//!
//! Pipeline stages, each its own module:
//!
//! 1. [`groups`] — core groups and the group graph (data locality rule);
//! 2. [`preprocess`] — the SCC tree transformation;
//! 3. [`transforms`] — data-parallelization and rate-matching rules;
//! 4. [`mapping`] — non-isomorphic instance→core mapping enumeration with
//!    random subspace skipping;
//! 5. [`layout`] — candidate layouts and the object [`layout::Router`]
//!    shared with the runtime;
//! 6. [`sim`] — the Markov-driven discrete-event scheduling simulator;
//! 7. [`trace`] / [`critpath`] — execution traces and critical-path
//!    analysis;
//! 8. [`dsa`] — directed simulated annealing;
//! 9. [`synthesis`] — the end-to-end driver.
//!
//! # Examples
//!
//! See [`synthesis::synthesize`] for the one-call entry point; the
//! umbrella crate `bamboo` wires it into its `Compiler` driver.

pub mod critpath;
pub mod dsa;
pub mod groups;
pub mod layout;
pub mod mapping;
pub mod preprocess;
pub mod sim;
pub mod synthesis;
#[cfg(test)]
pub(crate) mod testutil;
pub mod trace;
pub mod transforms;
pub mod util;

pub use critpath::{critical_path, propose_moves, MoveProposal};
pub use dsa::{optimize, optimize_with_cache, DsaOptions, DsaStats};
pub use groups::{Group, GroupGraph, GroupId, GroupNewEdge};
pub use layout::{GroupInstance, InstanceId, Layout, RouteDecision, Router, RouterInstanceState};
pub use mapping::{
    control_spread_layout, enumerate_mappings, random_layouts, spread_layout, MappingOptions,
};
pub use preprocess::scc_tree_transform;
pub use sim::{simulate, SimCache, SimOptions, SimResult};
pub use synthesis::{single_core_plan, synthesize, SynthesisOptions, SynthesisResult};
pub use trace::{DataDep, ExecutionTrace, TraceTask};
pub use transforms::{
    compute_replication, compute_replication_with, replicable, Replication, RuleSet,
};
