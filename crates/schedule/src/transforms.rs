//! Parallelization rules (paper §4.3.3).
//!
//! After preprocessing, each group has at most one external work source.
//! Two rules decide how many copies of each group the layout should offer:
//!
//! - **Data parallelization**: a task that allocates `m` objects per
//!   invocation into a group exposes `m`-way parallelism — replicate the
//!   destination group to `m` copies.
//! - **Rate matching**: a short producing cycle can overwhelm one consumer
//!   copy. With cycle time `t_cycle` and per-object consumer processing
//!   time `t_process`, `n = ceil(m * t_process / t_cycle)` copies match
//!   the consumption rate to the production rate. Applied only when the
//!   producer is in a different SCC than the consumer.
//!
//! The larger of the two counts wins, clamped to the machine's core count.
//! Groups containing a multi-parameter task whose parameters do *not*
//! share a tag cannot be replicated (§4.3.4): such a task could otherwise
//! starve with its parameters enqueued at different copies.

use crate::groups::{GroupGraph, GroupId};
use crate::util::strongly_connected_components;
use bamboo_lang::spec::ProgramSpec;
use bamboo_profile::Profile;

/// Replication decision: copies per group.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Replication {
    /// Copies per group (indexed by [`GroupId`]); always ≥ 1.
    pub copies: Vec<usize>,
}

impl Replication {
    /// One copy of everything (no parallelization).
    pub fn serial(graph: &GroupGraph) -> Self {
        Replication {
            copies: vec![1; graph.groups.len()],
        }
    }

    /// Copies of `group`.
    pub fn of(&self, group: GroupId) -> usize {
        self.copies[group.index()]
    }

    /// Total group instances across the layout.
    pub fn total_instances(&self) -> usize {
        self.copies.iter().sum()
    }
}

/// Returns whether `group` may be replicated: the startup group never is,
/// and any group containing a multi-parameter task without a shared tag
/// pins the group to a single instantiation.
pub fn replicable(spec: &ProgramSpec, graph: &GroupGraph, group: GroupId) -> bool {
    if group == graph.startup_group {
        return false;
    }
    graph.groups[group.index()].tasks.iter().all(|t| {
        let task = spec.task(*t);
        task.params.len() <= 1 || task.all_params_share_tag()
    })
}

/// Which parallelization rules to apply (ablation knob; both on by
/// default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSet {
    /// Apply the data-parallelization rule.
    pub data_parallelization: bool,
    /// Apply the rate-matching rule.
    pub rate_matching: bool,
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet {
            data_parallelization: true,
            rate_matching: true,
        }
    }
}

/// Computes replication factors by applying the data-parallelization and
/// rate-matching rules.
pub fn compute_replication(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    core_count: usize,
) -> Replication {
    compute_replication_with(spec, graph, profile, core_count, RuleSet::default())
}

/// [`compute_replication`] with an explicit rule selection (used by the
/// ablation benches).
pub fn compute_replication_with(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    core_count: usize,
    rules: RuleSet,
) -> Replication {
    let n = graph.groups.len();
    let mut copies = vec![1usize; n];

    // SCC membership over new edges, for the rate-matching side condition
    // and cycle-time estimation.
    let mut adj = vec![Vec::new(); n];
    for e in &graph.new_edges {
        adj[e.from.index()].push(e.to.index());
    }
    let sccs = strongly_connected_components(n, &adj);
    let mut scc_of = vec![0usize; n];
    for (i, scc) in sccs.iter().enumerate() {
        for &g in scc {
            scc_of[g] = i;
        }
    }

    for edge in &graph.new_edges {
        if edge.from == edge.to {
            continue;
        }
        if !replicable(spec, graph, edge.to) {
            continue;
        }
        let m = edge.mean_count;
        if m <= 0.0 {
            continue;
        }
        // Data parallelization: m copies.
        let data_copies = if rules.data_parallelization {
            m.ceil() as usize
        } else {
            1
        };

        // Rate matching (different SCCs only): n = ceil(m * t_process /
        // t_cycle). A producer invoked once in the profile (e.g. startup)
        // has no production *rate* — only data parallelism applies.
        let mut rate_copies = 1usize;
        let repeats = profile.task(edge.task).invocations() > 1;
        if rules.rate_matching && repeats && scc_of[edge.from.index()] != scc_of[edge.to.index()] {
            let t_cycle = cycle_time(graph, profile, &scc_of, edge.from, edge.task);
            let t_process = processing_time(graph, profile, edge.to);
            if t_cycle > 0 {
                rate_copies = ((m * t_process as f64) / t_cycle as f64).ceil() as usize;
            }
        }

        let wanted = data_copies.max(rate_copies).clamp(1, core_count);
        copies[edge.to.index()] = copies[edge.to.index()].max(wanted);
    }
    Replication { copies }
}

/// `t_cycle`: the time for the producing task's group to come back around
/// and allocate again. For an acyclic producer this is the task's own mean
/// time; inside an SCC it is approximated by the summed mean time of the
/// SCC's tasks (the shortest recycle path visits each task once in our
/// group model).
fn cycle_time(
    graph: &GroupGraph,
    profile: &Profile,
    scc_of: &[usize],
    producer: GroupId,
    task: bamboo_lang::ids::TaskId,
) -> u64 {
    let scc = scc_of[producer.index()];
    let in_cycle = scc_of.iter().filter(|&&s| s == scc).count() > 1
        || graph
            .new_edges
            .iter()
            .any(|e| e.from == producer && e.to == producer);
    if !in_cycle {
        return profile.task(task).mean_cycles().max(1);
    }
    let mut total = 0u64;
    for (gi, group) in graph.groups.iter().enumerate() {
        if scc_of[gi] != scc {
            continue;
        }
        for t in &group.tasks {
            total += profile.task(*t).mean_cycles();
        }
    }
    total.max(1)
}

/// `t_process`: mean cycles a consumer group spends per delivered object —
/// the summed mean time of the group's tasks.
fn processing_time(graph: &GroupGraph, profile: &Profile, consumer: GroupId) -> u64 {
    graph.groups[consumer.index()]
        .tasks
        .iter()
        .map(|t| profile.task(*t).mean_cycles())
        .sum::<u64>()
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;
    use bamboo_analysis::cstg::Cstg;
    use bamboo_analysis::DependenceAnalysis;

    #[test]
    fn keyword_count_replicates_text_group() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&crate::groups::GroupGraph::build(&spec, &cstg, &profile));
        let repl = compute_replication(&spec, &graph, &profile, 62);
        let process = spec.task_by_name("processText").unwrap();
        let g = graph.group_of_task(process).unwrap();
        // startup allocates 4 Text objects per invocation -> 4 copies.
        assert_eq!(repl.of(g), 4);
        // startup group never replicated.
        assert_eq!(repl.of(graph.startup_group), 1);
    }

    #[test]
    fn core_count_caps_replication() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&crate::groups::GroupGraph::build(&spec, &cstg, &profile));
        let repl = compute_replication(&spec, &graph, &profile, 2);
        let process = spec.task_by_name("processText").unwrap();
        let g = graph.group_of_task(process).unwrap();
        assert_eq!(repl.of(g), 2);
    }

    #[test]
    fn merge_group_is_not_replicable() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&crate::groups::GroupGraph::build(&spec, &cstg, &profile));
        let merge = spec.task_by_name("mergeIntermediateResult").unwrap();
        let g = graph.group_of_task(merge).unwrap();
        assert!(!replicable(&spec, &graph, g));
        let repl = compute_replication(&spec, &graph, &profile, 62);
        assert_eq!(repl.of(g), 1);
    }

    #[test]
    fn serial_replication_is_all_ones() {
        let (spec, cstg, profile) = kc_setup();
        let graph = crate::groups::GroupGraph::build(&spec, &cstg, &profile);
        let repl = Replication::serial(&graph);
        assert_eq!(repl.total_instances(), graph.groups.len());
        let _ = (spec, cstg);
    }

    #[test]
    fn rate_matching_exceeds_data_parallelism_for_slow_consumers() {
        // Build a producer->consumer program where the consumer is 50x
        // slower than the producer cycle: rate matching should ask for
        // more copies than m=1.
        use bamboo_lang::builder::ProgramBuilder;
        use bamboo_lang::ids::{AllocSiteId, ExitId};
        use bamboo_lang::spec::FlagExpr;
        use bamboo_profile::ProfileCollector;

        let mut b: ProgramBuilder<()> = ProgramBuilder::new("rate");
        let s = b.class("StartupObject", &["initialstate"]);
        let gen = b.class("Gen", &["go"]);
        let item = b.class("Item", &["ready"]);
        let init = b.flag(s, "initialstate");
        let go = b.flag(gen, "go");
        let ready = b.flag(item, "ready");
        b.task("startup")
            .param("s", s, FlagExpr::flag(init))
            .alloc(gen, &[(go, true)], &[])
            .exit("", |e| e.set(0, init, false))
            .body(())
            .finish();
        // produce loops on itself (a cycle), emitting one Item per trip.
        b.task("produce")
            .param("g", gen, FlagExpr::flag(go))
            .alloc(item, &[(ready, true)], &[])
            .exit("again", |e| e.set(0, go, true))
            .exit("stop", |e| e.set(0, go, false))
            .body(())
            .finish();
        b.task("consume")
            .param("i", item, FlagExpr::flag(ready))
            .exit("", |e| e.set(0, ready, false))
            .body(())
            .finish();
        let built = b.build().unwrap();
        let spec = built.spec;
        let analysis = DependenceAnalysis::run(&spec);
        let cstg = Cstg::build(&spec, &analysis);
        let mut c = ProfileCollector::new(&spec, "x");
        let startup = spec.task_by_name("startup").unwrap();
        let produce = spec.task_by_name("produce").unwrap();
        let consume = spec.task_by_name("consume").unwrap();
        c.record(startup, ExitId::new(0), 10, &[(AllocSiteId::new(0), 1)]);
        for _ in 0..19 {
            c.record(produce, ExitId::new(0), 100, &[(AllocSiteId::new(0), 1)]);
        }
        c.record(produce, ExitId::new(1), 100, &[(AllocSiteId::new(0), 1)]);
        for _ in 0..20 {
            c.record(consume, ExitId::new(0), 5000, &[]);
        }
        let profile = c.finish();
        let graph = scc_tree_transform(&crate::groups::GroupGraph::build(&spec, &cstg, &profile));
        let repl = compute_replication(&spec, &graph, &profile, 62);
        let g = graph.group_of_task(consume).unwrap();
        // t_process=5000, t_cycle=100, m=1 -> n=50 copies.
        assert_eq!(repl.of(g), 50);
    }
}

#[cfg(test)]
mod rule_ablation_tests {
    use super::*;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;

    #[test]
    fn disabling_data_parallelization_collapses_copies() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&crate::groups::GroupGraph::build(&spec, &cstg, &profile));
        let off = compute_replication_with(
            &spec,
            &graph,
            &profile,
            62,
            RuleSet {
                data_parallelization: false,
                rate_matching: false,
            },
        );
        assert_eq!(off.total_instances(), graph.groups.len());
        let on = compute_replication(&spec, &graph, &profile, 62);
        assert!(on.total_instances() > off.total_instances());
    }
}
