//! CSTG preprocessing: the SCC tree transformation (paper §4.3.2).
//!
//! Core groups with more than one incident new-object edge receive work
//! from several disjoint sources; replicating the group per source exposes
//! that parallelism and simplifies later routing. This pass duplicates
//! strongly connected components of the group graph until every SCC
//! (except the startup's) has exactly one incoming new-object edge from
//! outside itself.

use crate::groups::{GroupGraph, GroupId, GroupNewEdge};
use crate::util::strongly_connected_components;
use std::collections::BTreeSet;

/// Transforms `graph` into a tree of SCCs.
///
/// Returns the transformed graph. Terminates because every duplication
/// strictly decreases the number of (SCC, extra incoming source) pairs;
/// a safety bound guards against pathological inputs.
pub fn scc_tree_transform(graph: &GroupGraph) -> GroupGraph {
    let mut graph = graph.clone();
    for _round in 0..64 {
        if !duplicate_one(&mut graph) {
            break;
        }
    }
    graph
}

/// SCC membership: `scc_of[g]` is the SCC index of group `g`.
fn scc_membership(graph: &GroupGraph) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = graph.groups.len();
    let mut adj = vec![Vec::new(); n];
    for e in &graph.new_edges {
        adj[e.from.index()].push(e.to.index());
    }
    let sccs = strongly_connected_components(n, &adj);
    let mut scc_of = vec![0usize; n];
    for (i, scc) in sccs.iter().enumerate() {
        for &g in scc {
            scc_of[g] = i;
        }
    }
    (sccs, scc_of)
}

/// Finds one SCC with multiple external source SCCs and duplicates it.
/// Returns whether a duplication happened.
fn duplicate_one(graph: &mut GroupGraph) -> bool {
    let (sccs, scc_of) = scc_membership(graph);
    let startup_scc = scc_of[graph.startup_group.index()];
    for (scc_idx, scc_groups) in sccs.iter().enumerate() {
        if scc_idx == startup_scc {
            continue;
        }
        // Distinct external source SCCs feeding this SCC.
        let sources: BTreeSet<usize> = graph
            .new_edges
            .iter()
            .filter(|e| scc_of[e.to.index()] == scc_idx && scc_of[e.from.index()] != scc_idx)
            .map(|e| scc_of[e.from.index()])
            .collect();
        if sources.len() <= 1 {
            continue;
        }
        // Duplicate: keep the original copy for the first source; make one
        // fresh copy of the whole SCC per additional source.
        let sources: Vec<usize> = sources.into_iter().collect();
        for &extra_source in &sources[1..] {
            // Map from original group index -> copy group index.
            let mut copy_of = std::collections::HashMap::new();
            for &g in scc_groups {
                let copy_idx = graph.groups.len();
                let mut clone = graph.groups[g].clone();
                clone.origin = graph.groups[g].origin;
                graph.groups.push(clone);
                copy_of.insert(g, copy_idx);
            }
            let mut extra_edges: Vec<GroupNewEdge> = Vec::new();
            for e in &mut graph.new_edges {
                let to_in = scc_of[e.to.index()] == scc_idx;
                let from_in = scc_groups.contains(&e.from.index());
                if to_in && scc_of[e.from.index()] == extra_source {
                    // Incoming edge from the extra source: re-point to the
                    // copy.
                    e.to = GroupId(copy_of[&e.to.index()] as u32);
                } else if from_in && to_in {
                    // Internal edge: mirror it inside the copy.
                    extra_edges.push(GroupNewEdge {
                        from: GroupId(copy_of[&e.from.index()] as u32),
                        to: GroupId(copy_of[&e.to.index()] as u32),
                        task: e.task,
                        site: e.site,
                        mean_count: e.mean_count,
                    });
                } else if from_in {
                    // Outgoing edge: the copy also produces this work.
                    extra_edges.push(GroupNewEdge {
                        from: GroupId(copy_of[&e.from.index()] as u32),
                        to: e.to,
                        task: e.task,
                        site: e.site,
                        mean_count: e.mean_count,
                    });
                }
            }
            graph.new_edges.extend(extra_edges);
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::{Group, GroupGraph, GroupId, GroupNewEdge};
    use bamboo_analysis::cstg::NodeId;
    use bamboo_lang::ids::{AllocSiteId, ClassId, TaskId};
    use bamboo_lang::spec::GlobalAllocSite;

    fn group(origin: u32, task: usize) -> Group {
        Group {
            tasks: vec![TaskId::new(task)],
            states: vec![NodeId(origin)],
            classes: vec![ClassId::new(0)],
            origin,
        }
    }

    fn edge(from: usize, to: usize, task: usize) -> GroupNewEdge {
        GroupNewEdge {
            from: GroupId(from as u32),
            to: GroupId(to as u32),
            task: TaskId::new(task),
            site: GlobalAllocSite {
                task: TaskId::new(task),
                site: AllocSiteId::new(0),
            },
            mean_count: 1.0,
        }
    }

    #[test]
    fn diamond_duplicates_shared_consumer() {
        // startup(0) feeds producers 1 and 2; both feed consumer 3.
        let graph = GroupGraph {
            groups: vec![group(0, 0), group(1, 1), group(2, 2), group(3, 3)],
            new_edges: vec![edge(0, 1, 0), edge(0, 2, 0), edge(1, 3, 1), edge(2, 3, 2)],
            startup_group: GroupId(0),
        };
        let out = scc_tree_transform(&graph);
        // Consumer duplicated: 5 groups, and each copy has one source.
        assert_eq!(out.groups.len(), 5);
        for (i, _) in out.groups.iter().enumerate() {
            if GroupId(i as u32) == out.startup_group {
                continue;
            }
            assert!(
                out.incoming(GroupId(i as u32)).count() <= 1,
                "group {i} has multiple sources"
            );
        }
        // The duplicate keeps its origin.
        assert_eq!(out.groups[4].origin, 3);
    }

    #[test]
    fn single_source_graph_is_unchanged() {
        let graph = GroupGraph {
            groups: vec![group(0, 0), group(1, 1)],
            new_edges: vec![edge(0, 1, 0)],
            startup_group: GroupId(0),
        };
        let out = scc_tree_transform(&graph);
        assert_eq!(out.groups.len(), 2);
        assert_eq!(out.new_edges.len(), 1);
    }

    #[test]
    fn cycles_are_duplicated_as_units() {
        // 0 feeds {1 <-> 2} (an SCC) and 3 also feeds it.
        let graph = GroupGraph {
            groups: vec![group(0, 0), group(1, 1), group(2, 2), group(3, 3)],
            new_edges: vec![
                edge(0, 1, 0),
                edge(1, 2, 1),
                edge(2, 1, 2),
                edge(0, 3, 0),
                edge(3, 1, 3),
            ],
            startup_group: GroupId(0),
        };
        let out = scc_tree_transform(&graph);
        // The 2-group SCC is duplicated: 4 + 2 = 6 groups.
        assert_eq!(out.groups.len(), 6);
        // Internal cycle mirrored in the copy.
        let copy_ids: Vec<usize> = vec![4, 5];
        let internal_copies = out
            .new_edges
            .iter()
            .filter(|e| copy_ids.contains(&e.from.index()) && copy_ids.contains(&e.to.index()))
            .count();
        assert_eq!(internal_copies, 2);
    }

    #[test]
    fn self_edges_do_not_trigger_duplication() {
        let graph = GroupGraph {
            groups: vec![group(0, 0), group(1, 1)],
            new_edges: vec![edge(0, 1, 0), edge(1, 1, 1)],
            startup_group: GroupId(0),
        };
        let out = scc_tree_transform(&graph);
        assert_eq!(out.groups.len(), 2);
    }
}
