//! Directed simulated annealing (paper §4.5).
//!
//! Bamboo's optimizer mirrors what a developer does by hand: run the
//! (simulated) application, find the bottleneck on the critical path,
//! move work to fix it, repeat. Each iteration simulates the candidate
//! layouts, prunes them probabilistically (good layouts survive with high
//! probability, poor ones with low probability — the annealing part),
//! derives critical-path-directed move proposals for the survivors, and
//! materializes the moved layouts as the next candidate set. When an
//! iteration fails to improve the best layout, the search continues with
//! some probability (escaping local maxima) and otherwise stops.

use crate::critpath::{apply_move, propose_moves};
use crate::groups::GroupGraph;
use crate::layout::Layout;
use crate::sim::{simulate, SimOptions, SimResult};
use bamboo_lang::spec::ProgramSpec;
use bamboo_machine::MachineDescription;
use bamboo_profile::{Cycles, Profile};
use rand::Rng;
use std::collections::HashSet;

/// DSA tuning knobs.
#[derive(Clone, Debug)]
pub struct DsaOptions {
    /// Hard cap on iterations.
    pub max_iterations: usize,
    /// Probability of keeping one of the better half of candidates.
    pub keep_best_probability: f64,
    /// Probability of keeping one of the worse half.
    pub keep_worse_probability: f64,
    /// Probability of continuing after a non-improving iteration.
    pub continue_probability: f64,
    /// Move proposals materialized per surviving layout per iteration.
    pub moves_per_layout: usize,
    /// Upper bound on live candidates per iteration.
    pub max_candidates: usize,
    /// Simulator configuration.
    pub sim: SimOptions,
}

impl Default for DsaOptions {
    fn default() -> Self {
        DsaOptions {
            max_iterations: 40,
            keep_best_probability: 0.95,
            keep_worse_probability: 0.10,
            continue_probability: 0.75,
            moves_per_layout: 10,
            max_candidates: 32,
            sim: SimOptions { collect_trace: true, ..SimOptions::default() },
        }
    }
}

/// Search statistics, reported alongside the winning layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DsaStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Total scheduling simulations run.
    pub simulations: usize,
    /// Candidates subjected to the probabilistic pruning step.
    pub candidates_evaluated: usize,
    /// Candidates that survived pruning (summed over iterations).
    /// `survivors / candidates_evaluated` is the acceptance rate.
    pub survivors: usize,
    /// Best makespan seen after each iteration — the optimizer's
    /// convergence trajectory (monotonically non-increasing).
    pub trajectory: Vec<Cycles>,
    /// Estimated makespan of the winner.
    pub best_makespan: Cycles,
}

impl DsaStats {
    /// Fraction of evaluated candidates that survived pruning, in
    /// `[0, 1]` (1.0 when nothing was evaluated).
    pub fn acceptance_rate(&self) -> f64 {
        if self.candidates_evaluated == 0 {
            1.0
        } else {
            self.survivors as f64 / self.candidates_evaluated as f64
        }
    }
}

/// Runs directed simulated annealing from `initial` candidate layouts.
///
/// Returns the best layout found, its simulation result, and search
/// statistics.
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn optimize<R: Rng>(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    machine: &MachineDescription,
    initial: Vec<Layout>,
    opts: &DsaOptions,
    rng: &mut R,
) -> (Layout, SimResult, DsaStats) {
    assert!(!initial.is_empty(), "DSA needs at least one starting layout");
    let mut stats = DsaStats::default();
    let mut candidates = initial;
    let mut best: Option<(Layout, SimResult)> = None;
    let mut seen: HashSet<String> = HashSet::new();

    for _ in 0..opts.max_iterations {
        stats.iterations += 1;
        // Evaluate.
        let mut evaluated: Vec<(Layout, SimResult)> = candidates
            .drain(..)
            .map(|layout| {
                stats.simulations += 1;
                let result = simulate(spec, graph, &layout, profile, machine, &opts.sim);
                (layout, result)
            })
            .collect();
        evaluated.sort_by_key(|(_, r)| r.makespan);
        stats.candidates_evaluated += evaluated.len();

        let improved = match (&best, evaluated.first()) {
            (Some((_, b)), Some((_, e))) => e.makespan < b.makespan,
            (None, Some(_)) => true,
            _ => false,
        };
        if let Some((layout, result)) = evaluated.first() {
            if best.as_ref().map(|(_, b)| result.makespan < b.makespan).unwrap_or(true) {
                best = Some((layout.clone(), result.clone()));
            }
        }

        // Prune probabilistically. The round's best candidate always
        // survives: dropping the sole candidate of a one-start run would
        // otherwise end the search after a single simulation.
        let half = evaluated.len().div_ceil(2);
        let survivors: Vec<(Layout, SimResult)> = evaluated
            .into_iter()
            .enumerate()
            .filter(|(i, _)| {
                if *i == 0 {
                    return true;
                }
                let p = if *i < half {
                    opts.keep_best_probability
                } else {
                    opts.keep_worse_probability
                };
                rng.gen_bool(p)
            })
            .map(|(_, x)| x)
            .collect();
        stats.survivors += survivors.len();
        if let Some((_, b)) = &best {
            stats.trajectory.push(b.makespan);
        }

        // Directed move generation, plus undirected exploration (the
        // annealing part: random moves and swaps escape the proposals'
        // blind spots — swaps in particular cross pigeonhole plateaus
        // that no single migration can improve).
        let mut next: Vec<Layout> = Vec::new();
        for (layout, result) in &survivors {
            let Some(trace) = &result.trace else { continue };
            let mut mutated: Vec<Layout> = Vec::new();
            for proposal in propose_moves(trace, layout, rng, opts.moves_per_layout) {
                mutated.push(apply_move(layout, proposal));
            }
            for _ in 0..2 {
                if layout.instances.len() > 1 {
                    let inst = crate::layout::InstanceId(
                        rng.gen_range(1..layout.instances.len()) as u32,
                    );
                    let core = bamboo_machine::CoreId::new(rng.gen_range(0..layout.core_count));
                    mutated.push(apply_move(
                        layout,
                        crate::critpath::MoveProposal { instance: inst, to_core: core },
                    ));
                }
            }
            for _ in 0..2 {
                if layout.instances.len() > 2 {
                    let a = rng.gen_range(1..layout.instances.len());
                    let b = rng.gen_range(1..layout.instances.len());
                    if a != b {
                        let (ca, cb) = (
                            layout.instances[a].core,
                            layout.instances[b].core,
                        );
                        if ca != cb {
                            let swapped = apply_move(
                                &apply_move(
                                    layout,
                                    crate::critpath::MoveProposal {
                                        instance: crate::layout::InstanceId(a as u32),
                                        to_core: cb,
                                    },
                                ),
                                crate::critpath::MoveProposal {
                                    instance: crate::layout::InstanceId(b as u32),
                                    to_core: ca,
                                },
                            );
                            mutated.push(swapped);
                        }
                    }
                }
            }
            for moved in mutated {
                let sig = format!("{:?}", moved.signature(graph));
                if seen.insert(sig) {
                    next.push(moved);
                }
                if next.len() >= opts.max_candidates {
                    break;
                }
            }
        }
        // Survivors stay in the pool too (their traces may yield different
        // random groups next round).
        for (layout, _) in survivors {
            if next.len() >= opts.max_candidates {
                break;
            }
            next.push(layout);
        }

        if next.is_empty() {
            break;
        }
        if !improved && !rng.gen_bool(opts.continue_probability) {
            break;
        }
        candidates = next;
    }

    let (layout, result) = best.expect("at least one candidate evaluated");
    stats.best_makespan = result.makespan;
    (layout, result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::random_layouts;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;
    use crate::transforms::compute_replication;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dsa_improves_on_single_core_start() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let machine = MachineDescription::quad();
        let repl = compute_replication(&spec, &graph, &profile, 4);
        // Start from the worst layout: everything on core 0.
        let cores: Vec<Vec<bamboo_machine::CoreId>> = graph
            .groups
            .iter()
            .enumerate()
            .map(|(g, _)| vec![bamboo_machine::CoreId::new(0); repl.copies[g]])
            .collect();
        let start = Layout::new(&graph, &repl, 4, &cores);
        let start_result = simulate(
            &spec,
            &graph,
            &start,
            &profile,
            &machine,
            &SimOptions { collect_trace: true, ..SimOptions::default() },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let (_best, result, stats) = optimize(
            &spec,
            &graph,
            &profile,
            &machine,
            vec![start],
            &DsaOptions::default(),
            &mut rng,
        );
        assert!(stats.simulations >= 1);
        assert!(
            result.makespan < start_result.makespan,
            "DSA failed to improve: {} !< {}",
            result.makespan,
            start_result.makespan
        );
    }

    #[test]
    fn dsa_finds_near_best_of_random_sample() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let machine = MachineDescription::quad();
        let repl = compute_replication(&spec, &graph, &profile, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = random_layouts(&graph, &repl, 4, 20, &mut rng);
        let sample_best = sample
            .iter()
            .map(|l| simulate(&spec, &graph, l, &profile, &machine, &SimOptions::default()).makespan)
            .min()
            .unwrap();
        let starts = random_layouts(&graph, &repl, 4, 3, &mut rng);
        let (_l, result, _s) = optimize(
            &spec,
            &graph,
            &profile,
            &machine,
            starts,
            &DsaOptions::default(),
            &mut rng,
        );
        assert!(
            result.makespan <= sample_best,
            "DSA {} worse than random sample best {}",
            result.makespan,
            sample_best
        );
    }

    #[test]
    #[should_panic(expected = "at least one starting layout")]
    fn empty_start_panics() {
        let (spec, cstg, profile) = kc_setup();
        let graph = GroupGraph::build(&spec, &cstg, &profile);
        let machine = MachineDescription::quad();
        let mut rng = StdRng::seed_from_u64(0);
        optimize(&spec, &graph, &profile, &machine, vec![], &DsaOptions::default(), &mut rng);
    }
}
