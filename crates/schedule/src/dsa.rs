//! Directed simulated annealing (paper §4.5).
//!
//! Bamboo's optimizer mirrors what a developer does by hand: run the
//! (simulated) application, find the bottleneck on the critical path,
//! move work to fix it, repeat. Each iteration simulates the candidate
//! layouts, prunes them probabilistically (good layouts survive with high
//! probability, poor ones with low probability — the annealing part),
//! derives critical-path-directed move proposals for the survivors, and
//! materializes the moved layouts as the next candidate set. When an
//! iteration fails to improve the best layout, the search continues with
//! some probability (escaping local maxima) and otherwise stops.
//!
//! # Parallel, memoized evaluation
//!
//! Candidate evaluation — the expensive part — is a pure function of
//! `(spec, graph, layout, profile, machine)`: [`simulate`] consumes no
//! randomness. The optimizer exploits that twice:
//!
//! * each iteration's un-memoized candidates fan out across a
//!   [`std::thread::scope`] worker pool ([`DsaOptions::threads`]) and the
//!   results are collected back **in candidate index order**, so sorting,
//!   pruning, and [`DsaStats`] are bit-identical to a serial run;
//! * a [`SimCache`] keyed by [`Layout::fingerprint`] replays results for
//!   layouts whose signature was already simulated
//!   ([`DsaOptions::memoize`]), so survivors re-entering the pool never
//!   re-simulate.
//!
//! All randomness (pruning, move generation) stays on the single driver
//! thread, which is the determinism argument: the RNG consumption
//! sequence is independent of the worker count *and* of the cache (the
//! candidate pool is fingerprint-deduplicated either way), so one seed
//! produces one trajectory at any thread count.

use crate::critpath::{apply_move, propose_moves};
use crate::groups::GroupGraph;
use crate::layout::Layout;
use crate::sim::{simulate, SimCache, SimOptions, SimResult};
use bamboo_lang::spec::ProgramSpec;
use bamboo_machine::MachineDescription;
use bamboo_profile::{Cycles, Profile};
use rand::Rng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// DSA tuning knobs.
#[derive(Clone, Debug)]
pub struct DsaOptions {
    /// Hard cap on iterations.
    pub max_iterations: usize,
    /// Probability of keeping one of the better half of candidates.
    pub keep_best_probability: f64,
    /// Probability of keeping one of the worse half.
    pub keep_worse_probability: f64,
    /// Probability of continuing after a non-improving iteration.
    pub continue_probability: f64,
    /// Move proposals materialized per surviving layout per iteration.
    pub moves_per_layout: usize,
    /// Upper bound on live candidates per iteration.
    pub max_candidates: usize,
    /// Worker threads for candidate evaluation: `0` uses every available
    /// core, `1` evaluates serially on the driver thread. The result is
    /// bit-identical at any setting.
    pub threads: usize,
    /// Memoize simulation results across iterations by layout
    /// fingerprint, so survivors re-entering the pool never re-simulate.
    /// Off reproduces the evaluate-everything shape (the A/B baseline of
    /// the `dsa` bench harness); the search trajectory is identical
    /// either way.
    pub memoize: bool,
    /// Simulator configuration.
    pub sim: SimOptions,
}

impl Default for DsaOptions {
    fn default() -> Self {
        DsaOptions {
            max_iterations: 40,
            keep_best_probability: 0.95,
            keep_worse_probability: 0.10,
            continue_probability: 0.75,
            moves_per_layout: 10,
            max_candidates: 32,
            threads: 0,
            memoize: true,
            sim: SimOptions {
                collect_trace: true,
                ..SimOptions::default()
            },
        }
    }
}

/// Resolves a thread-count knob: `0` means every available core.
pub(crate) fn worker_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Search statistics, reported alongside the winning layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DsaStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Total scheduling simulations run.
    pub simulations: usize,
    /// Candidates subjected to the probabilistic pruning step.
    pub candidates_evaluated: usize,
    /// Candidates that survived pruning (summed over iterations).
    /// `survivors / candidates_evaluated` is the acceptance rate.
    pub survivors: usize,
    /// Evaluations answered by the memoized simulation cache instead of
    /// a fresh simulation (`candidates_evaluated = simulations +
    /// cache_hits` when memoization is on).
    pub cache_hits: usize,
    /// Evaluations that ran a simulation and populated the cache. Equal
    /// to [`Self::simulations`]; kept separate so telemetry can report
    /// hit rate as `hits / (hits + misses)` uniformly.
    pub cache_misses: usize,
    /// Best makespan seen after each iteration — the optimizer's
    /// convergence trajectory (monotonically non-increasing).
    pub trajectory: Vec<Cycles>,
    /// Estimated makespan of the winner.
    pub best_makespan: Cycles,
}

impl DsaStats {
    /// Fraction of evaluated candidates that survived pruning, in
    /// `[0, 1]` (1.0 when nothing was evaluated).
    pub fn acceptance_rate(&self) -> f64 {
        if self.candidates_evaluated == 0 {
            1.0
        } else {
            self.survivors as f64 / self.candidates_evaluated as f64
        }
    }

    /// Fraction of evaluations answered by the simulation cache, in
    /// `[0, 1]` (0.0 when nothing was evaluated).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Folds another search's volume counters (iterations, simulations,
    /// candidates, survivors, cache traffic) into `self`, keeping
    /// `self`'s trajectory and best makespan. This is how `synthesize`
    /// merges per-replication-variant searches: the winning variant's
    /// stats absorb the losers' counters, so `simulations` reports total
    /// work while the trajectory stays the winner's.
    pub fn merge_counters(&mut self, other: &DsaStats) {
        self.iterations += other.iterations;
        self.simulations += other.simulations;
        self.candidates_evaluated += other.candidates_evaluated;
        self.survivors += other.survivors;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// Runs directed simulated annealing from `initial` candidate layouts.
///
/// Returns the best layout found, its simulation result, and search
/// statistics.
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn optimize<R: Rng>(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    machine: &MachineDescription,
    initial: Vec<Layout>,
    opts: &DsaOptions,
    rng: &mut R,
) -> (Layout, SimResult, DsaStats) {
    let mut cache = SimCache::new();
    optimize_with_cache(
        spec, graph, profile, machine, initial, opts, rng, &mut cache,
    )
}

/// [`optimize`] with a caller-owned memo cache, so repeated searches
/// over the *same* (spec, profile, machine) triple — the adaptive
/// controller re-optimizing every tick — replay earlier simulations
/// instead of redoing them. The cache keys on layout fingerprints
/// only; callers must clear it whenever the profile or machine
/// changes, or stale makespans will be replayed as truth.
///
/// # Panics
///
/// Panics if `initial` is empty.
#[allow(clippy::too_many_arguments)]
pub fn optimize_with_cache<R: Rng>(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    machine: &MachineDescription,
    initial: Vec<Layout>,
    opts: &DsaOptions,
    rng: &mut R,
    cache: &mut SimCache,
) -> (Layout, SimResult, DsaStats) {
    assert!(
        !initial.is_empty(),
        "DSA needs at least one starting layout"
    );
    let threads = worker_threads(opts.threads);
    let mut stats = DsaStats::default();
    let mut best: Option<(Layout, SimResult)> = None;
    let mut seen: HashSet<u64> = HashSet::new();

    // Deduplicate the starting pool by fingerprint and seed the
    // duplicate set with it. This gives the pool a strict invariant —
    // every entrant is either signature-fresh or a survivor (the exact
    // layout already simulated) — which is what lets the memo cache
    // replay results without ever conflating two signature-equal but
    // distinct placements, and keeps the search identical whether the
    // cache is on or off.
    let mut candidates: Vec<Layout> = Vec::with_capacity(initial.len());
    for layout in initial {
        if seen.insert(layout.fingerprint(graph)) {
            candidates.push(layout);
        }
    }

    for _ in 0..opts.max_iterations {
        stats.iterations += 1;
        // Evaluate: replay memoized results, fan the rest out across the
        // worker pool, and reassemble in candidate index order.
        let pool = std::mem::take(&mut candidates);
        let mut evaluated = evaluate_candidates(
            spec, graph, profile, machine, opts, pool, threads, cache, &mut stats,
        );
        evaluated.sort_by_key(|(_, r)| r.makespan);
        stats.candidates_evaluated += evaluated.len();

        let improved = match (&best, evaluated.first()) {
            (Some((_, b)), Some((_, e))) => e.makespan < b.makespan,
            (None, Some(_)) => true,
            _ => false,
        };
        if let Some((layout, result)) = evaluated.first() {
            if best
                .as_ref()
                .map(|(_, b)| result.makespan < b.makespan)
                .unwrap_or(true)
            {
                best = Some((layout.clone(), result.clone()));
            }
        }

        // Prune probabilistically. The round's best candidate always
        // survives: dropping the sole candidate of a one-start run would
        // otherwise end the search after a single simulation.
        let half = evaluated.len().div_ceil(2);
        let survivors: Vec<(Layout, SimResult)> = evaluated
            .into_iter()
            .enumerate()
            .filter(|(i, _)| {
                if *i == 0 {
                    return true;
                }
                let p = if *i < half {
                    opts.keep_best_probability
                } else {
                    opts.keep_worse_probability
                };
                rng.gen_bool(p)
            })
            .map(|(_, x)| x)
            .collect();
        stats.survivors += survivors.len();
        if let Some((_, b)) = &best {
            stats.trajectory.push(b.makespan);
        }

        // Directed move generation, plus undirected exploration (the
        // annealing part: random moves and swaps escape the proposals'
        // blind spots — swaps in particular cross pigeonhole plateaus
        // that no single migration can improve).
        let mut next: Vec<Layout> = Vec::new();
        for (layout, result) in &survivors {
            let Some(trace) = &result.trace else { continue };
            let mut mutated: Vec<Layout> = Vec::new();
            for proposal in propose_moves(trace, layout, rng, opts.moves_per_layout) {
                mutated.push(apply_move(layout, proposal));
            }
            for _ in 0..2 {
                if layout.instances.len() > 1 {
                    let inst =
                        crate::layout::InstanceId(rng.gen_range(1..layout.instances.len()) as u32);
                    let core = bamboo_machine::CoreId::new(rng.gen_range(0..layout.core_count));
                    mutated.push(apply_move(
                        layout,
                        crate::critpath::MoveProposal {
                            instance: inst,
                            to_core: core,
                        },
                    ));
                }
            }
            for _ in 0..2 {
                if layout.instances.len() > 2 {
                    let a = rng.gen_range(1..layout.instances.len());
                    let b = rng.gen_range(1..layout.instances.len());
                    if a != b {
                        let (ca, cb) = (layout.instances[a].core, layout.instances[b].core);
                        if ca != cb {
                            let swapped = apply_move(
                                &apply_move(
                                    layout,
                                    crate::critpath::MoveProposal {
                                        instance: crate::layout::InstanceId(a as u32),
                                        to_core: cb,
                                    },
                                ),
                                crate::critpath::MoveProposal {
                                    instance: crate::layout::InstanceId(b as u32),
                                    to_core: ca,
                                },
                            );
                            mutated.push(swapped);
                        }
                    }
                }
            }
            for moved in mutated {
                if seen.insert(moved.fingerprint(graph)) {
                    next.push(moved);
                }
                if next.len() >= opts.max_candidates {
                    break;
                }
            }
        }
        // Survivors stay in the pool too (their traces may yield different
        // random groups next round).
        for (layout, _) in survivors {
            if next.len() >= opts.max_candidates {
                break;
            }
            next.push(layout);
        }

        if next.is_empty() {
            break;
        }
        if !improved && !rng.gen_bool(opts.continue_probability) {
            break;
        }
        candidates = next;
    }

    let (layout, result) = best.expect("at least one candidate evaluated");
    stats.best_makespan = result.makespan;
    (layout, result, stats)
}

/// Scores one iteration's candidate pool, preserving pool order.
///
/// Memoized fingerprints replay from `cache`; the rest simulate — on the
/// driver thread when `threads <= 1` or only one simulation is due, on a
/// scoped worker pool otherwise. Workers pull slots from a shared atomic
/// cursor (simulation costs vary, so static striping would idle the fast
/// workers) and results are stitched back by slot index, making the
/// returned vector — and therefore everything downstream — independent
/// of worker count and scheduling.
#[allow(clippy::too_many_arguments)]
fn evaluate_candidates(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    machine: &MachineDescription,
    opts: &DsaOptions,
    candidates: Vec<Layout>,
    threads: usize,
    cache: &mut SimCache,
    stats: &mut DsaStats,
) -> Vec<(Layout, SimResult)> {
    let mut results: Vec<Option<SimResult>> = vec![None; candidates.len()];
    let mut due: Vec<usize> = Vec::with_capacity(candidates.len());
    let mut fingerprints: Vec<u64> = vec![0; candidates.len()];
    for (slot, layout) in candidates.iter().enumerate() {
        if opts.memoize {
            let fp = layout.fingerprint(graph);
            fingerprints[slot] = fp;
            if let Some(replayed) = cache.lookup(fp) {
                results[slot] = Some(replayed);
                continue;
            }
        }
        due.push(slot);
    }
    stats.cache_hits += candidates.len() - due.len();
    stats.cache_misses += due.len();
    stats.simulations += due.len();

    for (slot, result) in simulate_slots(
        spec,
        graph,
        profile,
        machine,
        &opts.sim,
        &candidates,
        &due,
        threads,
    ) {
        if opts.memoize {
            cache.insert(fingerprints[slot], result.clone());
        }
        results[slot] = Some(result);
    }
    candidates
        .into_iter()
        .zip(results)
        .map(|(layout, result)| (layout, result.expect("every slot scored")))
        .collect()
}

/// Simulates `candidates[slot]` for every slot in `due`, returning
/// `(slot, result)` pairs sorted by slot.
#[allow(clippy::too_many_arguments)]
fn simulate_slots(
    spec: &ProgramSpec,
    graph: &GroupGraph,
    profile: &Profile,
    machine: &MachineDescription,
    sim_opts: &SimOptions,
    candidates: &[Layout],
    due: &[usize],
    threads: usize,
) -> Vec<(usize, SimResult)> {
    let workers = threads.min(due.len());
    if workers <= 1 {
        return due
            .iter()
            .map(|&slot| {
                (
                    slot,
                    simulate(spec, graph, &candidates[slot], profile, machine, sim_opts),
                )
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut scored: Vec<(usize, SimResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&slot) = due.get(next) else { break };
                        local.push((
                            slot,
                            simulate(spec, graph, &candidates[slot], profile, machine, sim_opts),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("simulation worker panicked"))
            .collect()
    });
    scored.sort_by_key(|(slot, _)| *slot);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::random_layouts;
    use crate::preprocess::scc_tree_transform;
    use crate::testutil::kc_setup;
    use crate::transforms::compute_replication;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dsa_improves_on_single_core_start() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let machine = MachineDescription::quad();
        let repl = compute_replication(&spec, &graph, &profile, 4);
        // Start from the worst layout: everything on core 0.
        let cores: Vec<Vec<bamboo_machine::CoreId>> = graph
            .groups
            .iter()
            .enumerate()
            .map(|(g, _)| vec![bamboo_machine::CoreId::new(0); repl.copies[g]])
            .collect();
        let start = Layout::new(&graph, &repl, 4, &cores);
        let start_result = simulate(
            &spec,
            &graph,
            &start,
            &profile,
            &machine,
            &SimOptions {
                collect_trace: true,
                ..SimOptions::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        let (_best, result, stats) = optimize(
            &spec,
            &graph,
            &profile,
            &machine,
            vec![start],
            &DsaOptions::default(),
            &mut rng,
        );
        assert!(stats.simulations >= 1);
        assert!(
            result.makespan < start_result.makespan,
            "DSA failed to improve: {} !< {}",
            result.makespan,
            start_result.makespan
        );
    }

    #[test]
    fn dsa_finds_near_best_of_random_sample() {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let machine = MachineDescription::quad();
        let repl = compute_replication(&spec, &graph, &profile, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = random_layouts(&graph, &repl, 4, 20, &mut rng);
        let sample_best = sample
            .iter()
            .map(|l| {
                simulate(&spec, &graph, l, &profile, &machine, &SimOptions::default()).makespan
            })
            .min()
            .unwrap();
        let starts = random_layouts(&graph, &repl, 4, 3, &mut rng);
        let (_l, result, _s) = optimize(
            &spec,
            &graph,
            &profile,
            &machine,
            starts,
            &DsaOptions::default(),
            &mut rng,
        );
        assert!(
            result.makespan <= sample_best,
            "DSA {} worse than random sample best {}",
            result.makespan,
            sample_best
        );
    }

    /// One full optimize run with the given worker-thread count and
    /// memoization setting, from a fixed seed.
    fn run_with(threads: usize, memoize: bool) -> (Layout, SimResult, DsaStats) {
        let (spec, cstg, profile) = kc_setup();
        let graph = scc_tree_transform(&GroupGraph::build(&spec, &cstg, &profile));
        let machine = MachineDescription::quad();
        let repl = compute_replication(&spec, &graph, &profile, 4);
        let mut rng = StdRng::seed_from_u64(23);
        let starts = random_layouts(&graph, &repl, 4, 6, &mut rng);
        let opts = DsaOptions {
            threads,
            memoize,
            ..DsaOptions::default()
        };
        optimize(&spec, &graph, &profile, &machine, starts, &opts, &mut rng)
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let (serial_layout, serial_result, serial_stats) = run_with(1, true);
        for threads in [2, 4, 8] {
            let (layout, result, stats) = run_with(threads, true);
            assert_eq!(layout, serial_layout, "{threads} threads: layout diverged");
            assert_eq!(result.makespan, serial_result.makespan);
            assert_eq!(stats, serial_stats, "{threads} threads: stats diverged");
        }
    }

    #[test]
    fn memoization_changes_work_but_not_results() {
        let (cold_layout, cold_result, cold_stats) = run_with(1, false);
        let (layout, result, stats) = run_with(1, true);
        assert_eq!(layout, cold_layout);
        assert_eq!(result.makespan, cold_result.makespan);
        assert_eq!(stats.trajectory, cold_stats.trajectory);
        assert_eq!(stats.candidates_evaluated, cold_stats.candidates_evaluated);
        // The cache only ever removes simulations.
        assert!(stats.simulations <= cold_stats.simulations);
        assert_eq!(
            stats.simulations + stats.cache_hits,
            stats.candidates_evaluated
        );
        assert_eq!(stats.simulations, stats.cache_misses);
        assert!(
            stats.cache_hits > 0,
            "survivors re-entering the pool should hit the cache"
        );
        assert_eq!(cold_stats.cache_hits, 0);
    }

    #[test]
    fn merge_counters_sums_volume_and_keeps_trajectory() {
        let mut a = DsaStats {
            iterations: 3,
            simulations: 30,
            candidates_evaluated: 40,
            survivors: 12,
            cache_hits: 10,
            cache_misses: 30,
            trajectory: vec![900, 800],
            best_makespan: 800,
        };
        let b = DsaStats {
            iterations: 2,
            simulations: 15,
            candidates_evaluated: 20,
            survivors: 9,
            cache_hits: 5,
            cache_misses: 15,
            trajectory: vec![1000, 950],
            best_makespan: 950,
        };
        a.merge_counters(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.simulations, 45);
        assert_eq!(a.candidates_evaluated, 60);
        assert_eq!(a.survivors, 21);
        assert_eq!(a.cache_hits, 15);
        assert_eq!(a.cache_misses, 45);
        assert_eq!(a.trajectory, vec![900, 800]);
        assert_eq!(a.best_makespan, 800);
    }

    #[test]
    #[should_panic(expected = "at least one starting layout")]
    fn empty_start_panics() {
        let (spec, cstg, profile) = kc_setup();
        let graph = GroupGraph::build(&spec, &cstg, &profile);
        let machine = MachineDescription::quad();
        let mut rng = StdRng::seed_from_u64(0);
        optimize(
            &spec,
            &graph,
            &profile,
            &machine,
            vec![],
            &DsaOptions::default(),
            &mut rng,
        );
    }
}
