//! Critical path analysis of execution traces (paper §4.5.1-§4.5.2).
//!
//! The critical path is the heaviest chain of invocation, resource-wait,
//! and data-transfer edges from the start of the execution to its end; it
//! accounts for both scheduling and resource limitations. The analysis
//! identifies invocations that were *resource delayed* (started later than
//! their data was ready) and proposes task migrations that could shorten
//! the path — the moves that direct the simulated-annealing search.

use crate::layout::{InstanceId, Layout};
use crate::trace::ExecutionTrace;
use bamboo_machine::CoreId;
use bamboo_profile::Cycles;
use rand::Rng;
use std::collections::HashMap;

/// A proposed layout mutation: move one group instance to another core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MoveProposal {
    /// The instance to migrate.
    pub instance: InstanceId,
    /// Its new core.
    pub to_core: CoreId,
}

/// Returns the invocation ids on the critical path, in execution order.
///
/// The path is reconstructed backwards from the last-finishing
/// invocation: at each step the binding constraint — the same-core
/// predecessor whose completion gated the start, or the latest-arriving
/// parameter's producer — becomes the previous node.
pub fn critical_path(trace: &ExecutionTrace) -> Vec<usize> {
    let Some(last) = trace.last() else {
        return Vec::new();
    };
    let mut path = vec![last.id];
    let mut cur = last.id;
    loop {
        let t = &trace.tasks[cur];
        let data_ready = t.data_ready();
        // Resource edge binds when the core predecessor finished at (or
        // after) our data was ready and we started right after it.
        let resource_pred = t.prev_on_core.filter(|&p| {
            let prev = &trace.tasks[p];
            prev.end >= data_ready && t.start == prev.end
        });
        let next = match resource_pred {
            Some(p) => Some(p),
            None => t
                .deps
                .iter()
                .filter(|d| d.arrival == data_ready)
                .find_map(|d| d.producer),
        };
        match next {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Invocation ids on the critical path that started later than their data
/// was ready — i.e. were delayed by a resource conflict.
pub fn resource_delayed(trace: &ExecutionTrace, path: &[usize]) -> Vec<usize> {
    path.iter()
        .copied()
        .filter(|&id| {
            let t = &trace.tasks[id];
            t.start > t.data_ready()
        })
        .collect()
}

/// Identifies *key* invocations on the path: those producing data the next
/// path invocation consumes (as opposed to mere resource predecessors).
pub fn key_invocations(trace: &ExecutionTrace, path: &[usize]) -> Vec<usize> {
    let mut keys = Vec::new();
    for window in path.windows(2) {
        let (a, b) = (window[0], window[1]);
        if trace.tasks[b].deps.iter().any(|d| d.producer == Some(a)) {
            keys.push(a);
        }
    }
    keys
}

/// Proposes layout mutations that attack the critical path (paper
/// §4.5.2):
///
/// 1. Resource-delayed invocations are grouped by data-ready time;
///    one group is selected at random.
/// 2. Each selected invocation's instance is proposed for migration to
///    the least-loaded cores (spare capacity first).
/// 3. When a non-key invocation delays a key invocation on the same core,
///    the non-key instance is proposed for eviction.
pub fn propose_moves<R: Rng>(
    trace: &ExecutionTrace,
    layout: &Layout,
    rng: &mut R,
    max_proposals: usize,
) -> Vec<MoveProposal> {
    let path = critical_path(trace);
    let delayed = resource_delayed(trace, &path);
    // Proposals are ranked: data-bound-tail relocations first (they are
    // few and high-value), then resource-delay migrations, then non-key
    // evictions; order-preserving dedup + truncation keeps the heads.
    let mut proposals = Vec::new();

    // Per-core busy cycles, to find spare capacity.
    let mut busy: HashMap<CoreId, Cycles> = HashMap::new();
    for t in &trace.tasks {
        *busy.entry(t.core).or_insert(0) += t.duration();
    }
    let mut cores_by_load: Vec<CoreId> = (0..layout.core_count).map(CoreId::new).collect();
    cores_by_load.sort_by_key(|c| busy.get(c).copied().unwrap_or(0));

    // Data-bound tail: when the path's final invocations are waiting on
    // data rather than a core (a serial consumer like a combiner or
    // aggregator), no resource delay points at them — yet relocating the
    // consumer instance to a lighter core shortens the tail. Propose
    // moving the last invocation's instance to the least-loaded cores.
    if let Some(&last) = path.last() {
        let inst = trace.tasks[last].instance;
        let home = layout.core_of(inst);
        for &core in cores_by_load.iter().take(3) {
            if core != home {
                proposals.push(MoveProposal {
                    instance: inst,
                    to_core: core,
                });
            }
        }
    }

    if !delayed.is_empty() {
        // Group by data-ready time; pick one group at random.
        let mut groups: HashMap<Cycles, Vec<usize>> = HashMap::new();
        for id in &delayed {
            groups
                .entry(trace.tasks[*id].data_ready())
                .or_default()
                .push(*id);
        }
        let mut keys: Vec<Cycles> = groups.keys().copied().collect();
        keys.sort_unstable();
        // Attack a randomly selected group first (the paper's §4.5.2
        // selection), then spill into the remaining groups while the
        // proposal budget lasts.
        let first = rng.gen_range(0..keys.len());
        let order = keys[first..].iter().chain(keys[..first].iter());
        'groups: for key in order {
            for &id in &groups[key] {
                let inst = trace.tasks[id].instance;
                let home = layout.core_of(inst);
                for &core in cores_by_load.iter().take(5) {
                    if core != home {
                        proposals.push(MoveProposal {
                            instance: inst,
                            to_core: core,
                        });
                    }
                }
                if proposals.len() >= max_proposals * 3 {
                    break 'groups;
                }
            }
        }
    }

    // Non-key eviction: a non-key path invocation sharing a core with a
    // key invocation it precedes.
    let keys = key_invocations(trace, &path);
    for window in path.windows(2) {
        let (a, b) = (window[0], window[1]);
        let (ta, tb) = (&trace.tasks[a], &trace.tasks[b]);
        if !keys.contains(&a) && keys.contains(&b) && ta.core == tb.core {
            let home = layout.core_of(ta.instance);
            for &core in cores_by_load.iter().take(2) {
                if core != home {
                    proposals.push(MoveProposal {
                        instance: ta.instance,
                        to_core: core,
                    });
                }
            }
        }
    }

    // Order-preserving dedup; never move the startup-pinned instance.
    let mut seen = std::collections::HashSet::new();
    proposals.retain(|p| (p.instance.index() != 0 || p.to_core.index() == 0) && seen.insert(*p));
    proposals.truncate(max_proposals);
    proposals
}

/// Applies a move, producing a new layout.
pub fn apply_move(layout: &Layout, proposal: MoveProposal) -> Layout {
    let mut out = layout.clone();
    out.instances[proposal.instance.index()].core = proposal.to_core;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{DataDep, TraceTask};
    use bamboo_lang::ids::TaskId;

    fn t(
        id: usize,
        core: usize,
        start: u64,
        end: u64,
        deps: Vec<DataDep>,
        prev: Option<usize>,
    ) -> TraceTask {
        TraceTask {
            id,
            task: TaskId::new(0),
            instance: InstanceId(id as u32),
            core: CoreId::new(core),
            start,
            end,
            deps,
            prev_on_core: prev,
        }
    }

    /// Chain: 0 produces for 1; 2 runs on core 0 after 0, delaying
    /// nothing critical.
    fn linear_trace() -> ExecutionTrace {
        let t0 = t(
            0,
            0,
            0,
            10,
            vec![DataDep {
                producer: None,
                arrival: 0,
            }],
            None,
        );
        let t1 = t(
            1,
            1,
            12,
            30,
            vec![DataDep {
                producer: Some(0),
                arrival: 12,
            }],
            None,
        );
        let t2 = t(
            2,
            0,
            10,
            14,
            vec![DataDep {
                producer: Some(0),
                arrival: 10,
            }],
            Some(0),
        );
        ExecutionTrace {
            tasks: vec![t0, t1, t2],
            makespan: 30,
        }
    }

    #[test]
    fn critical_path_follows_data_edges() {
        let trace = linear_trace();
        assert_eq!(critical_path(&trace), vec![0, 1]);
    }

    #[test]
    fn resource_delay_detected() {
        // Invocation 1 is ready at 5 but starts at 20 behind 0 on the same
        // core.
        let t0 = t(
            0,
            0,
            0,
            20,
            vec![DataDep {
                producer: None,
                arrival: 0,
            }],
            None,
        );
        let t1 = t(
            1,
            0,
            20,
            40,
            vec![DataDep {
                producer: None,
                arrival: 5,
            }],
            Some(0),
        );
        let trace = ExecutionTrace {
            tasks: vec![t0, t1],
            makespan: 40,
        };
        let path = critical_path(&trace);
        assert_eq!(path, vec![0, 1]);
        assert_eq!(resource_delayed(&trace, &path), vec![1]);
    }

    #[test]
    fn key_invocations_are_data_producers() {
        let trace = linear_trace();
        let path = critical_path(&trace);
        assert_eq!(key_invocations(&trace, &path), vec![0]);
    }

    #[test]
    fn proposals_target_resource_delays() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Two instances on core 0 of a 2-core layout; 1 delayed.
        let t0 = t(
            0,
            0,
            0,
            20,
            vec![DataDep {
                producer: None,
                arrival: 0,
            }],
            None,
        );
        let t1 = t(
            1,
            0,
            20,
            40,
            vec![DataDep {
                producer: None,
                arrival: 0,
            }],
            Some(0),
        );
        let trace = ExecutionTrace {
            tasks: vec![t0, t1],
            makespan: 40,
        };
        // Build a tiny layout by hand through the public constructor path.
        let (graph, repl, layout) = crate::testutil::tiny_two_group_layout(2);
        let _ = (&graph, &repl);
        let mut rng = StdRng::seed_from_u64(3);
        let proposals = propose_moves(&trace, &layout, &mut rng, 8);
        assert!(!proposals.is_empty());
        for p in &proposals {
            let moved = apply_move(&layout, *p);
            assert_eq!(moved.core_of(p.instance), p.to_core);
        }
    }

    #[test]
    fn empty_trace_has_empty_path() {
        let trace = ExecutionTrace::default();
        assert!(critical_path(&trace).is_empty());
    }
}
