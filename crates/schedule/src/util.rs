//! Graph utilities for the synthesis pipeline.

/// Computes strongly connected components of a directed graph with `n`
/// nodes given by adjacency lists.
///
/// Returns components in reverse topological order (Tarjan's invariant):
/// every edge leaving a component points to a component that appears
/// *earlier* in the returned list.
pub fn strongly_connected_components(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    assert_eq!(adj.len(), n, "adjacency list length must equal node count");
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: each frame is (node, next edge position).
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ei) {
                *ei += 1;
                if index[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let sccs = strongly_connected_components(3, &adj);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_components_are_singletons_in_reverse_topo_order() {
        // 0 -> 1 -> 2
        let adj = vec![vec![1], vec![2], vec![]];
        let sccs = strongly_connected_components(3, &adj);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn mixed_graph() {
        // 0 -> 1 <-> 2, 1 -> 3
        let adj = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let sccs = strongly_connected_components(4, &adj);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.contains(&vec![1, 2]));
        // Edges point to earlier components.
        let pos = |v: usize| sccs.iter().position(|c| c.contains(&v)).expect("present");
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn self_loop_is_single_component() {
        let adj = vec![vec![0]];
        assert_eq!(strongly_connected_components(1, &adj), vec![vec![0]]);
    }

    #[test]
    fn empty_graph() {
        assert!(strongly_connected_components(0, &[]).is_empty());
    }
}
